"""Table 8 — evolved sub-strategies per trust level, case 3 (short paths).

Timed kernel: sub-strategy distribution extraction across all trust levels.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import render_table8_9
from repro.analysis.strategies import substrategy_distribution

from benchmarks.conftest import emit_report


def substrategy_kernel(populations) -> list:
    return [substrategy_distribution(populations, trust) for trust in range(4)]


def test_table8_substrategy_kernel(benchmark):
    rng = np.random.default_rng(4)
    populations = [
        [int(v) for v in rng.integers(0, 2**13, size=100)] for _ in range(60)
    ]
    dists = benchmark(substrategy_kernel, populations)
    assert len(dists) == 4


def test_table8_report(session):
    case3 = session.result_for("case3")
    report = render_table8_9(
        case3, "case 3 (short paths) - Table 8", min_fraction=0.03
    )
    emit_report(
        "table8",
        session,
        report,
        metrics={"case3_final_coop": case3.final_cooperation()[0]},
    )
    if session.scale != "smoke":
        # paper Table 8: trust level 3 is dominated by '111 - always forward'
        dist3 = dict(substrategy_distribution(case3.final_populations(), 3))
        assert dist3.get("111", 0.0) > 0.5

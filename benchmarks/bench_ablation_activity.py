"""Ablation: trust-only strategies (activity dimension disabled).

The paper's strategies condition on trust x activity.  Setting the activity
band very wide makes every known source 'medium' activity, collapsing the
three activity columns into one — i.e. a trust-only strategy space.  The
bench compares evolved cooperation with and without the activity dimension.
"""

from __future__ import annotations

from repro.config.parameters import GAConfig, SimulationConfig
from repro.experiments.cases import EvaluationCase
from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import run_replication
from repro.tournament.environment import TournamentEnvironment
from repro.utils.tables import format_table

from benchmarks.conftest import emit_report


def mini_config(activity_band: float) -> ExperimentConfig:
    return ExperimentConfig(
        case=EvaluationCase(
            "mini",
            "activity ablation world",
            (TournamentEnvironment("MINI", 12, 3),),
            "shorter",
        ),
        generations=18,
        replications=1,
        seed=17,
        engine="fast",
        ga=GAConfig(population_size=24),
        sim=SimulationConfig(rounds=40, activity_band=activity_band),
    )


def run_final(band: float) -> float:
    rep = run_replication(mini_config(band), 0)
    return float(rep.history.cooperation_series()[-5:].mean())


def test_activity_ablation_kernel(benchmark):
    coop = benchmark.pedantic(
        run_final, args=(0.2,), rounds=1, iterations=1, warmup_rounds=0
    )
    assert 0.0 <= coop <= 1.0


def test_activity_ablation_report(session):
    with_activity = run_final(0.2)  # the paper's +-20% band
    trust_only = run_final(1e9)  # every known source classified MI
    report = format_table(
        [
            ["trust x activity (paper, band 0.2)", f"{with_activity * 100:.1f}%"],
            ["trust only (band -> inf)", f"{trust_only * 100:.1f}%"],
        ],
        headers=["strategy space", "final cooperation (mini world)"],
        title="Ablation: activity dimension of the strategy (§3.2)",
    )
    emit_report(
        "ablation_activity",
        session,
        report,
        metrics={
            "final_coop_with_activity": with_activity,
            "final_coop_trust_only": trust_only,
        },
    )
    # both regimes sustain cooperation; the claim tested is that the activity
    # dimension does not *break* evolution (the paper never isolates it).
    assert with_activity > 0.3
    assert trust_only > 0.3

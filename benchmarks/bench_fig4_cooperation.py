"""Fig. 4 — the evolution of cooperation across all four evaluation cases.

Timed kernel: one full smoke-scale replication of case 1 (the minimal
end-to-end GA + tournament workload).  The report renders the mean
cooperation curves and final levels against the paper's values.
"""

from __future__ import annotations

from repro.analysis.reporting import render_fig4
from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import run_replication

from benchmarks.conftest import emit_report


def test_fig4_replication_kernel(benchmark):
    config = ExperimentConfig.for_case("case1", scale="smoke")
    result = benchmark.pedantic(
        run_replication, args=(config, 0), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.history.n_generations == config.generations


def test_fig4_report(session):
    results = {name: session.result_for(name) for name in
               ("case1", "case2", "case3", "case4")}
    report = render_fig4(results)
    emit_report(
        "fig4",
        session,
        report,
        metrics={
            f"final_coop_{name}": res.final_cooperation()[0]
            for name, res in results.items()
        },
    )
    # shape assertions (loose at smoke scale, tight at default scale)
    finals = {name: res.final_cooperation()[0] for name, res in results.items()}
    if session.scale != "smoke":
        # paper ordering: case1 >> case3 > case4 > case2
        assert finals["case1"] > 0.85
        assert finals["case1"] > finals["case3"] > finals["case4"]
        assert finals["case2"] < 0.45

"""Table 5 — per-environment cooperation and CSN-free paths (cases 3-4).

Timed kernel: one paper-sized generation evaluation of case 3 (four
environments, 50-seat tournaments) on the fast engine.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import render_table5
from repro.config.presets import paper_environments
from repro.core.strategy import Strategy
from repro.paths.distributions import SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.sim.fast import FastEngine
from repro.tournament.evaluation import evaluate_generation

from benchmarks.conftest import emit_report


def evaluate_case3_generation(rounds: int = 20) -> float:
    rng = np.random.default_rng(1)
    engine = FastEngine(100, 30)
    engine.set_strategies([Strategy.random(rng) for _ in range(100)])
    oracle = RandomPathOracle(rng, SHORTER_PATHS)
    result = evaluate_generation(
        engine,
        paper_environments(),
        rounds=rounds,
        plays_per_environment=1,
        oracle=oracle,
        rng=rng,
    )
    return result.cooperation_level


def test_table5_generation_kernel(benchmark):
    coop = benchmark.pedantic(
        evaluate_case3_generation, rounds=1, iterations=1, warmup_rounds=0
    )
    assert 0.0 <= coop <= 1.0


def test_table5_report(session):
    case3 = session.result_for("case3")
    case4 = session.result_for("case4")
    report = render_table5(case3, case4)
    emit_report(
        "table5",
        session,
        report,
        metrics={
            "case3_final_coop": case3.final_cooperation()[0],
            "case4_final_coop": case4.final_cooperation()[0],
        },
    )
    if session.scale != "smoke":
        coop3 = case3.per_env_cooperation()
        coop4 = case4.per_env_cooperation()
        # paper shape: cooperation decreases with CSN density in both cases,
        # and the shorter-path case dominates the longer-path case env-wise.
        assert coop3["TE1"] > coop3["TE2"] > coop3["TE3"] >= coop3["TE4"]
        assert coop4["TE1"] > coop4["TE2"] > coop4["TE3"] >= coop4["TE4"]
        for env in ("TE2", "TE3", "TE4"):
            assert coop3[env] > coop4[env]
        # TE1 is CSN-free in both cases
        assert case3.per_env_csn_free()["TE1"] == 1.0

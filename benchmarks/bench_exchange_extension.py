"""Extension bench: second-hand reputation exchange (CORE/CONFIDANT-style).

Gossip measurably widens each node's knowledge (more known subjects per
table), but in this model it barely moves delivery: a source learns about a
selfish node first-hand the first time its own packet dies there, and the
watchdog alert already propagates upstream — first-hand knowledge saturates
within a few rounds.  This is an honest negative result that supports the
paper's first-hand-only design choice (and echoes ref [1]'s finding that
second-hand information adds only marginal benefit).
"""

from __future__ import annotations

import numpy as np

from repro.core.node import AlwaysForwardPlayer, ConstantlySelfishPlayer
from repro.core.payoff import PayoffConfig
from repro.game.stats import TournamentStats
from repro.paths.distributions import SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.reputation.activity import ActivityClassifier
from repro.reputation.exchange import ExchangeConfig
from repro.reputation.trust import TrustTable
from repro.tournament.runner import run_tournament
from repro.utils.tables import format_table

from benchmarks.conftest import emit_report

N_NORMAL, N_CSN, ROUNDS = 16, 4, 40


def build_players():
    players = {pid: AlwaysForwardPlayer(pid) for pid in range(N_NORMAL)}
    for k in range(N_CSN):
        players[N_NORMAL + k] = ConstantlySelfishPlayer(N_NORMAL + k)
    return players


def play(exchange: ExchangeConfig | None, seed: int = 9) -> TournamentStats:
    players = build_players()
    oracle = RandomPathOracle(np.random.default_rng(seed), SHORTER_PATHS)
    return run_tournament(
        players,
        list(range(N_NORMAL + N_CSN)),
        ROUNDS,
        oracle,
        TrustTable(),
        ActivityClassifier(),
        PayoffConfig(),
        exchange=exchange,
        rng=np.random.default_rng(seed + 1),
    )


def test_exchange_tournament_kernel(benchmark):
    cfg = ExchangeConfig(enabled=True, interval=5, fanout=2, positive_only=False)
    stats = benchmark.pedantic(
        play, args=(cfg,), rounds=1, iterations=1, warmup_rounds=0
    )
    assert stats.nn_originated == N_NORMAL * ROUNDS


def _knowledge(players) -> int:
    return sum(p.reputation.n_known for p in players.values())


def play_with_knowledge(exchange, seed: int = 9):
    players = build_players()
    oracle = RandomPathOracle(np.random.default_rng(seed), SHORTER_PATHS)
    stats = run_tournament(
        players,
        list(range(N_NORMAL + N_CSN)),
        ROUNDS,
        oracle,
        TrustTable(),
        ActivityClassifier(),
        PayoffConfig(),
        exchange=exchange,
        rng=np.random.default_rng(seed + 1),
    )
    return stats, _knowledge(players)


def test_exchange_extension_report(session):
    off, known_off = play_with_knowledge(None)
    on, known_on = play_with_knowledge(
        ExchangeConfig(enabled=True, interval=5, fanout=2, positive_only=False)
    )
    core_style, known_core = play_with_knowledge(
        ExchangeConfig(enabled=True, interval=5, fanout=2, positive_only=True)
    )
    rows = [
        [
            "no exchange (paper)",
            f"{off.cooperation_level * 100:.1f}%",
            f"{off.nn_csn_free_fraction * 100:.1f}%",
            known_off,
        ],
        [
            "full exchange",
            f"{on.cooperation_level * 100:.1f}%",
            f"{on.nn_csn_free_fraction * 100:.1f}%",
            known_on,
        ],
        [
            "positive-only (CORE-style)",
            f"{core_style.cooperation_level * 100:.1f}%",
            f"{core_style.nn_csn_free_fraction * 100:.1f}%",
            known_core,
        ],
    ]
    report = format_table(
        rows,
        headers=["regime", "NN delivery", "CSN-free chosen paths", "known entries"],
        title=(
            "Extension: second-hand reputation exchange (refs [1][10]) -"
            " knowledge spreads, delivery barely moves (first-hand watchdog"
            " saturates first)"
        ),
    )
    emit_report(
        "exchange_extension",
        session,
        report,
        metrics={
            "nn_delivery_off": off.cooperation_level,
            "nn_delivery_full": on.cooperation_level,
            "nn_delivery_core": core_style.cooperation_level,
            "known_entries_off": known_off,
            "known_entries_full": known_on,
            "known_entries_core": known_core,
        },
    )
    # gossip must widen knowledge ...
    assert known_on > known_off
    # ... while delivery stays within noise of first-hand-only collection
    assert abs(on.nn_csn_free_fraction - off.nn_csn_free_fraction) < 0.05

"""The telemetry layer's zero-overhead-when-disabled guard.

The telemetry PR instrumented every engine at its tournament seams; its
contract is that a run with telemetry *disabled* (the default) is
indistinguishable from the pre-instrumentation engines — within 1% on the
``random`` batch row of the committed ``BENCH_ENGINE.json`` perf ledger.
This bench measures that row fresh on the instrumented code, disabled and
enabled, and gates the disabled path against the ledger.

Baseline and fresh run usually come from different machines (dev box vs CI
runner), so — like ``scripts/check_perf_regression.py`` — the gate
normalizes the fresh/ledger ratio by the reference engine's ratio, a
machine-speed canary that cancels a uniformly faster or slower runner.
When this bench runs after ``bench_engine_perf`` in the same pytest
invocation (the alphabetical default, and what CI does), the ledger was
just rewritten by this very machine and the canary is ~1.0, making the
gate essentially a same-machine comparison.

The *enabled* overhead is reported alongside (no gate): it is allowed to
cost whatever per-tournament spans and timers cost, and the measured number
in the report is how that price stays visible.
"""

from __future__ import annotations

import json
from contextlib import nullcontext

from repro.telemetry import TelemetryConfig, Timer, telemetry_session
from repro.utils.tables import format_table

from benchmarks.bench_engine_perf import (
    GAMES,
    LEDGER_PATH,
    make_oracle,
    run_tournament,
)
from benchmarks.conftest import emit_report

REPEATS = 7

#: The contract (1%) times a best-of-7 jitter allowance: even on quiet
#: machines the best-of minima of identical runs spread by a few percent,
#: and the canary normalization leaves residual per-engine machine skew.
#: The committed report posts the real measured ratio (~1.0x).
MAX_DISABLED_VS_LEDGER = 1.01 * 1.07


def _best_wall(engine_name: str, telemetry_enabled: bool) -> float:
    """Best-of-``REPEATS`` tournament wall seconds on the random oracle.

    Mirrors ``bench_engine_perf.time_tournament`` (long-lived oracle, two
    warmups, telemetry ``Timer`` clocking) but can run the repeats inside an
    enabled telemetry session to price the instrumentation.
    """
    oracle = make_oracle("random")
    timer = Timer()
    run_tournament(engine_name, "random", oracle)  # warmup
    run_tournament(engine_name, "random", oracle)  # reach cache steady state
    scope = (
        telemetry_session(TelemetryConfig(enabled=True, events=False))
        if telemetry_enabled
        else nullcontext()
    )
    with scope:
        for _ in range(REPEATS):
            with timer.time():
                run_tournament(engine_name, "random", oracle)
    return timer.min_s


def test_disabled_overhead_vs_ledger(session):
    """Disabled-telemetry batch/random must match the committed ledger row."""
    ledger = json.loads(LEDGER_PATH.read_text())
    ledger_batch = ledger["wall_s"]["random"]["batch"]
    ledger_reference = ledger["wall_s"]["random"]["reference"]

    disabled = _best_wall("batch", telemetry_enabled=False)
    enabled = _best_wall("batch", telemetry_enabled=True)
    canary = _best_wall("reference", telemetry_enabled=False) / ledger_reference
    raw = disabled / ledger_batch
    normalized = raw / canary
    enabled_overhead = enabled / disabled

    rows = [
        ["ledger batch/random", f"{ledger_batch * 1e3:.1f} ms", "-"],
        ["disabled telemetry", f"{disabled * 1e3:.1f} ms", f"{raw:.3f}x raw"],
        ["  machine-normalized", "-", f"{normalized:.3f}x"],
        ["enabled telemetry", f"{enabled * 1e3:.1f} ms",
         f"{enabled_overhead:.3f}x vs disabled"],
    ]
    report = format_table(
        rows,
        headers=["measurement", "tournament wall", "vs ledger"],
        title=(
            f"Telemetry overhead, batch engine, random oracle"
            f" ({GAMES} games/tournament, best of {REPEATS})"
        ),
    )
    emit_report(
        "telemetry_overhead",
        session,
        report,
        metrics={
            "disabled_wall_s": round(disabled, 6),
            "enabled_wall_s": round(enabled, 6),
            "ledger_wall_s": round(ledger_batch, 6),
            "machine_canary": round(canary, 3),
            "disabled_vs_ledger_normalized": round(normalized, 3),
            "enabled_vs_disabled": round(enabled_overhead, 3),
            "games_per_s_disabled": round(GAMES / disabled, 1),
        },
    )
    assert normalized <= MAX_DISABLED_VS_LEDGER, (
        f"disabled-telemetry batch/random benches {normalized:.3f}x the"
        f" committed ledger row (limit {MAX_DISABLED_VS_LEDGER:.3f}x):"
        " the zero-overhead-when-disabled contract is broken"
    )

"""Shared infrastructure for the benchmark harnesses.

Each ``bench_*`` file does two things:

1. **times** a representative kernel with pytest-benchmark, and
2. **prints/saves** the paper-style artefact report.

Reports use the default-scale results cached in ``results/`` when available
(written by ``python -m repro reproduce all --out results``); otherwise they
fall back to a seconds-scale smoke run so ``pytest benchmarks/`` always works
standalone.  The scale actually used is printed in every report header.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

import pytest

from repro.experiments.registry import ReproductionSession
from repro.utils.validation import validate_bench_report

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
REPORT_DIR = RESULTS_DIR / "bench_reports"
SEED = 2007

#: perf_counter at the start of the current bench test (autouse fixture);
#: ``emit_report`` derives its ``wall_s`` from this.
_test_started_at: float | None = None


def git_sha() -> str:
    """Short commit id for provenance in the JSON reports."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


@pytest.fixture(autouse=True)
def _bench_wall_clock():
    """Stamp each bench test's start so reports carry honest wall times."""
    global _test_started_at
    _test_started_at = time.perf_counter()
    yield
    _test_started_at = None


def _pick_scale() -> str:
    forced = os.environ.get("REPRO_BENCH_SCALE")
    if forced:
        return forced
    cached = all(
        (RESULTS_DIR / f"{case}_default_seed{SEED}.json").exists()
        for case in ("case1", "case2", "case3", "case4")
    )
    return "default" if cached else "smoke"


@pytest.fixture(scope="session")
def session() -> ReproductionSession:
    """The shared per-case experiment cache behind all artefact benches."""
    scale = _pick_scale()
    return ReproductionSession(
        scale=scale,
        seed=SEED,
        processes=1 if scale == "smoke" else None,
        cache_dir=RESULTS_DIR if scale == "default" else None,
    )


def emit_report(
    name: str,
    session: ReproductionSession,
    text: str,
    metrics: dict | None = None,
    wall_s: float | None = None,
) -> None:
    """Print a report and persist it under results/bench_reports/.

    Every report is written twice: the human-readable ``<name>.txt`` and a
    machine-readable ``<name>.json`` sidecar with the schema

        {"bench": ..., "scale": ..., "wall_s": ..., "metrics": {...},
         "git_sha": ...}

    so CI can archive the perf/accuracy trajectory without scraping tables.
    ``metrics`` holds the bench's headline numbers; ``wall_s`` defaults to
    the elapsed wall time of the calling test.
    """
    header = f"[{name}] reproduction scale = {session.scale}"
    body = header + "\n" + text
    print("\n" + body)
    if wall_s is None and _test_started_at is not None:
        wall_s = time.perf_counter() - _test_started_at
    REPORT_DIR.mkdir(parents=True, exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(body + "\n")
    payload = {
        "bench": name,
        "scale": session.scale,
        "wall_s": round(wall_s, 6) if wall_s is not None else None,
        "metrics": metrics or {},
        "git_sha": git_sha(),
    }
    # a malformed report must fail the bench that produced it, not silently
    # poison the committed artefact set CI archives
    validate_bench_report(payload, name=f"{name}.json")
    (REPORT_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

"""Shared infrastructure for the benchmark harnesses.

Each ``bench_*`` file does two things:

1. **times** a representative kernel with pytest-benchmark, and
2. **prints/saves** the paper-style artefact report.

Reports use the default-scale results cached in ``results/`` when available
(written by ``python -m repro reproduce all --out results``); otherwise they
fall back to a seconds-scale smoke run so ``pytest benchmarks/`` always works
standalone.  The scale actually used is printed in every report header.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.registry import ReproductionSession

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
REPORT_DIR = RESULTS_DIR / "bench_reports"
SEED = 2007


def _pick_scale() -> str:
    forced = os.environ.get("REPRO_BENCH_SCALE")
    if forced:
        return forced
    cached = all(
        (RESULTS_DIR / f"{case}_default_seed{SEED}.json").exists()
        for case in ("case1", "case2", "case3", "case4")
    )
    return "default" if cached else "smoke"


@pytest.fixture(scope="session")
def session() -> ReproductionSession:
    """The shared per-case experiment cache behind all artefact benches."""
    scale = _pick_scale()
    return ReproductionSession(
        scale=scale,
        seed=SEED,
        processes=1 if scale == "smoke" else None,
        cache_dir=RESULTS_DIR if scale == "default" else None,
    )


def emit_report(name: str, session: ReproductionSession, text: str) -> None:
    """Print a report and persist it under results/bench_reports/."""
    header = f"[{name}] reproduction scale = {session.scale}"
    body = header + "\n" + text
    print("\n" + body)
    REPORT_DIR.mkdir(parents=True, exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(body + "\n")

"""Ablation: remove the reputation-shaped payoff table (§4.2's claim).

"If such system was not used, the payoff for selfish behavior (discarding
packets) would always be higher than for forwarding" — under those payoffs
evolution should abandon forwarding entirely; with the paper's table it
sustains cooperation.  This bench demonstrates both regimes.
"""

from __future__ import annotations

from repro.config.parameters import GAConfig, SimulationConfig
from repro.core.payoff import PayoffConfig
from repro.experiments.cases import EvaluationCase
from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import run_replication
from repro.tournament.environment import TournamentEnvironment
from repro.utils.tables import format_table

from benchmarks.conftest import emit_report


def mini_config(payoffs: PayoffConfig) -> ExperimentConfig:
    return ExperimentConfig(
        case=EvaluationCase(
            "mini",
            "reputation-payoff ablation world",
            (TournamentEnvironment("MINI", 12, 0),),
            "shorter",
        ),
        generations=18,
        replications=1,
        seed=11,
        engine="fast",
        ga=GAConfig(population_size=24),
        sim=SimulationConfig(rounds=40, payoffs=payoffs),
    )


def run_final_cooperation(payoffs: PayoffConfig) -> float:
    rep = run_replication(mini_config(payoffs), 0)
    return float(rep.history.cooperation_series()[-5:].mean())


def test_reputation_payoffs_kernel(benchmark):
    coop = benchmark.pedantic(
        run_final_cooperation,
        args=(PayoffConfig(),),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert coop > 0.5


def test_reputation_ablation_report(session):
    with_rep = run_final_cooperation(PayoffConfig())
    without_rep = run_final_cooperation(PayoffConfig.without_reputation())
    report = format_table(
        [
            ["paper payoffs (reputation-shaped)", f"{with_rep * 100:.1f}%"],
            ["flat payoffs (no enforcement)", f"{without_rep * 100:.1f}%"],
        ],
        headers=["payoff regime", "final cooperation (mini world)"],
        title="Ablation: reputation enforcement in the payoff table (§4.2)",
    )
    emit_report(
        "ablation_reputation",
        session,
        report,
        metrics={
            "final_coop_with_reputation": with_rep,
            "final_coop_without_reputation": without_rep,
        },
    )
    assert with_rep > 0.5
    assert without_rep < 0.25
    assert with_rep - without_rep > 0.4

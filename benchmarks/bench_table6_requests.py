"""Table 6 — responses to forwarding requests by source class (cases 3-4).

Timed kernel: the statistics pipeline itself (recording + pooling a large
synthetic request stream), since Table 6 is pure bookkeeping over the same
simulations as Table 5.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import render_table6
from repro.analysis.requests import request_fractions
from repro.game.stats import TournamentStats

from benchmarks.conftest import emit_report


def record_request_stream(n: int = 200_000) -> TournamentStats:
    rng = np.random.default_rng(0)
    stats = TournamentStats()
    src = rng.random(n) < 0.3
    resp = rng.random(n) < 0.4
    fwd = rng.random(n) < 0.7
    for i in range(n):
        stats.record_request(bool(src[i]), bool(resp[i]), bool(fwd[i]))
    return stats


def test_table6_stats_kernel(benchmark):
    stats = benchmark.pedantic(
        record_request_stream, rounds=1, iterations=1, warmup_rounds=0
    )
    assert stats.requests_from_nn.total + stats.requests_from_csn.total == 200_000


def test_table6_report(session):
    case3 = session.result_for("case3")
    case4 = session.result_for("case4")
    report = render_table6(case3, case4)
    emit_report(
        "table6",
        session,
        report,
        metrics={
            "case3_final_coop": case3.final_cooperation()[0],
            "case4_final_coop": case4.final_cooperation()[0],
        },
    )
    if session.scale != "smoke":
        nn3, csn3 = case3.pooled_requests()
        f_nn = request_fractions(nn3)
        f_csn = request_fractions(csn3)
        # paper shape: NN requests mostly accepted; rejections of NN packets
        # come overwhelmingly from CSN; CSN requests mostly rejected.
        assert f_nn["accepted"] > 0.5
        assert f_nn["rejected_by_csn"] > f_nn["rejected_by_np"]
        assert f_csn["accepted"] < 0.35

"""Service-layer throughput: job submission rate, dedupe hit rate, and
submit->running latency through the content-addressed job runner.

The workload is N distinct smoke jobs (one-generation runs with varying
seeds) plus a duplicate re-submission of each, driven through the worker
thread exactly the way ``repro serve`` drives it.  Beyond the
human-readable report, ``test_service_throughput_report`` folds a
``service_throughput`` row into the repo-root ``BENCH_ENGINE.json``
ledger (read-modify-write, same contract as ``bench_parallel_scaling``)
which ``scripts/check_perf_regression.py`` gates by the absolute
failsafe: a collapse in submission throughput or queue dispatch latency
fails CI like a de-vectorized engine loop.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.scenarios import build_scenario_payload
from repro.service import JobRunner
from repro.utils.tables import format_table
from repro.utils.validation import validate_bench_report

from benchmarks.conftest import emit_report, git_sha

LEDGER_PATH = Path(__file__).resolve().parent.parent / "BENCH_ENGINE.json"

#: Distinct jobs in the workload; each is also re-submitted once, so the
#: expected dedupe hit rate is exactly 0.5.
N_JOBS = 8


def _workload() -> list[dict]:
    """N tiny, mutually distinct smoke scenarios (seed varies the hash)."""
    return [
        build_scenario_payload(
            "case1",
            "smoke",
            name=f"bench_service_{seed}",
            overrides={"seed": seed, "generations": 1, "rounds": 2},
        )
        for seed in range(1, N_JOBS + 1)
    ]


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _drive(runner: JobRunner, jobs: list[dict]) -> dict:
    """Submit each job (plus a duplicate), wait for completion, measure."""
    latencies: list[float] = []
    submit_wall = 0.0
    started = time.perf_counter()
    for payload in jobs:
        t0 = time.perf_counter()
        record, created = runner.submit(payload)
        runner.submit(payload)  # duplicate: must dedupe, not requeue
        submit_wall += time.perf_counter() - t0
        assert created, f"expected a fresh job for {payload['name']}"
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            current = runner.store.load_record(record["job_id"])
            if current and current["started_s"] is not None:
                latencies.append(current["started_s"] - current["submitted_s"])
                break
            time.sleep(0.002)
        else:
            raise AssertionError(f"job {record['job_id'][:16]} never started")
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        states = [r["state"] for r in runner.store.list_records()]
        if states and all(s == "done" for s in states):
            break
        assert "failed" not in states, "bench job failed"
        time.sleep(0.01)
    else:
        raise AssertionError("bench jobs did not drain")
    drain_wall = time.perf_counter() - started
    total_submits = runner.counters["submitted"]
    return {
        "jobs_done": runner.counters["completed"],
        "submit_wall_s": submit_wall,
        "drain_wall_s": drain_wall,
        "jobs_per_s": runner.counters["completed"] / drain_wall,
        "dedupe_hit_rate": runner.counters["deduped"] / total_submits,
        "submit_to_running_p50_s": _percentile(latencies, 0.50),
        "submit_to_running_p95_s": _percentile(latencies, 0.95),
    }


def _update_ledger(stats: dict) -> None:
    """Fold the service row into the engine ledger (schema-validated)."""
    if LEDGER_PATH.exists():
        ledger = json.loads(LEDGER_PATH.read_text())
    else:
        # bench_engine_perf writes the full ledger; standalone runs of this
        # bench start a stub under the same contract so the row still lands
        ledger = {
            "bench": "engine_perf",
            "scale": "smoke",
            "wall_s": {},
            "metrics": {},
            "git_sha": git_sha(),
        }
    # no "reference" canary here, so the perf gate applies only the
    # absolute failsafe to this wall — gate the coarse end-to-end drain
    # (submission alone is single-digit ms, pure filesystem noise at 6x)
    ledger["wall_s"]["service_throughput"] = {
        "drain_all": round(stats["drain_wall_s"], 6),
    }
    ledger["metrics"]["service_throughput"] = {
        "submit_wall_s": round(stats["submit_wall_s"], 6),
        "jobs_per_s": round(stats["jobs_per_s"], 3),
        "dedupe_hit_rate": round(stats["dedupe_hit_rate"], 3),
        "submit_to_running_p50_s": round(stats["submit_to_running_p50_s"], 6),
        "submit_to_running_p95_s": round(stats["submit_to_running_p95_s"], 6),
    }
    validate_bench_report(ledger, name=str(LEDGER_PATH))
    LEDGER_PATH.write_text(json.dumps(ledger, indent=2, sort_keys=True) + "\n")


def test_service_throughput_report(session, tmp_path):
    runner = JobRunner(tmp_path / "store")
    runner.start()
    try:
        stats = _drive(runner, _workload())
    finally:
        runner.stop()
    assert stats["jobs_done"] == N_JOBS
    assert stats["dedupe_hit_rate"] == 0.5
    report = format_table(
        [
            ["jobs completed", str(stats["jobs_done"])],
            ["jobs/s", f"{stats['jobs_per_s']:.2f}"],
            ["dedupe hit rate", f"{stats['dedupe_hit_rate']:.0%}"],
            ["submit->running p50", f"{stats['submit_to_running_p50_s'] * 1e3:.1f} ms"],
            ["submit->running p95", f"{stats['submit_to_running_p95_s'] * 1e3:.1f} ms"],
        ],
        headers=["metric", "value"],
        title=f"Service throughput ({N_JOBS} smoke jobs + duplicates)",
    )
    emit_report(
        "service_throughput",
        session,
        report,
        metrics={
            k: round(v, 6) if isinstance(v, float) else v
            for k, v in stats.items()
        },
    )
    _update_ledger(stats)

"""Table 7 — the most popular evolved strategies (cases 3-4).

Timed kernel: the strategy census over a large synthetic population set
(60 replications x 100 strategies, the paper's full volume).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import render_table7
from repro.analysis.strategies import most_common_strategies, unknown_bit_fraction

from benchmarks.conftest import emit_report


def census_kernel() -> list:
    rng = np.random.default_rng(3)
    populations = [
        [int(v) for v in rng.integers(0, 2**13, size=100)] for _ in range(60)
    ]
    return most_common_strategies(populations, k=5)


def test_table7_census_kernel(benchmark):
    top = benchmark(census_kernel)
    assert len(top) == 5


def test_table7_report(session):
    case3 = session.result_for("case3")
    case4 = session.result_for("case4")
    report = render_table7(case3, case4)
    emit_report(
        "table7",
        session,
        report,
        metrics={
            "case3_final_coop": case3.final_cooperation()[0],
            "case4_final_coop": case4.final_cooperation()[0],
        },
    )
    if session.scale != "smoke":
        # paper §6.3: the evolved decision against unknown nodes is forward,
        # "as a result, new nodes can easily join the network".
        assert unknown_bit_fraction(case3.final_populations()) > 0.5
        top3 = most_common_strategies(case3.final_populations(), k=5)
        assert top3, "census must find strategies"

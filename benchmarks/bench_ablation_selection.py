"""Ablation: tournament vs roulette selection (§5's stated deviation from the
IPDRP reference, which used roulette).

Runs the miniature world under both selection schemes and reports final
cooperation; times one GA generation step for each scheme.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.parameters import GAConfig, SimulationConfig
from repro.experiments.cases import EvaluationCase
from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import run_replication
from repro.ga.evolution import GeneticAlgorithm
from repro.tournament.environment import TournamentEnvironment
from repro.utils.tables import format_table

from benchmarks.conftest import emit_report


def mini_config(selection: str) -> ExperimentConfig:
    return ExperimentConfig(
        case=EvaluationCase(
            "mini",
            "selection ablation world",
            (TournamentEnvironment("MINI", 12, 2),),
            "shorter",
        ),
        generations=18,
        replications=1,
        seed=5,
        engine="fast",
        ga=GAConfig(population_size=24, selection=selection),
        sim=SimulationConfig(rounds=40),
    )


@pytest.mark.parametrize("selection", ["tournament", "roulette"])
def test_ga_step_kernel(benchmark, selection):
    rng = np.random.default_rng(0)
    ga = GeneticAlgorithm(GAConfig(population_size=100, selection=selection))
    pop = ga.initial_population(13, rng)
    fitness = rng.random(100) * 5
    out = benchmark(ga.next_generation, pop, fitness, rng)
    assert len(out) == 100


def test_selection_ablation_report(session):
    rows = []
    finals = {}
    for selection in ("tournament", "roulette"):
        rep = run_replication(mini_config(selection), 0)
        final = float(rep.history.cooperation_series()[-5:].mean())
        finals[selection] = final
        rows.append([selection, f"{final * 100:.1f}%"])
    report = format_table(
        rows,
        headers=["selection", "final cooperation (mini world)"],
        title=(
            "Ablation: selection scheme (paper replaced ref [12]'s roulette"
            " with tournament)"
        ),
    )
    emit_report(
        "ablation_selection",
        session,
        report,
        metrics={f"final_coop_{k}": v for k, v in finals.items()},
    )
    # The finding that motivates the paper's §5 deviation from ref [12]:
    # tournament selection sustains cooperation where roulette's weak
    # pressure (payoff differences are small relative to the mean) lets
    # cooperation collapse.
    assert finals["tournament"] > 0.3
    assert finals["tournament"] > finals["roulette"]

"""Engine throughput: reference vs fast implementation.

The honest comparison the HPC guides demand: identical semantics (proved by
the equivalence suite), so any speedup is pure implementation.  Reports
games/second for one paper-sized tournament (50 seats, 40 rounds).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategy import Strategy
from repro.game.stats import TournamentStats
from repro.paths.distributions import SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.sim import make_engine

ROUNDS = 40
SEATS = 50
GAMES = ROUNDS * SEATS


def run_tournament(engine_name: str) -> TournamentStats:
    rng = np.random.default_rng(0)
    engine = make_engine(engine_name, 40, 10)
    engine.set_strategies([Strategy.random(rng) for _ in range(40)])
    participants = list(range(40)) + engine.selfish_ids(10)
    oracle = RandomPathOracle(np.random.default_rng(1), SHORTER_PATHS)
    stats = TournamentStats()
    engine.reset_generation()
    engine.run_tournament(participants, ROUNDS, oracle, stats, None, None)
    return stats


@pytest.mark.parametrize("engine_name", ["reference", "fast"])
def test_engine_tournament_throughput(benchmark, engine_name):
    stats = benchmark.pedantic(
        run_tournament, args=(engine_name,), rounds=3, iterations=1, warmup_rounds=1
    )
    assert stats.nn_originated + stats.csn_originated == GAMES
    benchmark.extra_info["games_per_tournament"] = GAMES
    benchmark.extra_info["games_per_second"] = GAMES / benchmark.stats["mean"]


def test_engines_equal_output_on_this_workload():
    """Guard: the two timed configurations do identical work."""
    assert run_tournament("reference").to_dict() == run_tournament("fast").to_dict()

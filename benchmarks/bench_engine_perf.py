"""Engine throughput across every path oracle and route-cache policy.

The honest comparison the HPC guides demand: identical semantics (proved by
the equivalence suites), so any speedup is pure implementation.  Each engine
runs one table-5-scale tournament (50 seats, TE2's 10 CSN, 40 rounds) per
oracle row and reports games/second.  Besides the paper's random oracle and
the static-topology / low-mobility rows, two rows cover the per-round
mobility regime (``mobility_highspeed``: tolerance 0, step every round) —
once under the default ``exact`` route-cache policy and once under
``approx``, whose drift-budgeted staleness is this row's entire reason to
exist.

Three ``*_stacked`` rows measure the cross-replication stacked evaluation
path (:class:`repro.sim.stacked.StackedFusedEngine`): ``STACK_REPS``
replications x ``FUSED_STACK`` tournaments planned and executed as one
mega-slate, amortized per game across the whole R x T block.  The random
stacked row carries the kernel-backend throughput target: >= 1M games/s
with the compiled (numba) kernel — asserted only when that backend is
active — and a soft 600k games/s target on the always-available numpy
kernel, recorded in the ledger either way.

The per-round-mobility rows are measured **block-averaged**: each timed
sample is ``FUSED_STACK`` consecutive tournaments on the live oracle,
divided back to a per-tournament wall.  Best-of over *single* tournaments
is dishonest exactly there — under the approx route-cache policy a lucky
tournament window serves every route inside the drift budget (zero
revalidations), so best-of crowned batch with an unrepresentatively cheap
tournament while the fused engine's generation unit always amortized the
full revalidation cadence.  Block averaging gives every engine the same
ten-consecutive-tournament unit a real generation executes.

Beyond the per-bench JSON sidecar, this bench writes the repo-level
``BENCH_ENGINE.json`` perf ledger (schema documented in the README).  The
timed workload is fixed at the constants below regardless of the session's
report scale, so ledgers are comparable across machines and runs; CI re-runs
it and gates wall-time regressions against the committed baseline via
``scripts/check_perf_regression.py``, keeping the perf trajectory in-repo.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.config.mobility import MobilityConfig
from repro.core.strategy import Strategy
from repro.game.stats import TournamentStats
from repro.mobility import build_oracle
from repro.network.topology import GeometricTopology, TopologyPathOracle
from repro.paths.distributions import SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.paths.vector import plan_generation_arrays, stack_replication_plans
from repro.sim import BIT_IDENTICAL_ENGINES, ENGINES, make_engine
from repro.sim.fused import FusedEngine
from repro.sim.kernels import numba_available, resolve_kernel
from repro.sim.stacked import StackedFusedEngine
from repro.telemetry import Timer
from repro.utils.tables import format_table

from benchmarks.conftest import REPORT_DIR, emit_report, git_sha

#: Table-5 scale: full 50-seat tournaments in a TE2-like environment.
ROUNDS = 40
N_NORMAL = 40
N_CSN = 10
SEATS = N_NORMAL + N_CSN
GAMES = ROUNDS * SEATS

ORACLES = (
    "random",
    "topology",
    "mobile",
    "mobility_highspeed",
    "mobility_highspeed_approx",
)
LEDGER_PATH = Path(__file__).resolve().parent.parent / "BENCH_ENGINE.json"

#: The batch engine's raison d'être, asserted where users will look for it.
#: The measured margin is ~2.2x; 1.3x absorbs shared-runner noise in CI.
MIN_BATCH_SPEEDUP = 1.3
#: Every oracle row must show batch >= fast (the regression this bench once
#: caught: batch *losing* to fast on the topology oracle).  0.93 absorbs
#: shared-runner noise; the committed ledger shows the real margins.
MIN_BATCH_VS_FAST = 0.93
#: Native-route targets on the committed ledger's workloads, with CI slack
#: (measured margins are ~4x topology / ~2.3x mobile).
MIN_TOPOLOGY_VS_REFERENCE = 2.0
MIN_MOBILE_VS_REFERENCE = 1.4
#: The turbo engine's tentpole claim: on the random oracle — where the
#: sequential draw+watchdog recurrence, not route search, bounds the
#: bit-identical engines — speculative round vectorization must beat the
#: batch engine.  Measured margin is ~1.45x; 1.2 absorbs shared-runner
#: noise in CI while the committed ledger posts the real >= 1.3x number.
MIN_TURBO_VS_BATCH_RANDOM = 1.2
#: With native vectorized topology/mobile draws (PR 5), turbo contends on
#: the route-table rows too: it must stay within noise of batch on the
#: *better* of the topology/mobile rows (the committed ledger posts
#: turbo >= batch on at least one; 0.9 absorbs shared-runner noise).
MIN_TURBO_VS_BATCH_ROUTED = 0.9
#: The approx route-cache policy's reason to exist: on the per-round
#: mobility row it must post a large speedup over the exact policy on the
#: same engine.  The committed ledger posts >= 2x; 1.5 absorbs CI noise.
MIN_APPROX_VS_EXACT = 1.5
#: Tournaments stacked per fused generation pass.  Matches a table-5
#: environment's per-generation tournament count; the stack-size scan that
#: landed the engine showed per-tournament wall flat from 10 through 40, so
#: the smallest realistic stack is the honest number.
FUSED_STACK = 10
#: The fused engine's tentpole claim: stacking a generation's tournaments
#: into one mega-batch pass must beat re-entering turbo per tournament on
#: the random row (where fixed numpy dispatch, not route search, bounds
#: turbo).  The committed ledger posts >= 2x; 1.5 absorbs CI noise.
MIN_FUSED_VS_TURBO_RANDOM = 1.5
#: On the route-table rows the fusion also shares route tables and slot
#: caches across the stack; it must beat the batch engine on both.  The
#: committed ledger posts >= 1.3x on each; 1.1 absorbs CI noise.
MIN_FUSED_VS_BATCH_ROUTED = 1.1
#: The approx-policy mobility row under the block-averaged protocol: fused
#: must stay at least at parity with batch (the committed ledger posts
#: ~1.0x — the row is revalidation-bound, so the generation fusion's wins
#: amortize away; 0.9 absorbs shared-runner noise).  Before the protocol
#: fix this row *looked* like a fused regression: best-of over single
#: tournaments let batch post a zero-revalidation lucky window.
MIN_FUSED_VS_BATCH_HIGHSPEED_APPROX = 0.9
#: Replications stacked per cross-replication mega-slate pass — the R in
#: the R x T stacking.  Eight replications of a FUSED_STACK-tournament
#: generation put 8x the slate width through every vectorized round pass.
STACK_REPS = 8
#: Oracle rows measured through the stacked path (ledger rows
#: ``<kind>_stacked``); each replication gets its own identically
#: configured, differently seeded oracle — exactly the experiment layer's
#: per-replication stream isolation.
STACKED_ORACLES = ("random", "topology", "mobile")
#: The stacked path's routed-row claim: stacking must post >= 2x batch on
#: the topology and mobile rows (the committed ledger posts >= 2.1x on
#: each; 1.5 absorbs shared-runner noise).
MIN_STACKED_VS_BATCH_ROUTED = 1.5
#: Kernel-backend throughput targets on the random stacked row, amortized
#: per game across the whole R x T block (planning included).  The
#: compiled target is asserted only when the numba backend is active; the
#: numpy target is a *soft* gate — recorded in the ledger and warned
#: about, never failed — because the reference backend's ceiling is an
#: honest number worth tracking, not a promise.
STACKED_TARGET_COMPILED = 1_000_000
STACKED_TARGET_NUMPY = 600_000
#: Rows measured block-averaged (see the module docstring): per-round
#: mobility churns the route state tournament over tournament, so a
#: single-tournament best-of measures a lucky window, not the workload.
BLOCK_PROTOCOL_ORACLES = frozenset(
    {"mobility_highspeed", "mobility_highspeed_approx"}
)

#: The mobile row is the paper's *low-mobility* regime (§3.1): the topology
#: advances once per tournament (``evaluate_generation``'s
#: ``on_tournament_end`` clocking, reproduced by the timing loop), with slow
#: waypoint drift inside the DynamicTopology tolerance band, so the network
#: has static phases between edge-set changes — the scenario the epoch-keyed
#: route cache and native path engine exist for.  (Full-speed per-round
#: churn with tolerance=0 invalidates every route every round: all engines
#: alike become route-search bound and the row measures nothing but the
#: shared K-shortest-paths kernel.)
MOBILE_BENCH_CONFIG = MobilityConfig(
    model="waypoint",
    speed_min=0.002,
    speed_max=0.008,
    tolerance=0.02,
    step_every="tournament",
)

#: The *high-mobility* regime the ROADMAP left open: the same slow waypoint
#: drift as the mobile row, but applied **every round** with zero tolerance,
#: so the edge set (and epoch) changes round by round and the exact cache
#: can never serve a static phase — every engine becomes route-search bound.
#: The radio range matches the static topology row (0.35): hundreds of
#: unclocked per-round steps explore far deeper drift states than the
#: per-tournament mobile row, and the denser disk keeps the giant component
#: intact (a partition can strand a low-degree source beyond even the
#: emergency nearest-peer boost, killing the timed tournament).
HIGHSPEED_BENCH_CONFIG = MOBILE_BENCH_CONFIG.with_(
    tolerance=0.0, step_every="round", radio_range=0.35
)

#: Drift budget for the row's ``approx`` measurement: routes may be served
#: up to ~6 tournaments stale before they are lazily revalidated (cheap
#: edge-recheck, full recompute only when every cached route broke).  At
#: this row's drift (~0.005/step, radio 0.35) that is the high-mobility
#: analogue of the paper's own random-path regime — routing state that
#: deliberately lags the topology — and it is exactly the configuration the
#: statistical-equivalence tier gates on mobile scenarios
#: (``tests/test_engine_statistical.py``).
HIGHSPEED_DRIFT_BUDGET = 240


def make_oracle(kind: str, seed: int = 1):
    rng = np.random.default_rng(seed)
    if kind == "random":
        return RandomPathOracle(rng, SHORTER_PATHS)
    if kind == "topology":
        topology = GeometricTopology(range(SEATS), radio_range=0.35, rng=rng)
        return TopologyPathOracle(topology, rng)
    if kind == "mobile":
        return build_oracle(MOBILE_BENCH_CONFIG, range(SEATS), rng)
    if kind == "mobility_highspeed":
        return build_oracle(HIGHSPEED_BENCH_CONFIG, range(SEATS), rng)
    if kind == "mobility_highspeed_approx":
        config = HIGHSPEED_BENCH_CONFIG.with_(
            route_cache="approx", drift_budget=HIGHSPEED_DRIFT_BUDGET
        )
        return build_oracle(config, range(SEATS), rng)
    raise ValueError(f"unknown oracle kind {kind!r}")


def run_tournament(
    engine_name: str, oracle_kind: str = "random", oracle=None
) -> TournamentStats:
    rng = np.random.default_rng(0)
    engine = make_engine(engine_name, N_NORMAL, N_CSN)
    engine.set_strategies([Strategy.random(rng) for _ in range(N_NORMAL)])
    participants = list(range(N_NORMAL)) + engine.selfish_ids(N_CSN)
    if oracle is None:
        oracle = make_oracle(oracle_kind)
    stats = TournamentStats()
    engine.reset_generation()
    engine.run_tournament(participants, ROUNDS, oracle, stats, None, None)
    # the per-tournament clock hook, exactly as evaluate_generation fires it
    hook = getattr(oracle, "on_tournament_end", None)
    if hook is not None:
        hook()
    return stats


def run_fused_generation(oracle_kind: str = "random", oracle=None) -> TournamentStats:
    """One fused generation: ``FUSED_STACK`` tournaments in a single pass.

    Each stacked tournament seats the same participants as
    :func:`run_tournament`, so the generation is exactly ``FUSED_STACK``
    copies of the per-tournament workload — per-tournament walls divide out
    directly.  Engine construction and strategy upload stay inside the
    timed call, mirroring ``run_tournament``'s accounting.
    """
    rng = np.random.default_rng(0)
    engine = make_engine("fused", N_NORMAL, N_CSN)
    engine.set_strategies([Strategy.random(rng) for _ in range(N_NORMAL)])
    participants = list(range(N_NORMAL)) + engine.selfish_ids(N_CSN)
    if oracle is None:
        oracle = make_oracle(oracle_kind)
    stats = TournamentStats()
    engine.reset_generation()
    engine.run_generation(
        [list(participants) for _ in range(FUSED_STACK)], ROUNDS, oracle, stats
    )
    return stats


def time_fused_generation(oracle_kind: str, repeats: int = 7) -> float:
    """Best-of-7 wall seconds *per stacked tournament* for the fused engine.

    Same protocol as :func:`time_tournament` — long-lived oracle, two
    warmups, telemetry :class:`Timer`, best-of — but the clocked unit is a
    whole fused generation, normalized by ``FUSED_STACK`` so the matrix
    compares per-tournament walls across engines.
    """
    oracle = make_oracle(oracle_kind)
    timer = Timer()
    run_fused_generation(oracle_kind, oracle)  # warmup
    run_fused_generation(oracle_kind, oracle)  # reach cache steady state
    for _ in range(repeats):
        with timer.time():
            run_fused_generation(oracle_kind, oracle)
    return timer.min_s / FUSED_STACK


def make_stacked_oracles(kind: str):
    """One oracle per stacked replication, seeds 1..STACK_REPS."""
    return [make_oracle(kind, seed=1 + r) for r in range(STACK_REPS)]


def run_stacked_generation(oracle_kind: str, oracles=None) -> list[TournamentStats]:
    """One stacked pass: ``STACK_REPS`` x ``FUSED_STACK`` tournaments.

    Mirrors :func:`run_fused_generation`'s accounting — engine
    construction, strategy upload and *all* plan drawing stay inside the
    timed call — then executes the whole R x T block as one mega-slate via
    :meth:`StackedFusedEngine.run_generation_stacked`.  Per-replication
    plans are drawn from per-replication oracles and shifted into private
    node-id blocks by :func:`stack_replication_plans`, exactly as the
    experiment layer's stacked path does.
    """
    rng = np.random.default_rng(0)
    engine = StackedFusedEngine(N_NORMAL, N_CSN, n_replications=STACK_REPS)
    engine.set_strategies([Strategy.random(rng) for _ in range(N_NORMAL)])
    participants = list(range(N_NORMAL)) + engine.selfish_ids(N_CSN)
    if oracles is None:
        oracles = make_stacked_oracles(oracle_kind)
    plans = []
    for oracle in oracles:
        share = FusedEngine._share_route_tables(oracle)
        try:
            plans.append(
                plan_generation_arrays(
                    oracle,
                    [list(participants) for _ in range(FUSED_STACK)],
                    ROUNDS,
                    on_tournament_end=getattr(oracle, "on_tournament_end", None),
                )
            )
        finally:
            FusedEngine._restore_route_policy(oracle, share)
    plan = stack_replication_plans(plans, ROUNDS, SEATS)
    stats = [TournamentStats() for _ in range(STACK_REPS)]
    engine.reset_generation()
    engine.run_generation_stacked(plan, ROUNDS, FUSED_STACK, SEATS, stats)
    return stats


def time_stacked_generation(oracle_kind: str, repeats: int = 5) -> float:
    """Best-of wall seconds *per stacked tournament* for the stacked path.

    Same protocol as :func:`time_fused_generation` — long-lived oracles,
    two warmups, telemetry :class:`Timer`, best-of — normalized by the
    full ``STACK_REPS * FUSED_STACK`` block so the matrix compares
    per-tournament walls across engines.
    """
    oracles = make_stacked_oracles(oracle_kind)
    timer = Timer()
    run_stacked_generation(oracle_kind, oracles)  # warmup
    run_stacked_generation(oracle_kind, oracles)  # reach cache steady state
    for _ in range(repeats):
        with timer.time():
            run_stacked_generation(oracle_kind, oracles)
    return timer.min_s / (STACK_REPS * FUSED_STACK)


def time_tournament_block(
    engine_name: str, oracle_kind: str, repeats: int = 3
) -> float:
    """Block-averaged wall seconds per tournament (see module docstring).

    Each timed sample is ``FUSED_STACK`` consecutive tournaments on the
    live oracle — the unit a real generation executes — so policies whose
    cost arrives in bursts (approx-policy revalidation storms) are charged
    their amortized rate instead of a lucky window's.  Best-of over
    blocks, divided back to a per-tournament wall.
    """
    oracle = make_oracle(oracle_kind)
    timer = Timer()
    run_tournament(engine_name, oracle_kind, oracle)  # warmup
    run_tournament(engine_name, oracle_kind, oracle)  # reach cache steady state
    for _ in range(repeats):
        with timer.time():
            for _ in range(FUSED_STACK):
                run_tournament(engine_name, oracle_kind, oracle)
    return timer.min_s / FUSED_STACK


def time_tournament(engine_name: str, oracle_kind: str, repeats: int = 7) -> float:
    """Best-of-7 wall seconds for one tournament, on a long-lived oracle.

    Repeats aggregate in a telemetry :class:`Timer` (the best-of is its
    ``min_s``), so the bench clocks tournaments with the exact primitive a
    ``--telemetry`` run uses for its span timings.

    The oracle is built outside the clock and reused across two warmup
    tournaments and the repeats — exactly how ``evaluate_generation``
    drives tournaments in a replication, where one oracle serves every
    tournament of every generation.  A static topology therefore serves its
    warm route tables (their steady state, which the layered providers and
    the turbo engine's draw caches reach after a couple of tournaments),
    while the mobile topology keeps moving and re-routing between repeats
    just as it does between real tournaments.  Each engine gets its own
    identically seeded oracle, so engines see identical workloads.
    """
    oracle = make_oracle(oracle_kind)
    timer = Timer()
    run_tournament(engine_name, oracle_kind, oracle)  # warmup
    run_tournament(engine_name, oracle_kind, oracle)  # reach cache steady state
    for _ in range(repeats):
        with timer.time():
            run_tournament(engine_name, oracle_kind, oracle)
    return timer.min_s


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
def test_engine_tournament_throughput(benchmark, engine_name):
    stats = benchmark.pedantic(
        run_tournament, args=(engine_name,), rounds=3, iterations=1, warmup_rounds=1
    )
    assert stats.nn_originated + stats.csn_originated == GAMES
    benchmark.extra_info["games_per_tournament"] = GAMES
    benchmark.extra_info["games_per_second"] = GAMES / benchmark.stats["mean"]


@pytest.mark.parametrize("oracle_kind", ORACLES)
def test_engines_equal_output_per_oracle(oracle_kind):
    """Guard: the timed configurations do identical work on every oracle.

    The bit-identical trio must agree exactly; the turbo engine (statistical
    contract) must play the same *workload* — same game count, sane delivery
    — with its distributional match gated by the dedicated suite in
    ``tests/test_engine_statistical.py``.
    """
    reference = run_tournament(BIT_IDENTICAL_ENGINES[0], oracle_kind).to_dict()
    for engine_name in BIT_IDENTICAL_ENGINES[1:]:
        assert run_tournament(engine_name, oracle_kind).to_dict() == reference
    turbo = run_tournament("turbo", oracle_kind).to_dict()
    assert (
        turbo["nn_originated"] + turbo["csn_originated"]
        == reference["nn_originated"] + reference["csn_originated"]
        == GAMES
    )
    assert turbo["nn_delivered"] <= turbo["nn_originated"]
    assert turbo["nn_paths_chosen"] == reference["nn_paths_chosen"]
    # the fused engine's unit is a generation: its stacked pass must conserve
    # the whole stack's workload (structural counts scale by the stack size)
    fused = run_fused_generation(oracle_kind).to_dict()
    assert (
        fused["nn_originated"] + fused["csn_originated"] == FUSED_STACK * GAMES
    )
    assert fused["nn_delivered"] <= fused["nn_originated"]
    assert fused["nn_paths_chosen"] == FUSED_STACK * reference["nn_paths_chosen"]
    # the cross-replication mega-slate must conserve every replication's
    # workload independently: per-rep counts equal one fused generation's
    if oracle_kind in STACKED_ORACLES:
        for rep_stats in run_stacked_generation(oracle_kind):
            rep = rep_stats.to_dict()
            assert (
                rep["nn_originated"] + rep["csn_originated"]
                == FUSED_STACK * GAMES
            )
            assert rep["nn_delivered"] <= rep["nn_originated"]


def test_engine_matrix_report(session):
    """Engines x oracles games/sec matrix; writes BENCH_ENGINE.json."""
    walls: dict[str, dict[str, float]] = {kind: {} for kind in ORACLES}
    for oracle_kind in ORACLES:
        for engine_name in ENGINES:
            # the fused engine's unit of work is a whole generation; its
            # matrix cell is the per-tournament wall of one stacked pass.
            # The per-round-mobility rows use the block-averaged protocol
            # for the per-tournament engines (module docstring) so approx
            # revalidation storms are charged at their amortized rate.
            if engine_name == "fused":
                wall = time_fused_generation(oracle_kind)
            elif oracle_kind in BLOCK_PROTOCOL_ORACLES:
                wall = time_tournament_block(engine_name, oracle_kind)
            else:
                wall = time_tournament(engine_name, oracle_kind)
            walls[oracle_kind][engine_name] = wall
    # the cross-replication rows: one stacked cell per routed-or-random kind
    stacked_walls = {
        kind: time_stacked_generation(kind) for kind in STACKED_ORACLES
    }

    rows = []
    metrics: dict[str, float] = {}
    for oracle_kind in ORACLES:
        for engine_name in ENGINES:
            wall = walls[oracle_kind][engine_name]
            gps = GAMES / wall
            metrics[f"games_per_s[{engine_name}/{oracle_kind}]"] = round(gps, 1)
            rows.append(
                [
                    oracle_kind,
                    engine_name,
                    f"{wall * 1e3:.1f} ms",
                    f"{gps:,.0f}",
                    f"{walls[oracle_kind]['reference'] / wall:.2f}x",
                ]
            )
    for oracle_kind in STACKED_ORACLES:
        wall = stacked_walls[oracle_kind]
        gps = GAMES / wall
        metrics[f"games_per_s[stacked/{oracle_kind}_stacked]"] = round(gps, 1)
        rows.append(
            [
                f"{oracle_kind}_stacked",
                "stacked",
                f"{wall * 1e3:.1f} ms",
                f"{gps:,.0f}",
                f"{walls[oracle_kind]['reference'] / wall:.2f}x",
            ]
        )
    report = format_table(
        rows,
        headers=[
            "oracle",
            "engine",
            "tournament wall",
            "games/sec",
            "vs reference",
        ],
        title=(
            f"Engine throughput, table-5 scale ({SEATS} seats, {N_CSN} CSN,"
            f" {ROUNDS} rounds, {GAMES} games/tournament)"
        ),
    )
    emit_report("engine_perf", session, report, metrics=metrics)

    random_walls = walls["random"]
    stacked_random_gps = GAMES / stacked_walls["random"]
    # which kernel backend the stacked engine actually ran on this machine —
    # recorded so a ledger number is attributable to numpy vs compiled
    kernel = resolve_kernel("auto")
    ledger_walls = {
        oracle_kind: dict(engine_walls)
        for oracle_kind, engine_walls in walls.items()
    }
    for oracle_kind in STACKED_ORACLES:
        ledger_walls[f"{oracle_kind}_stacked"] = {
            "stacked": stacked_walls[oracle_kind]
        }
    ledger = {
        "bench": "engine_perf",
        "scale": {
            "seats": SEATS,
            "n_csn": N_CSN,
            "rounds": ROUNDS,
            "games_per_tournament": GAMES,
            "stack_replications": STACK_REPS,
            "stack_tournaments": FUSED_STACK,
        },
        "kernel": {
            "backend": kernel.name,
            "compiled": kernel.compiled,
            "numba_available": numba_available(),
        },
        "wall_s": {
            oracle_kind: {
                engine: round(wall, 6)
                for engine, wall in engine_walls.items()
            }
            for oracle_kind, engine_walls in ledger_walls.items()
        },
        "metrics": {
            "games_per_s": {
                oracle_kind: {
                    engine: round(GAMES / wall, 1)
                    for engine, wall in engine_walls.items()
                }
                for oracle_kind, engine_walls in ledger_walls.items()
            },
            "batch_speedup_vs_fast_random": round(
                random_walls["fast"] / random_walls["batch"], 3
            ),
            "batch_speedup_vs_reference_random": round(
                random_walls["reference"] / random_walls["batch"], 3
            ),
            "turbo_speedup_vs_batch_random": round(
                random_walls["batch"] / random_walls["turbo"], 3
            ),
            "turbo_vs_batch_best_routed": round(
                max(
                    walls[o]["batch"] / walls[o]["turbo"]
                    for o in ("topology", "mobile")
                ),
                3,
            ),
            "approx_speedup_vs_exact_highspeed": round(
                walls["mobility_highspeed"]["batch"]
                / walls["mobility_highspeed_approx"]["batch"],
                3,
            ),
            "fused_speedup_vs_turbo_random": round(
                random_walls["turbo"] / random_walls["fused"], 3
            ),
            "fused_vs_batch_topology": round(
                walls["topology"]["batch"] / walls["topology"]["fused"], 3
            ),
            "fused_vs_batch_mobile": round(
                walls["mobile"]["batch"] / walls["mobile"]["fused"], 3
            ),
            "fused_vs_batch_highspeed_approx": round(
                walls["mobility_highspeed_approx"]["batch"]
                / walls["mobility_highspeed_approx"]["fused"],
                3,
            ),
            "stacked_vs_batch_topology": round(
                walls["topology"]["batch"] / stacked_walls["topology"], 3
            ),
            "stacked_vs_batch_mobile": round(
                walls["mobile"]["batch"] / stacked_walls["mobile"], 3
            ),
            "stacked_speedup_vs_fused_random": round(
                random_walls["fused"] / stacked_walls["random"], 3
            ),
            "stacked_random_games_per_s": round(stacked_random_gps, 1),
            "stacked_random_target": (
                STACKED_TARGET_COMPILED
                if kernel.compiled
                else STACKED_TARGET_NUMPY
            ),
            # 1/0, not a bool: the report schema's metrics tree is numeric
            "stacked_random_target_met": int(
                stacked_random_gps
                >= (
                    STACKED_TARGET_COMPILED
                    if kernel.compiled
                    else STACKED_TARGET_NUMPY
                )
            ),
        },
        "git_sha": git_sha(),
    }
    LEDGER_PATH.write_text(json.dumps(ledger, indent=2, sort_keys=True) + "\n")

    # The tentpole claims, measured where users will see them.
    assert random_walls["fast"] / random_walls["batch"] >= MIN_BATCH_SPEEDUP
    assert (
        random_walls["batch"] / random_walls["turbo"] >= MIN_TURBO_VS_BATCH_RANDOM
    ), "turbo engine lost its speculative-vectorization edge on the random oracle"
    assert (
        max(walls[o]["batch"] / walls[o]["turbo"] for o in ("topology", "mobile"))
        >= MIN_TURBO_VS_BATCH_ROUTED
    ), "turbo's native route-table draws lost their contention with batch"
    assert (
        walls["mobility_highspeed"]["batch"]
        / walls["mobility_highspeed_approx"]["batch"]
        >= MIN_APPROX_VS_EXACT
    ), "the approx route-cache policy lost its edge on per-round mobility"
    assert (
        random_walls["turbo"] / random_walls["fused"] >= MIN_FUSED_VS_TURBO_RANDOM
    ), "the fused engine lost its generation-stacking edge on the random oracle"
    for o in ("topology", "mobile"):
        assert (
            walls[o]["batch"] / walls[o]["fused"] >= MIN_FUSED_VS_BATCH_ROUTED
        ), f"fused generation stacking lost to batch on the {o} oracle"
    assert (
        walls["mobility_highspeed_approx"]["batch"]
        / walls["mobility_highspeed_approx"]["fused"]
        >= MIN_FUSED_VS_BATCH_HIGHSPEED_APPROX
    ), (
        "fused fell below batch parity on the block-averaged approx"
        " per-round-mobility row"
    )
    for o in ("topology", "mobile"):
        assert (
            walls[o]["batch"] / stacked_walls[o] >= MIN_STACKED_VS_BATCH_ROUTED
        ), f"cross-replication stacking lost its >= 2x edge vs batch on {o}"
    # the kernel-backend throughput target on the random stacked row: hard
    # when the compiled backend is active, soft (recorded + warned) on numpy
    if kernel.compiled:
        assert stacked_random_gps >= STACKED_TARGET_COMPILED, (
            f"compiled kernel posted {stacked_random_gps:,.0f} games/s on the"
            f" random stacked row (target {STACKED_TARGET_COMPILED:,})"
        )
    elif stacked_random_gps < STACKED_TARGET_NUMPY:
        warnings.warn(
            f"numpy kernel posted {stacked_random_gps:,.0f} games/s on the"
            f" random stacked row (soft target {STACKED_TARGET_NUMPY:,});"
            " recorded in BENCH_ENGINE.json, not a failure",
            stacklevel=2,
        )
    for oracle_kind in ORACLES:
        engine_walls = walls[oracle_kind]
        assert (
            engine_walls["fast"] / engine_walls["batch"] >= MIN_BATCH_VS_FAST
        ), f"batch engine regressed below fast on the {oracle_kind} oracle"
    assert (
        walls["topology"]["reference"] / walls["topology"]["batch"]
        >= MIN_TOPOLOGY_VS_REFERENCE
    )
    assert (
        walls["mobile"]["reference"] / walls["mobile"]["batch"]
        >= MIN_MOBILE_VS_REFERENCE
    )


def test_bench_json_sidecar_schema(session):
    """The JSON pipeline contract other tooling depends on."""
    probe = "engine_perf_schema_probe"
    try:
        emit_report(probe, session, "schema probe", metrics={"probe": 1.0}, wall_s=0.5)
        payload = json.loads((REPORT_DIR / f"{probe}.json").read_text())
        assert set(payload) == {"bench", "scale", "wall_s", "metrics", "git_sha"}
        assert payload["bench"] == probe
        assert payload["wall_s"] == 0.5
        assert payload["metrics"] == {"probe": 1.0}
    finally:
        for suffix in (".json", ".txt"):
            (REPORT_DIR / f"{probe}{suffix}").unlink(missing_ok=True)

"""Benchmark harnesses: one per paper artefact plus ablations/extensions."""

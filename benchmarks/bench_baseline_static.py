"""Baselines: evolved strategies vs static behaviours.

Plays fixed (non-evolving) populations — altruists, defectors, trust-threshold
reciprocators — in the same CSN-contaminated tournament and compares delivery
rates, situating the GA's evolved behaviour against hand-written policies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.node import (
    AlwaysDropPlayer,
    AlwaysForwardPlayer,
    ConstantlySelfishPlayer,
    ThresholdPlayer,
)
from repro.core.payoff import PayoffConfig
from repro.game.stats import TournamentStats
from repro.paths.distributions import SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.reputation.activity import ActivityClassifier
from repro.reputation.trust import TrustTable
from repro.tournament.runner import run_tournament
from repro.utils.tables import format_table

from benchmarks.conftest import emit_report

N_NORMAL = 16
N_CSN = 4
ROUNDS = 60


def play_static(behaviour: str, seed: int = 3) -> TournamentStats:
    factories = {
        "always-forward": lambda pid: AlwaysForwardPlayer(pid),
        "always-drop": lambda pid: AlwaysDropPlayer(pid),
        "threshold(trust>=1)": lambda pid: ThresholdPlayer(
            pid, min_trust=1, forward_unknown=True
        ),
        "threshold(trust>=2)": lambda pid: ThresholdPlayer(
            pid, min_trust=2, forward_unknown=True
        ),
    }
    players = {pid: factories[behaviour](pid) for pid in range(N_NORMAL)}
    for k in range(N_CSN):
        pid = N_NORMAL + k
        players[pid] = ConstantlySelfishPlayer(pid)
    oracle = RandomPathOracle(np.random.default_rng(seed), SHORTER_PATHS)
    return run_tournament(
        players,
        list(range(N_NORMAL + N_CSN)),
        ROUNDS,
        oracle,
        TrustTable(),
        ActivityClassifier(),
        PayoffConfig(),
    )


@pytest.mark.parametrize("behaviour", ["always-forward", "threshold(trust>=1)"])
def test_static_baseline_kernel(benchmark, behaviour):
    stats = benchmark.pedantic(
        play_static, args=(behaviour,), rounds=1, iterations=1, warmup_rounds=0
    )
    assert stats.nn_originated == N_NORMAL * ROUNDS


def test_static_baseline_report(session):
    rows = []
    results = {}
    for behaviour in (
        "always-forward",
        "threshold(trust>=1)",
        "threshold(trust>=2)",
        "always-drop",
    ):
        stats = play_static(behaviour)
        results[behaviour] = stats
        rows.append(
            [
                behaviour,
                f"{stats.cooperation_level * 100:.1f}%",
                f"{stats.csn_delivery_level * 100:.1f}%",
                f"{stats.nn_csn_free_fraction * 100:.1f}%",
            ]
        )
    report = format_table(
        rows,
        headers=["behaviour", "NN delivery", "CSN delivery", "CSN-free paths"],
        title=(
            f"Static baselines in a {N_CSN}/{N_NORMAL + N_CSN} CSN tournament"
            f" ({ROUNDS} rounds)"
        ),
    )
    emit_report(
        "baseline_static",
        session,
        report,
        metrics={
            f"nn_delivery[{name}]": stats.cooperation_level
            for name, stats in results.items()
        },
    )
    # sanity shape: nobody beats the altruists on NN delivery (the threshold
    # reciprocator ties them, since NN sources quickly earn trust); defectors
    # deliver nothing; the reciprocator freezes CSN sources out while the
    # altruist happily serves them.
    assert (
        results["always-forward"].cooperation_level
        >= results["threshold(trust>=2)"].cooperation_level
    )
    assert results["always-drop"].cooperation_level == 0.0
    assert (
        results["threshold(trust>=2)"].csn_delivery_level
        < results["always-forward"].csn_delivery_level * 0.5
    )

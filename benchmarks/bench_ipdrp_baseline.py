"""Baseline bench: IPDRP evolution (the paper's ref [12] substrate).

Times the random-pairing PD tournament and reports the evolutionary outcome:
memory-one strategies under random pairing drift toward defection — exactly
the failure mode the paper's reputation+activity mechanism is built to fix.
"""

from __future__ import annotations

import numpy as np

from repro.config.parameters import GAConfig
from repro.ipdrp.evolution import evolve_ipdrp
from repro.ipdrp.game import play_random_pairing_tournament
from repro.ipdrp.strategy import IpdrpStrategy
from repro.utils.tables import format_table

from benchmarks.conftest import emit_report


def test_ipdrp_tournament_kernel(benchmark):
    rng = np.random.default_rng(0)
    strategies = [IpdrpStrategy.random(rng) for _ in range(50)]
    payoffs, coop = benchmark(
        play_random_pairing_tournament, strategies, 100, np.random.default_rng(1)
    )
    assert len(payoffs) == 50
    assert 0.0 <= coop <= 1.0


def test_ipdrp_baseline_report(session):
    history = evolve_ipdrp(
        generations=30,
        rounds=60,
        ga_config=GAConfig(population_size=50, mutation_rate=0.005),
        seed=4,
    )
    rows = [
        ["initial cooperation", f"{history.cooperation[0] * 100:.1f}%"],
        ["final cooperation", f"{history.cooperation[-1] * 100:.1f}%"],
        ["final mean payoff/round", f"{history.mean_fitness[-1]:.2f}"],
    ]
    report = format_table(
        rows,
        headers=["metric", "value"],
        title="Baseline: IPDRP (ref [12]) - defection wins without reputation",
    )
    emit_report(
        "ipdrp_baseline",
        session,
        report,
        metrics={
            "initial_coop": float(history.cooperation[0]),
            "final_coop": float(history.cooperation[-1]),
            "final_mean_fitness": float(history.mean_fitness[-1]),
        },
    )
    assert history.cooperation[-1] < history.cooperation[0]
    assert history.cooperation[-1] < 0.35

"""Extension bench: cooperation vs node speed on a mobile topology.

The paper's random oracle is the infinite-mobility limit and the static
geometric topology the zero-mobility limit; the mobility subsystem sweeps
the regime in between.  As node speed rises, neighbourhoods churn faster,
reputation about specific relays goes stale sooner, and selfish relays are
punished more slowly — this bench quantifies that with a population of
altruists and constantly selfish relays at several waypoint speeds, plus the
two limit regimes for reference.
"""

from __future__ import annotations

import numpy as np

from repro.core.node import AlwaysForwardPlayer, ConstantlySelfishPlayer
from repro.core.payoff import PayoffConfig
from repro.game.stats import TournamentStats
from repro.mobility import MobilityConfig, build_oracle
from repro.network.topology import GeometricTopology, TopologyPathOracle
from repro.paths.distributions import SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.reputation.activity import ActivityClassifier
from repro.reputation.trust import TrustTable
from repro.tournament.runner import run_tournament
from repro.utils.tables import format_table

from benchmarks.conftest import emit_report

N_NORMAL, N_CSN, ROUNDS = 20, 5, 30
RADIO_RANGE = 0.45  # ~2x the connectivity threshold for 25 nodes
SPEEDS = (0.005, 0.02, 0.08)  # unit-square lengths per round


def build_players():
    players = {pid: AlwaysForwardPlayer(pid) for pid in range(N_NORMAL)}
    for k in range(N_CSN):
        players[N_NORMAL + k] = ConstantlySelfishPlayer(N_NORMAL + k)
    return players


def play(oracle) -> TournamentStats:
    return run_tournament(
        build_players(),
        list(range(N_NORMAL + N_CSN)),
        ROUNDS,
        oracle,
        TrustTable(),
        ActivityClassifier(),
        PayoffConfig(),
    )


def make_mobile_oracle(speed: float, seed: int = 6):
    config = MobilityConfig(
        model="waypoint",
        speed_min=0.5 * speed,
        speed_max=1.5 * speed,
        pause_time=0.0,
        radio_range=RADIO_RANGE,
    )
    ids = list(range(N_NORMAL + N_CSN))
    return build_oracle(config, ids, np.random.default_rng(seed))


def make_static_oracle(seed: int = 6) -> TopologyPathOracle:
    ids = list(range(N_NORMAL + N_CSN))
    topo = GeometricTopology(
        ids, radio_range=RADIO_RANGE, rng=np.random.default_rng(seed)
    )
    return TopologyPathOracle(topo, np.random.default_rng(seed + 1))


def test_mobility_tournament_kernel(benchmark):
    stats = benchmark.pedantic(
        lambda: play(make_mobile_oracle(SPEEDS[1])),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert stats.nn_originated == N_NORMAL * ROUNDS


def test_mobility_extension_report(session):
    rows = []

    def add_row(label, stats, cache_line="-"):
        rows.append(
            [
                label,
                f"{stats.cooperation_level * 100:.1f}%",
                f"{stats.nn_csn_free_fraction * 100:.1f}%",
                cache_line,
            ]
        )

    static_stats = play(make_static_oracle())
    add_row("static topology (speed 0)", static_stats)
    speed_coops = []
    for speed in SPEEDS:
        oracle = make_mobile_oracle(speed)
        stats = play(oracle)
        speed_coops.append(stats.cooperation_level)
        hits, misses = oracle.cache_info
        total = hits + misses
        add_row(
            f"waypoint, speed {speed:g}/round",
            stats,
            f"{hits}/{total} hits",
        )
    random_stats = play(RandomPathOracle(np.random.default_rng(8), SHORTER_PATHS))
    add_row("random pairing (paper, speed ~inf)", random_stats)

    report = format_table(
        rows,
        headers=[
            "mobility regime",
            "NN delivery",
            "CSN-free chosen paths",
            "route cache",
        ],
        title="Extension: cooperation vs node speed (random waypoint)",
    )
    emit_report(
        "mobility_extension",
        session,
        report,
        metrics={
            "nn_delivery_static": static_stats.cooperation_level,
            "nn_delivery_random": random_stats.cooperation_level,
            **{
                f"nn_delivery_speed_{speed:g}": coop
                for speed, coop in zip(SPEEDS, speed_coops)
            },
        },
    )
    assert len(speed_coops) >= 3
    assert all(0.0 <= c <= 1.0 for c in speed_coops)
    assert static_stats.nn_originated == random_stats.nn_originated

"""Extension bench: static geometric topology vs the paper's random pairing.

The paper's oracle models maximal mobility (fresh random intermediates every
game).  The geometric oracle pins nodes in the unit square, so the same
neighbours recur — reputation accumulates about far fewer, more relevant
nodes.  Reports delivery rates for both regimes over identical populations.
"""

from __future__ import annotations

import numpy as np

from repro.core.node import AlwaysForwardPlayer, ConstantlySelfishPlayer
from repro.core.payoff import PayoffConfig
from repro.game.stats import TournamentStats
from repro.network.topology import GeometricTopology, TopologyPathOracle
from repro.paths.distributions import SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.reputation.activity import ActivityClassifier
from repro.reputation.trust import TrustTable
from repro.tournament.runner import run_tournament
from repro.utils.tables import format_table

from benchmarks.conftest import emit_report

N_NORMAL, N_CSN, ROUNDS = 20, 5, 30


def build_players():
    players = {pid: AlwaysForwardPlayer(pid) for pid in range(N_NORMAL)}
    for k in range(N_CSN):
        players[N_NORMAL + k] = ConstantlySelfishPlayer(N_NORMAL + k)
    return players


def play(oracle) -> TournamentStats:
    return run_tournament(
        build_players(),
        list(range(N_NORMAL + N_CSN)),
        ROUNDS,
        oracle,
        TrustTable(),
        ActivityClassifier(),
        PayoffConfig(),
    )


def make_topology_oracle(seed: int = 6) -> TopologyPathOracle:
    ids = list(range(N_NORMAL + N_CSN))
    topo = GeometricTopology(ids, radio_range=0.42, rng=np.random.default_rng(seed))
    return TopologyPathOracle(topo, np.random.default_rng(seed + 1))


def test_topology_tournament_kernel(benchmark):
    stats = benchmark.pedantic(
        lambda: play(make_topology_oracle()),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert stats.nn_originated == N_NORMAL * ROUNDS


def test_topology_extension_report(session):
    random_stats = play(RandomPathOracle(np.random.default_rng(8), SHORTER_PATHS))
    topo_stats = play(make_topology_oracle())
    rows = [
        [
            "random pairing (paper, high mobility)",
            f"{random_stats.cooperation_level * 100:.1f}%",
            f"{random_stats.nn_csn_free_fraction * 100:.1f}%",
        ],
        [
            "geometric topology (static, low mobility)",
            f"{topo_stats.cooperation_level * 100:.1f}%",
            f"{topo_stats.nn_csn_free_fraction * 100:.1f}%",
        ],
    ]
    report = format_table(
        rows,
        headers=["network model", "NN delivery", "CSN-free chosen paths"],
        title="Extension: static unit-disk topology vs random pairing (§4.1)",
    )
    emit_report(
        "topology_extension",
        session,
        report,
        metrics={
            "nn_delivery_random": random_stats.cooperation_level,
            "nn_delivery_topology": topo_stats.cooperation_level,
        },
    )
    assert random_stats.nn_originated == topo_stats.nn_originated

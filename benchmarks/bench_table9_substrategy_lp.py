"""Table 9 — evolved sub-strategies per trust level, case 4 (long paths)."""

from __future__ import annotations

from repro.analysis.reporting import render_table8_9
from repro.analysis.strategies import substrategy_distribution

from benchmarks.conftest import emit_report


def test_table9_report_kernel(benchmark, session):
    case4 = session.result_for("case4")
    report = benchmark.pedantic(
        render_table8_9,
        args=(case4, "case 4 (long paths) - Table 9"),
        kwargs={"min_fraction": 0.03},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    emit_report(
        "table9",
        session,
        report,
        metrics={"case4_final_coop": case4.final_cooperation()[0]},
    )
    if session.scale != "smoke":
        populations = case4.final_populations()
        dist3 = dict(substrategy_distribution(populations, 3))
        # trust 3 converges to always-forward in case 4 as well
        assert dist3.get("111", 0.0) > 0.5
        # paper's qualitative claim: case 4 evolves *less* cooperative
        # low-trust sub-strategies than case 3 (harder to avoid CSN).
        case3 = session.result_for("case3")
        coop_bits = lambda pops, trust: sum(  # noqa: E731
            frac * pattern.count("1") / 3
            for pattern, frac in substrategy_distribution(pops, trust)
        )
        assert coop_bits(populations, 1) <= coop_bits(
            case3.final_populations(), 1
        ) + 0.12

"""Replication throughput vs worker count (the paper's 60-run averaging is
embarrassingly parallel; this bench shows the process-pool payoff and proves
results are worker-count invariant)."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment

CONFIG = ExperimentConfig.for_case(
    "case1", scale="smoke", replications=4, generations=4
)


@pytest.mark.parametrize("processes", [1, 2])
def test_replication_scaling(benchmark, processes):
    result = benchmark.pedantic(
        run_experiment,
        args=(CONFIG,),
        kwargs={"processes": processes},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert len(result.replications) == 4
    benchmark.extra_info["processes"] = processes


def test_worker_count_invariance():
    serial = run_experiment(CONFIG, processes=1)
    parallel = run_experiment(CONFIG, processes=2)
    assert serial.to_dict() == parallel.to_dict()

"""Replication throughput vs worker count (the paper's 60-run averaging is
embarrassingly parallel; this bench shows the process-pool payoff and proves
results are worker-count invariant).

Beyond the human-readable report, ``test_parallel_scaling_report`` folds a
``parallel_scaling`` row into the repo-root ``BENCH_ENGINE.json`` ledger
(read-modify-write — ``bench_engine_perf`` rewrites the whole file, so CI
runs that bench first), which ``scripts/check_perf_regression.py`` gates
like the engine rows: a collapse in pool dispatch or scaling efficiency
fails CI the same way a de-vectorized engine loop does.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.utils.tables import format_table
from repro.utils.validation import validate_bench_report

from benchmarks.conftest import emit_report, git_sha

CONFIG = ExperimentConfig.for_case(
    "case1", scale="smoke", replications=4, generations=4
)

LEDGER_PATH = Path(__file__).resolve().parent.parent / "BENCH_ENGINE.json"


@pytest.mark.parametrize("processes", [1, 2])
def test_replication_scaling(benchmark, processes):
    result = benchmark.pedantic(
        run_experiment,
        args=(CONFIG,),
        kwargs={"processes": processes},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert len(result.replications) == 4
    benchmark.extra_info["processes"] = processes


def test_worker_count_invariance():
    serial = run_experiment(CONFIG, processes=1)
    parallel = run_experiment(CONFIG, processes=2)
    assert serial.to_dict() == parallel.to_dict()


def test_shard_count_invariance():
    serial = run_experiment(CONFIG, processes=1)
    for shards in (1, 2, 4):
        sharded = run_experiment(CONFIG, processes=2, shards=shards)
        assert sharded.to_dict() == serial.to_dict(), f"shards={shards}"


def _update_ledger(walls: dict[int, float]) -> None:
    """Fold the scaling row into the engine ledger (schema-validated)."""
    if LEDGER_PATH.exists():
        ledger = json.loads(LEDGER_PATH.read_text())
    else:
        # bench_engine_perf writes the full ledger; standalone runs of this
        # bench start a stub under the same contract so the row still lands
        ledger = {
            "bench": "engine_perf",
            "scale": "smoke",
            "wall_s": {},
            "metrics": {},
            "git_sha": git_sha(),
        }
    speedup = walls[1] / walls[2]
    ledger["wall_s"]["parallel_scaling"] = {
        f"workers_{p}": round(wall, 6) for p, wall in walls.items()
    }
    ledger["metrics"]["parallel_scaling"] = {
        "speedup_2_workers": round(speedup, 3),
        "efficiency_2_workers": round(speedup / 2, 3),
    }
    validate_bench_report(ledger, name=str(LEDGER_PATH))
    LEDGER_PATH.write_text(json.dumps(ledger, indent=2, sort_keys=True) + "\n")


def test_parallel_scaling_report(session):
    walls = {}
    for processes in (1, 2):
        start = time.perf_counter()
        run_experiment(CONFIG, processes=processes)
        walls[processes] = time.perf_counter() - start
    rows = [
        [str(p), f"{wall:.2f}s", f"{walls[1] / wall:.2f}x"]
        for p, wall in walls.items()
    ]
    report = format_table(
        rows,
        headers=["workers", "wall time", "speedup vs serial"],
        title="Replication throughput vs worker count (4 smoke replications)",
    )
    emit_report(
        "parallel_scaling",
        session,
        report,
        metrics={f"wall_s_workers_{p}": wall for p, wall in walls.items()},
    )
    _update_ledger(walls)

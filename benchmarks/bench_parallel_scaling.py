"""Replication throughput vs worker count (the paper's 60-run averaging is
embarrassingly parallel; this bench shows the process-pool payoff and proves
results are worker-count invariant)."""

from __future__ import annotations

import time

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.utils.tables import format_table

from benchmarks.conftest import emit_report

CONFIG = ExperimentConfig.for_case(
    "case1", scale="smoke", replications=4, generations=4
)


@pytest.mark.parametrize("processes", [1, 2])
def test_replication_scaling(benchmark, processes):
    result = benchmark.pedantic(
        run_experiment,
        args=(CONFIG,),
        kwargs={"processes": processes},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert len(result.replications) == 4
    benchmark.extra_info["processes"] = processes


def test_worker_count_invariance():
    serial = run_experiment(CONFIG, processes=1)
    parallel = run_experiment(CONFIG, processes=2)
    assert serial.to_dict() == parallel.to_dict()


def test_parallel_scaling_report(session):
    walls = {}
    for processes in (1, 2):
        start = time.perf_counter()
        run_experiment(CONFIG, processes=processes)
        walls[processes] = time.perf_counter() - start
    rows = [
        [str(p), f"{wall:.2f}s", f"{walls[1] / wall:.2f}x"]
        for p, wall in walls.items()
    ]
    report = format_table(
        rows,
        headers=["workers", "wall time", "speedup vs serial"],
        title="Replication throughput vs worker count (4 smoke replications)",
    )
    emit_report(
        "parallel_scaling",
        session,
        report,
        metrics={f"wall_s_workers_{p}": wall for p, wall in walls.items()},
    )

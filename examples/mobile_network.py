"""Scenario: a mobile ad hoc network with selfish relays.

Nodes wander the unit square under random-waypoint mobility while a few
constantly selfish relays refuse to forward.  Because neighbourhoods change,
reputation about any specific relay goes stale; the faster the network
moves, the longer selfish relays survive undetected.  The same game is run
at three speeds plus the paper's random-pairing limit for comparison, and a
Gauss-Markov variant shows the effect of inertial (smoother) movement.

Run:
    python examples/mobile_network.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AlwaysForwardPlayer,
    ConstantlySelfishPlayer,
    MobilityConfig,
    PayoffConfig,
    RandomPathOracle,
    SHORTER_PATHS,
    TrustTable,
)
from repro.game.stats import TournamentStats
from repro.mobility import build_oracle
from repro.reputation.activity import ActivityClassifier
from repro.tournament.runner import run_tournament
from repro.utils.tables import format_table

N_NODES = 30
N_CSN = 6
ROUNDS = 40
RADIO_RANGE = 0.45


def build_players():
    players = {pid: AlwaysForwardPlayer(pid) for pid in range(N_NODES - N_CSN)}
    for pid in range(N_NODES - N_CSN, N_NODES):
        players[pid] = ConstantlySelfishPlayer(pid)
    return players


def play(oracle) -> TournamentStats:
    return run_tournament(
        build_players(),
        list(range(N_NODES)),
        ROUNDS,
        oracle,
        TrustTable(),
        ActivityClassifier(),
        PayoffConfig(),
    )


def mobile_oracle(config: MobilityConfig, seed: int):
    return build_oracle(config, list(range(N_NODES)), np.random.default_rng(seed))


def main() -> None:
    rows = []
    for label, speed in (("slow", 0.005), ("moderate", 0.02), ("fast", 0.08)):
        config = MobilityConfig(
            model="waypoint",
            speed_min=0.5 * speed,
            speed_max=1.5 * speed,
            pause_time=1.0,
            radio_range=RADIO_RANGE,
        )
        oracle = mobile_oracle(config, seed=7)
        stats = play(oracle)
        mean_deg, min_deg, max_deg = oracle.topology.degree_stats()
        rows.append(
            [
                f"waypoint {label} ({speed:g}/round)",
                f"{stats.cooperation_level * 100:.1f}%",
                f"{stats.nn_csn_free_fraction * 100:.1f}%",
                f"{oracle.topology.epoch}",
                f"{mean_deg:.1f}",
            ]
        )

    gauss = MobilityConfig(
        model="gauss-markov", mean_speed=0.02, radio_range=RADIO_RANGE
    )
    stats = play(mobile_oracle(gauss, seed=7))
    rows.append(
        [
            "gauss-markov (0.02/round)",
            f"{stats.cooperation_level * 100:.1f}%",
            f"{stats.nn_csn_free_fraction * 100:.1f}%",
            "-",
            "-",
        ]
    )

    rand_stats = play(RandomPathOracle(np.random.default_rng(9), SHORTER_PATHS))
    rows.append(
        [
            "random pairing (paper)",
            f"{rand_stats.cooperation_level * 100:.1f}%",
            f"{rand_stats.nn_csn_free_fraction * 100:.1f}%",
            "-",
            "-",
        ]
    )

    print(
        format_table(
            rows,
            headers=[
                "mobility regime",
                "NN delivery",
                "CSN-free paths",
                "topology epochs",
                "mean degree",
            ],
            title=(
                f"Altruists + {N_CSN} selfish relays,"
                f" {ROUNDS} rounds, mobile network"
            ),
        )
    )


if __name__ == "__main__":
    main()

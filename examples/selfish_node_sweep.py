"""Scenario: how much selfishness can a self-policing network absorb?

The paper's motivation (§1): battery-saving selfish nodes threaten ad hoc
networks.  This example sweeps the fraction of constantly selfish nodes in a
tournament and reports, after evolution, the delivery rate for normal nodes,
the delivery rate for the CSN themselves (the enforcement effect), and how
often sources manage to route around CSN.

Run:
    python examples/selfish_node_sweep.py
"""

from __future__ import annotations

from repro import ExperimentConfig, GAConfig, SimulationConfig
from repro.experiments.cases import EvaluationCase
from repro.experiments.runner import run_experiment
from repro.tournament.environment import TournamentEnvironment
from repro.utils.tables import format_table

POPULATION = 60
TOURNAMENT = 30
CSN_COUNTS = (0, 3, 6, 12, 18)


def sweep_point(n_csn: int):
    case = EvaluationCase(
        name=f"sweep_csn{n_csn}",
        description=f"{n_csn} CSN of {TOURNAMENT} seats",
        environments=(
            TournamentEnvironment(f"SW{n_csn}", TOURNAMENT, n_csn),
        ),
        path_mode="shorter",
    )
    config = ExperimentConfig(
        case=case,
        generations=20,
        replications=2,
        seed=42,
        engine="fast",
        ga=GAConfig(population_size=POPULATION),
        sim=SimulationConfig(rounds=60),
    )
    result = run_experiment(config)
    env = case.environments[0].name
    stats = result.final_env_stats(env)
    return stats


def main() -> None:
    rows = []
    for n_csn in CSN_COUNTS:
        print(f"evolving with {n_csn} CSN / {TOURNAMENT} seats ...")
        stats = sweep_point(n_csn)
        rows.append(
            [
                f"{n_csn}/{TOURNAMENT} ({n_csn / TOURNAMENT * 100:.0f}%)",
                f"{stats.cooperation_level * 100:.1f}%",
                f"{stats.csn_delivery_level * 100:.1f}%",
                f"{stats.nn_csn_free_fraction * 100:.1f}%",
                f"{stats.requests_from_csn.fraction_accepted() * 100:.1f}%",
            ]
        )
    print()
    print(
        format_table(
            rows,
            headers=[
                "CSN share",
                "NN delivery",
                "CSN delivery",
                "CSN-free paths",
                "CSN requests accepted",
            ],
            title="Cooperation enforcement vs selfish-node density",
        )
    )
    print(
        "\nReading: normal nodes keep communicating while CSN packets are"
        "\nfrozen out - selfishness buys battery but loses the network."
    )


if __name__ == "__main__":
    main()

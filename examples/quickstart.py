"""Quickstart: evolve forwarding strategies and watch cooperation emerge.

Runs a reduced version of the paper's evaluation case 1 (no constantly
selfish nodes, shorter paths) and prints the evolution of the cooperation
level plus the most popular evolved strategies.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ExperimentConfig, run_experiment
from repro.analysis.strategies import most_common_strategies, unknown_bit_fraction
from repro.utils.tables import ascii_lineplot, format_table


def main() -> None:
    # A laptop-sized configuration: the paper's population (100 players,
    # 50-seat tournaments) at reduced generations/rounds for a quick demo.
    config = ExperimentConfig.for_case(
        "case1",
        scale="default",
        generations=25,
        replications=2,
    )
    config = config.with_(sim=config.sim.with_(rounds=60))

    print(f"Evolving {config.ga.population_size} strategies,"
          f" {config.generations} generations x {config.sim.rounds} rounds,"
          f" {config.replications} replications...")
    result = run_experiment(config, processes=None)

    series = result.mean_cooperation_series()
    print()
    print(
        ascii_lineplot(
            {"cooperation": list(series)},
            title="Cooperation level per generation (mean over replications)",
            ylabel="coop",
            ymin=0.0,
            ymax=1.0,
            width=60,
            height=12,
        )
    )

    mean, std = result.final_cooperation()
    print(f"\nFinal cooperation: {mean * 100:.1f}% (std {std * 100:.1f}%)")
    print(
        "Unknown-node decision evolved to FORWARD in "
        f"{unknown_bit_fraction(result.final_populations()) * 100:.0f}% of strategies"
    )

    rows = [
        [strategy.to_string(), f"{fraction * 100:.1f}%"]
        for strategy, fraction in most_common_strategies(
            result.final_populations(), k=5
        )
    ]
    print()
    print(
        format_table(
            rows,
            headers=["strategy (trust0 trust1 trust2 trust3 unknown)", "share"],
            title="Most popular evolved strategies",
        )
    )


if __name__ == "__main__":
    main()

"""Didactic walkthrough of the paper's mechanisms on a five-node network.

Replays Fig. 1a (watchdog alerts), Fig. 1b (trust lookup), Fig. 1c (strategy
coding) and Fig. 2b (payoffs) step by step, printing every intermediate
quantity.  Useful for checking your understanding of the model against the
implementation.

Run:
    python examples/reputation_walkthrough.py
"""

from __future__ import annotations

from repro import (
    ActivityClassifier,
    AlwaysForwardPlayer,
    ConstantlySelfishPlayer,
    GameSetup,
    PayoffConfig,
    Strategy,
    TournamentStats,
    TrustTable,
)
from repro.game.engine import play_game

A, B, C, D, E = range(5)
NAMES = "ABCDE"


def show_tables(players) -> None:
    for pid, player in sorted(players.items()):
        snap = player.reputation.snapshot()
        if not snap:
            print(f"    {NAMES[pid]}: (no reputation data)")
            continue
        entries = ", ".join(
            f"{NAMES[s]}: ps={ps} pf={pf} rate={pf / ps:.2f}"
            for s, (ps, pf) in sorted(snap.items())
        )
        print(f"    {NAMES[pid]}: {entries}")


def main() -> None:
    trust = TrustTable()
    activity = ActivityClassifier()
    payoffs = PayoffConfig()

    print("=== Fig. 1a: watchdog updates when D drops the packet ===")
    players = {
        A: AlwaysForwardPlayer(A),
        B: AlwaysForwardPlayer(B),
        C: AlwaysForwardPlayer(C),
        D: ConstantlySelfishPlayer(D),
        E: AlwaysForwardPlayer(E),
    }
    setup = GameSetup(source=A, destination=E, paths=((B, C, D),))
    result = play_game(players, setup, 0, trust, activity, payoffs, TournamentStats())
    print(f"  A -> E via B, C, D; success={result.success},"
          f" dropped by {NAMES[result.dropper]}")
    print("  reputation tables afterwards:")
    show_tables(players)

    print("\n=== Fig. 1b: the trust lookup table ===")
    for rate in (1.0, 0.95, 0.9, 0.65, 0.5, 0.3, 0.1):
        print(f"  forwarding rate {rate:.2f} -> trust level {trust.level(rate)}")

    print("\n=== Fig. 1c: strategy coding ===")
    strategy = Strategy.from_string("000 111 000 100 1")
    print(f"  strategy: {strategy.to_string()}   (1=forward, 0=discard)")
    print(f"  trust 3 + activity LO  -> bit 9  -> "
          f"{'forward' if strategy.decide(3, 0) else 'discard'}")
    print(f"  unknown source         -> bit 12 -> "
          f"{'forward' if strategy.decide_unknown() else 'discard'}")
    for t in range(4):
        print(f"  sub-strategy for trust {t}: {strategy.sub_strategy(t)}")

    print("\n=== Fig. 2: payoff tables ===")
    print(f"  source: success={payoffs.source_success},"
          f" failure={payoffs.source_failure}")
    print(f"  forward payoff by trust 0..3: {payoffs.forward_by_trust}")
    print(f"  discard payoff by trust 0..3: {payoffs.discard_by_trust}")
    print(f"  unknown source is paid at default trust {payoffs.default_trust}")
    print(
        "\n  Forwarding for trusted nodes is an investment; discarding"
        "\n  untrusted traffic is the cheap, safe choice - exactly the"
        "\n  gradient the GA climbs."
    )


if __name__ == "__main__":
    main()

"""Scenario: how sensitive is cooperation to the payoff-table design?

DESIGN.md §2.1 reconstructs the paper's garbled intermediate payoff table as
monotone in trust (forwarding pays more for trusted sources, discarding pays
more for untrusted ones).  This study perturbs that structure and measures
the evolved cooperation level, showing which properties of the table are
load-bearing:

* the paper's monotone table sustains cooperation;
* flattening the *forward* row (no trust investment) weakens it;
* inverting the rows (forwarding for strangers pays best) distorts it;
* the no-enforcement table (discard always wins) destroys it.

Run:
    python examples/payoff_sensitivity.py
"""

from __future__ import annotations

from repro import ExperimentConfig, GAConfig, PayoffConfig, SimulationConfig
from repro.analysis.diversity import mean_pairwise_hamming, unique_fraction
from repro.experiments.cases import EvaluationCase
from repro.experiments.replication import run_replication
from repro.tournament.environment import TournamentEnvironment
from repro.utils.tables import format_table

VARIANTS: dict[str, PayoffConfig] = {
    "paper (monotone)": PayoffConfig(),
    "flat forward row": PayoffConfig(
        forward_by_trust=(1.5, 1.5, 1.5, 1.5), discard_by_trust=(3.0, 2.0, 1.0, 0.5)
    ),
    "inverted rows": PayoffConfig(
        forward_by_trust=(3.0, 2.0, 1.0, 0.5), discard_by_trust=(0.5, 1.0, 2.0, 3.0)
    ),
    "no enforcement": PayoffConfig.without_reputation(),
}


def evolve(payoffs: PayoffConfig):
    case = EvaluationCase(
        name="payoff_study",
        description="payoff sensitivity world",
        environments=(TournamentEnvironment("PS", 16, 3),),
        path_mode="shorter",
    )
    config = ExperimentConfig(
        case=case,
        generations=22,
        replications=1,
        seed=2007,
        engine="fast",
        ga=GAConfig(population_size=32),
        sim=SimulationConfig(rounds=60, payoffs=payoffs),
    )
    return run_replication(config, 0)


def main() -> None:
    rows = []
    for name, payoffs in VARIANTS.items():
        print(f"evolving under: {name} ...")
        rep = evolve(payoffs)
        coop = float(rep.history.cooperation_series()[-5:].mean())
        rows.append(
            [
                name,
                f"{coop * 100:.1f}%",
                f"{mean_pairwise_hamming(rep.final_population):.2f}",
                f"{unique_fraction(rep.final_population) * 100:.0f}%",
            ]
        )
    print()
    print(
        format_table(
            rows,
            headers=[
                "payoff table",
                "final cooperation",
                "mean pairwise Hamming",
                "unique genotypes",
            ],
            title="Payoff-table sensitivity (16-seat world, 3 CSN)",
        )
    )
    print(
        "\nThe monotone structure of Fig. 2a is load-bearing: cooperation"
        "\nneeds forwarding-for-the-trusted to out-pay discarding."
    )


if __name__ == "__main__":
    main()

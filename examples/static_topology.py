"""Scenario: a low-mobility sensor field on a static unit-disk topology.

The paper models maximal mobility (random intermediates every packet).  Here
the same game runs on a fixed geometric topology — e.g. sensors bolted to a
field — using the networkx-backed oracle.  Because neighbours recur,
reputation about the few local relays accumulates quickly and selfish relays
are identified much faster than under random pairing.

Run:
    python examples/static_topology.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AlwaysForwardPlayer,
    ConstantlySelfishPlayer,
    PayoffConfig,
    RandomPathOracle,
    SHORTER_PATHS,
    TrustTable,
)
from repro.game.stats import TournamentStats
from repro.network.topology import GeometricTopology, TopologyPathOracle
from repro.reputation.activity import ActivityClassifier
from repro.tournament.runner import run_tournament
from repro.utils.tables import format_table

N_NODES = 30
N_CSN = 6
ROUNDS = 40
RADIO_RANGE = 0.38


def build_players():
    players = {pid: AlwaysForwardPlayer(pid) for pid in range(N_NODES - N_CSN)}
    for pid in range(N_NODES - N_CSN, N_NODES):
        players[pid] = ConstantlySelfishPlayer(pid)
    return players


def play(oracle) -> TournamentStats:
    return run_tournament(
        build_players(),
        list(range(N_NODES)),
        ROUNDS,
        oracle,
        TrustTable(),
        ActivityClassifier(),
        PayoffConfig(),
    )


def main() -> None:
    rng = np.random.default_rng(7)
    topology = GeometricTopology(list(range(N_NODES)), RADIO_RANGE, rng)
    mean_deg, min_deg, max_deg = topology.degree_stats()
    print(
        f"placed {N_NODES} nodes (radio range {RADIO_RANGE});"
        f" degree mean/min/max = {mean_deg:.1f}/{min_deg}/{max_deg}"
    )

    topo_stats = play(TopologyPathOracle(topology, np.random.default_rng(8)))
    rand_stats = play(RandomPathOracle(np.random.default_rng(9), SHORTER_PATHS))

    rows = [
        [
            "static topology",
            f"{topo_stats.cooperation_level * 100:.1f}%",
            f"{topo_stats.nn_csn_free_fraction * 100:.1f}%",
            f"{topo_stats.requests_from_csn.fraction_accepted() * 100:.1f}%",
        ],
        [
            "random pairing (paper)",
            f"{rand_stats.cooperation_level * 100:.1f}%",
            f"{rand_stats.nn_csn_free_fraction * 100:.1f}%",
            f"{rand_stats.requests_from_csn.fraction_accepted() * 100:.1f}%",
        ],
    ]
    print()
    print(
        format_table(
            rows,
            headers=[
                "network model",
                "NN delivery",
                "CSN-free paths",
                "CSN requests accepted",
            ],
            title=f"Altruists + {N_CSN} selfish relays, {ROUNDS} rounds",
        )
    )


if __name__ == "__main__":
    main()

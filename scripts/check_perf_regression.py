#!/usr/bin/env python
"""Fail CI when engine throughput regresses against the committed baseline.

Compares a freshly generated ``BENCH_ENGINE.json`` (written by
``benchmarks/bench_engine_perf.py``) with the baseline committed in the repo,
on every oracle row (random, topology, mobile).

Two gates, because the baseline and the fresh run usually come from
*different machines* (dev box vs CI runner):

* **normalized** (primary, default 2.5x): each engine's wall-time ratio
  fresh/baseline is divided by the *reference* engine's ratio, which acts as
  a machine-speed canary — a runner that is uniformly 3x slower cancels out,
  while a de-vectorized batch loop does not;
* **absolute** (failsafe, default 6x): the raw fresh/baseline ratio, loose
  enough to absorb runner spread but still catching regressions in shared
  components (oracle, stats) that slow every engine together and therefore
  hide from the normalized gate.

Override with ``--factor`` / ``--absolute-factor`` or the
``REPRO_PERF_FACTOR`` / ``REPRO_PERF_ABS_FACTOR`` environment variables.

Exit codes: 0 all gates pass, 1 a gate tripped (or unusable input files),
3 a named ledger row is missing or malformed — a gated oracle row absent
from exactly one ledger, a row that is not an engine->wall mapping, or a
wall time that is not a finite number.  Rows absent from *both* ledgers
are tolerated (they simply predate the row), as are engines present in
only one ledger (engines come and go between PRs; the
no-comparable-entries guard still catches fully disjoint sets).

Usage::

    cp BENCH_ENGINE.json /tmp/baseline.json
    REPRO_BENCH_SCALE=smoke pytest benchmarks/bench_engine_perf.py -q
    python scripts/check_perf_regression.py \
        --baseline /tmp/baseline.json --fresh BENCH_ENGINE.json
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
#: Oracles whose wall times gate CI.  Since route search went native
#: (``repro.network.ksp``) the topology and mobile rows are deterministic
#: enough to gate alongside random — previously they were networkx-noise
#: dominated and report-only.  The per-round-mobility rows (exact and
#: approx route-cache policies) gate like the rest: they are the regime
#: the layered route-provider refactor exists for.
#: ``parallel_scaling`` and ``service_throughput`` are not oracles but ride
#: the same ledger: their "engines" are worker counts / service phases
#: (written by ``benchmarks/bench_parallel_scaling.py`` and
#: ``benchmarks/bench_service_throughput.py``) and, having no reference
#: canary, they are gated by the absolute failsafe only.  The ``*_stacked``
#: rows (cross-replication stacked evaluation, single ``stacked`` engine
#: per row) likewise carry no reference canary and gate absolute-only;
#: their wall is per stacked tournament, amortized over the whole R x T
#: mega-slate, so a kernel-backend swap shows up here first.
GATED_ORACLES = (
    "random",
    "topology",
    "mobile",
    "mobility_highspeed",
    "mobility_highspeed_approx",
    "random_stacked",
    "topology_stacked",
    "mobile_stacked",
    "parallel_scaling",
    "service_throughput",
)
#: The machine-speed canary for the normalized gate.
CANARY_ENGINE = "reference"
#: Distinct exit code for a missing/malformed named ledger row, so CI can
#: tell "your ledger is broken" (fix the bench) from "perf regressed".
EXIT_ROW_ERROR = 3


def load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"error: {path} not found")
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {path} is not valid JSON: {exc}")


def _row_error(message: str) -> int:
    print(f"ledger row error: {message}", file=sys.stderr)
    return EXIT_ROW_ERROR


def _check_row(name: str, oracle: str, walls) -> str | None:
    """None if the oracle row is well-formed, else a named-row error."""
    if not isinstance(walls, dict):
        return (
            f"oracle row {oracle!r} in the {name} ledger is not an"
            f" engine->wall mapping (got {type(walls).__name__})"
        )
    for engine, wall in walls.items():
        if isinstance(wall, bool) or not isinstance(wall, (int, float)):
            return (
                f"engine {engine!r} in oracle row {oracle!r} of the {name}"
                f" ledger: wall time must be a number, got {wall!r}"
            )
        if not math.isfinite(wall):
            return (
                f"engine {engine!r} in oracle row {oracle!r} of the {name}"
                f" ledger: wall time must be finite, got {wall!r}"
            )
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_ENGINE.json",
        help="committed perf ledger (default: BENCH_ENGINE.json)",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        default=REPO_ROOT / "BENCH_ENGINE.json",
        help="freshly generated ledger to validate",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=float(os.environ.get("REPRO_PERF_FACTOR", "2.5")),
        help="max allowed machine-normalized wall-time ratio (default 2.5)",
    )
    parser.add_argument(
        "--absolute-factor",
        type=float,
        default=float(os.environ.get("REPRO_PERF_ABS_FACTOR", "6.0")),
        help="max allowed raw fresh/baseline wall-time ratio (default 6.0)",
    )
    args = parser.parse_args(argv)
    if args.factor <= 0 or args.absolute_factor <= 0:
        sys.exit("error: factors must be > 0")

    baseline = load(args.baseline)
    fresh = load(args.fresh)
    failures: list[str] = []
    compared = 0
    for name, ledger in (("baseline", baseline), ("fresh", fresh)):
        table = ledger.get("wall_s", {})
        if not isinstance(table, dict):
            return _row_error(
                f"the {name} ledger's wall_s is not an oracle->row mapping"
                f" (got {type(table).__name__})"
            )
    for oracle in GATED_ORACLES:
        base_walls = baseline.get("wall_s", {}).get(oracle)
        fresh_walls = fresh.get("wall_s", {}).get(oracle)
        if base_walls is None and fresh_walls is None:
            continue  # both ledgers predate this gated row
        if base_walls is None or fresh_walls is None:
            missing_from = "baseline" if base_walls is None else "fresh"
            return _row_error(
                f"gated oracle row {oracle!r} is missing from the"
                f" {missing_from} ledger but present in the other"
            )
        for name, walls in (("baseline", base_walls), ("fresh", fresh_walls)):
            problem = _check_row(name, oracle, walls)
            if problem is not None:
                return _row_error(problem)
        canary = None
        if (
            base_walls.get(CANARY_ENGINE, 0) > 0
            and fresh_walls.get(CANARY_ENGINE, 0) > 0
        ):
            canary = fresh_walls[CANARY_ENGINE] / base_walls[CANARY_ENGINE]
            print(
                f"machine-speed canary ({CANARY_ENGINE}/{oracle}):"
                f" {canary:.2f}x the baseline machine"
            )
        for engine, base_wall in sorted(base_walls.items()):
            fresh_wall = fresh_walls.get(engine)
            if fresh_wall is None or base_wall <= 0:
                continue
            compared += 1
            raw = fresh_wall / base_wall
            checks = [("absolute", raw, args.absolute_factor)]
            if canary is not None and engine != CANARY_ENGINE:
                checks.append(("normalized", raw / canary, args.factor))
            for kind, ratio, limit in checks:
                status = "FAIL" if ratio > limit else "ok"
                print(
                    f"[{status}] {engine}/{oracle} {kind}:"
                    f" {fresh_wall * 1e3:.1f} ms vs baseline"
                    f" {base_wall * 1e3:.1f} ms ({ratio:.2f}x,"
                    f" limit {limit:.2f}x)"
                )
                if ratio > limit:
                    failures.append(f"{engine}/{oracle} {kind} ({ratio:.2f}x)")
    if compared == 0:
        sys.exit("error: no comparable wall_s entries between the two ledgers")
    if failures:
        print(f"\nperf regression: {', '.join(failures)}")
        return 1
    print(f"\nall {compared} gated engine timings within limits")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

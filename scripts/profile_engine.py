"""Profile the simulation hot loop (the HPC-guide workflow: measure first).

Runs one paper-sized tournament under cProfile for each engine and prints
the top functions by cumulative time.  Use this before attempting any
optimisation of the engines.  ``--oracle`` selects the path oracle so the
route-computation cost of the topology extensions can be measured too
(``--no-path-cache`` disables the per-(source, destination) route caches to
quantify what they save).

Run:
    python scripts/profile_engine.py [rounds] [--oracle random|topology|mobile]
        [--no-path-cache]
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
from io import StringIO

import numpy as np

from repro.core.strategy import Strategy
from repro.game.stats import TournamentStats
from repro.mobility import MobilityConfig, build_oracle
from repro.network.topology import GeometricTopology, TopologyPathOracle
from repro.paths.distributions import SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.sim import make_engine

N_NORMAL, N_CSN = 40, 10


def make_oracle(kind: str, cache: bool):
    ids = list(range(N_NORMAL + N_CSN))
    if kind == "random":
        return RandomPathOracle(np.random.default_rng(1), SHORTER_PATHS)
    if kind == "topology":
        topo = GeometricTopology(ids, 0.35, np.random.default_rng(5))
        return TopologyPathOracle(topo, np.random.default_rng(1), cache=cache)
    if kind == "mobile":
        config = MobilityConfig(model="waypoint", radio_range=0.35)
        return build_oracle(config, ids, np.random.default_rng(5))
    raise ValueError(f"unknown oracle kind {kind!r}")


def profile_engine(name: str, rounds: int, oracle_kind: str, cache: bool) -> None:
    rng = np.random.default_rng(0)
    engine = make_engine(name, N_NORMAL, N_CSN)
    engine.set_strategies([Strategy.random(rng) for _ in range(N_NORMAL)])
    participants = list(range(N_NORMAL)) + engine.selfish_ids(N_CSN)
    oracle = make_oracle(oracle_kind, cache)
    stats = TournamentStats()

    profiler = cProfile.Profile()
    profiler.enable()
    engine.run_tournament(participants, rounds, oracle, stats, None, None)
    profiler.disable()

    out = StringIO()
    ps = pstats.Stats(profiler, stream=out).sort_stats("cumulative")
    ps.print_stats(12)
    print(
        f"\n===== {name} engine, {oracle_kind} oracle"
        f"{'' if cache else ' (path cache off)'},"
        f" {rounds} rounds, {rounds * (N_NORMAL + N_CSN)} games ====="
    )
    print("\n".join(out.getvalue().splitlines()[:22]))
    info = getattr(oracle, "cache_info", None)
    if info is not None:
        print(f"route cache: {info[0]} hits / {info[1]} misses")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("rounds", nargs="?", type=int, default=60)
    parser.add_argument(
        "--oracle", default="random", choices=("random", "topology", "mobile")
    )
    parser.add_argument(
        "--no-path-cache",
        action="store_true",
        help="disable the per-(source, destination) route cache (topology oracle)",
    )
    args = parser.parse_args()
    for name in ("reference", "fast"):
        profile_engine(name, args.rounds, args.oracle, not args.no_path_cache)


if __name__ == "__main__":
    main()

"""Profile the simulation hot loop (the HPC-guide workflow: measure first).

Runs one paper-sized tournament under cProfile for each engine and prints
the top functions by cumulative time.  Use this before attempting any
optimisation of the engines.

Run:
    python scripts/profile_engine.py [rounds]
"""

from __future__ import annotations

import cProfile
import pstats
import sys
from io import StringIO

import numpy as np

from repro.core.strategy import Strategy
from repro.game.stats import TournamentStats
from repro.paths.distributions import SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.sim import make_engine


def profile_engine(name: str, rounds: int) -> None:
    rng = np.random.default_rng(0)
    engine = make_engine(name, 40, 10)
    engine.set_strategies([Strategy.random(rng) for _ in range(40)])
    participants = list(range(40)) + engine.selfish_ids(10)
    oracle = RandomPathOracle(np.random.default_rng(1), SHORTER_PATHS)
    stats = TournamentStats()

    profiler = cProfile.Profile()
    profiler.enable()
    engine.run_tournament(participants, rounds, oracle, stats, None, None)
    profiler.disable()

    out = StringIO()
    ps = pstats.Stats(profiler, stream=out).sort_stats("cumulative")
    ps.print_stats(12)
    print(f"\n===== {name} engine, {rounds} rounds, {rounds * 50} games =====")
    print("\n".join(out.getvalue().splitlines()[:22]))


def main() -> None:
    rounds = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    for name in ("reference", "fast"):
        profile_engine(name, rounds)


if __name__ == "__main__":
    main()

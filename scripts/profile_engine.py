"""Profile the simulation hot loop (the HPC-guide workflow: measure first).

Runs one paper-sized tournament under cProfile for each engine and prints
the top functions by cumulative time, followed by a per-layer wall-time
breakdown of the oracle stack (topology stepping / route search / draw
planning) so oracle work can be attributed to the right layer before
optimising it.  The breakdown and the cache statistics come from the
telemetry substrate (:mod:`repro.telemetry`): the tournament runs inside a
telemetry session, the oracle stack's layer counters are harvested into the
registry afterwards, and this script only formats that snapshot — the same
numbers a ``--telemetry`` run writes into its manifest.  ``--oracle``
selects the path oracle so the route-computation cost of the topology
extensions can be measured too; ``--route-cache``/``--drift-budget`` select
the route-provider cache policy (``--no-path-cache`` disables the
per-(source, destination) route caches to quantify what they save).

For the kernel-backed engines (turbo/fused) the same telemetry session
captures the per-op kernel timers (``kernel.decision_s`` /
``kernel.replay_s`` / ``kernel.watchdog_s`` / ...) that
:class:`repro.sim.kernels.TimedKernel` records, so a backend swap
(``--kernel numpy|numba``) shows up as a per-op before/after, not just a
total.

Run:
    python scripts/profile_engine.py [rounds] [--oracle random|topology|mobile]
        [--engines reference,fast,turbo,fused] [--kernel auto|numpy|numba]
        [--route-cache exact|approx] [--drift-budget N] [--no-path-cache]
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
from io import StringIO

import numpy as np

from repro.config.mobility import ROUTE_CACHE_POLICIES
from repro.core.strategy import Strategy
from repro.game.stats import TournamentStats
from repro.mobility import MobilityConfig, build_oracle
from repro.network.topology import GeometricTopology, TopologyPathOracle
from repro.paths.distributions import SHORTER_PATHS
from repro.paths.oracle import RandomPathOracle
from repro.sim import ENGINES, make_engine
from repro.sim.kernels import KERNEL_NAMES
from repro.telemetry import TelemetryConfig, harvest_oracle, telemetry_session

N_NORMAL, N_CSN = 40, 10


def make_oracle(kind: str, cache: bool, route_cache: str, drift_budget: int):
    ids = list(range(N_NORMAL + N_CSN))
    if kind == "random":
        return RandomPathOracle(np.random.default_rng(1), SHORTER_PATHS)
    if kind == "topology":
        topo = GeometricTopology(ids, 0.35, np.random.default_rng(5))
        return TopologyPathOracle(topo, np.random.default_rng(1), cache=cache)
    if kind == "mobile":
        config = MobilityConfig(
            model="waypoint",
            radio_range=0.35,
            route_cache=route_cache,
            drift_budget=drift_budget,
        )
        return build_oracle(config, ids, np.random.default_rng(5))
    raise ValueError(f"unknown oracle kind {kind!r}")


def _timed_draws(oracle, timer) -> None:
    """Wrap the oracle's draw entry points with a telemetry timer."""
    for name in ("draw", "draw_tournament"):
        method = getattr(oracle, name, None)
        if method is None:
            continue

        def wrapper(*args, _method=method, **kwargs):
            with timer.time():
                return _method(*args, **kwargs)

        setattr(oracle, name, wrapper)


def _layer_breakdown(snapshot: dict, draw_s: float) -> list[tuple[str, float]]:
    """(layer, seconds) rows for the oracle stack, planner last.

    Route search and topology stepping are measured inside the providers
    and harvested into the registry (``mobility.step_s`` /
    ``route.<policy>.search_s``); draw planning is what remains of the
    oracle's draw wall time.
    """
    counters = snapshot["counters"]
    step_s = counters.get("mobility.step_s", 0.0)
    search_s = sum(
        value
        for name, value in counters.items()
        if name.startswith("route.") and name.endswith(".search_s")
    )
    planning = max(draw_s - step_s - search_s, 0.0)
    return [
        ("topology step", step_s),
        ("route search", search_s),
        ("draw planning", planning),
        ("oracle total", draw_s),
    ]


def _print_kernel_breakdown(snapshot: dict, engine) -> None:
    """Per-op kernel timers for the kernel-backed engines.

    The engine installs :class:`TimedKernel` around its backend whenever an
    ambient telemetry session is active, so the profiled tournament already
    paid for these numbers — this only formats them.
    """
    if not getattr(engine, "supports_kernel_backends", False):
        return
    timers = snapshot["timers"]
    rows = [
        (name.removeprefix("kernel.").removesuffix("_s"), timer)
        for name, timer in sorted(timers.items())
        if name.startswith("kernel.")
    ]
    if not rows:
        return
    print(f"\nkernel ops (backend: {engine._kernel.name}):")
    for op, timer in rows:
        print(
            f"  {op:10s} {timer['total_s'] * 1e3:8.1f} ms"
            f"  ({timer['count']:.0f} calls)"
        )


def _print_cache_stats(snapshot: dict) -> None:
    """Route-cache counters for whichever policy the harvest recorded."""
    counters = snapshot["counters"]
    for prefix in sorted(
        {name.rsplit(".", 1)[0] for name in counters if name.startswith("route.")}
    ):
        hits = counters.get(f"{prefix}.cache_hits")
        if hits is None:
            continue
        print(
            f"route cache ({prefix.removeprefix('route.')}):"
            f" {hits:.0f} hits / {counters.get(f'{prefix}.cache_misses', 0):.0f}"
            " misses"
        )
        stale = counters.get(f"{prefix}.stale_serves", 0)
        if stale:
            print(
                f"approx policy: {stale:.0f} stale serves,"
                f" {counters.get(f'{prefix}.revalidations', 0):.0f}"
                " lazy revalidations"
            )


def profile_engine(
    name: str,
    rounds: int,
    oracle_kind: str,
    cache: bool,
    route_cache: str,
    drift_budget: int,
    kernel: str = "auto",
) -> None:
    rng = np.random.default_rng(0)
    engine = make_engine(name, N_NORMAL, N_CSN, kernel=kernel)
    engine.set_strategies([Strategy.random(rng) for _ in range(N_NORMAL)])
    participants = list(range(N_NORMAL)) + engine.selfish_ids(N_CSN)
    oracle = make_oracle(oracle_kind, cache, route_cache, drift_budget)
    stats = TournamentStats()

    with telemetry_session(TelemetryConfig(enabled=True, events=False)) as tel:
        draw_timer = tel.registry.timer("oracle.draw_s")
        _timed_draws(oracle, draw_timer)
        profiler = cProfile.Profile()
        profiler.enable()
        engine.run_tournament(participants, rounds, oracle, stats, None, None)
        profiler.disable()
        harvest_oracle(tel, oracle)
        snapshot = tel.snapshot()
        draw_s = draw_timer.total_s

    out = StringIO()
    ps = pstats.Stats(profiler, stream=out).sort_stats("cumulative")
    ps.print_stats(12)
    policy = f", {route_cache} route cache" if oracle_kind == "mobile" else ""
    print(
        f"\n===== {name} engine, {oracle_kind} oracle{policy}"
        f"{'' if cache else ' (path cache off)'},"
        f" {rounds} rounds, {rounds * (N_NORMAL + N_CSN)} games ====="
    )
    print("\n".join(out.getvalue().splitlines()[:22]))
    print("\noracle layers (wall time inside the profiled tournament):")
    for layer, seconds in _layer_breakdown(snapshot, draw_s):
        print(f"  {layer:14s} {seconds * 1e3:8.1f} ms")
    _print_kernel_breakdown(snapshot, engine)
    _print_cache_stats(snapshot)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("rounds", nargs="?", type=int, default=60)
    parser.add_argument(
        "--oracle", default="random", choices=("random", "topology", "mobile")
    )
    parser.add_argument(
        "--route-cache",
        default="exact",
        choices=ROUTE_CACHE_POLICIES,
        help="route-provider cache policy for the mobile oracle",
    )
    parser.add_argument(
        "--drift-budget",
        type=int,
        default=8,
        help="epochs a cached route may be served stale (approx policy)",
    )
    parser.add_argument(
        "--no-path-cache",
        action="store_true",
        help="disable the per-(source, destination) route cache (topology oracle)",
    )
    parser.add_argument(
        "--engines",
        default="reference,fast,turbo",
        help="comma-separated engines to profile"
        f" (available: {','.join(ENGINES)})",
    )
    parser.add_argument(
        "--kernel",
        default="auto",
        choices=KERNEL_NAMES,
        help="kernel backend for the turbo/fused engines; the per-op"
        " breakdown makes a backend swap attributable op by op",
    )
    args = parser.parse_args()
    if args.drift_budget < 0:
        parser.error(f"--drift-budget must be >= 0, got {args.drift_budget}")
    names = [n.strip() for n in args.engines.split(",") if n.strip()]
    unknown = [n for n in names if n not in ENGINES]
    if unknown:
        parser.error(f"unknown engine(s) {unknown}; available: {sorted(ENGINES)}")
    for name in names:
        profile_engine(
            name,
            args.rounds,
            args.oracle,
            not args.no_path_cache,
            args.route_cache,
            args.drift_budget,
            kernel=args.kernel,
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""CI fault-tolerance gate: kill a checkpointing run mid-flight, resume it,
and demand byte-identity with an uninterrupted control run.

Three runs of the same case through the real CLI:

1. **control** — uninterrupted, no checkpoints;
2. **victim** — checkpoints on, with ``REPRO_CHECKPOINT_CRASH_AFTER=N`` so
   the process SIGKILLs itself the moment its N-th checkpoint hits disk
   (see ``repro.experiments.checkpoint``) — a real mid-run death, not a
   mocked one;
3. **resume** — the same command with ``--resume``, which must pick up from
   the newest intact checkpoint (generation ``N - 1``) and finish.

The resumed run's raw-results JSON must match the control's byte-for-byte
once the ``checkpoint`` provenance block (which legitimately differs:
``resumed_from_generation``) is dropped.  Any drift — one bit of rng state
mis-restored, one history row off — fails the gate.

Exit codes: 0 success, 1 identity violation, 2 orchestration failure
(a run that should have died survived, or vice versa).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

CRASH_ENV = "REPRO_CHECKPOINT_CRASH_AFTER"


def run_case(
    args: argparse.Namespace,
    out: Path,
    checkpoint_dir: Path | None = None,
    resume: bool = False,
    crash_after: int | None = None,
) -> subprocess.CompletedProcess:
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "run-case",
        args.case,
        "--scale",
        args.scale,
        "--seed",
        str(args.seed),
        "--generations",
        str(args.generations),
        "--replications",
        "1",
        "--processes",
        "1",
        "--out",
        str(out),
    ]
    if checkpoint_dir is not None:
        cmd += ["--checkpoint-dir", str(checkpoint_dir)]
    if resume:
        cmd += ["--resume"]
    env = os.environ.copy()
    env.pop(CRASH_ENV, None)
    if crash_after is not None:
        env[CRASH_ENV] = str(crash_after)
    injected = f"  [{CRASH_ENV}={crash_after}]" if crash_after else ""
    print(f"$ {' '.join(cmd)}{injected}")
    return subprocess.run(cmd, env=env)


def canonical(path: Path) -> str:
    """The raw-results JSON as a canonical string, checkpoint/telemetry
    provenance stripped (both are compare=False metadata, not results)."""
    data = json.loads(path.read_text())
    for rep in data.get("replications", []):
        rep.pop("checkpoint", None)
        rep.pop("telemetry", None)
    return json.dumps(data, sort_keys=True, indent=None)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--case", default="case1")
    parser.add_argument("--scale", default="smoke")
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument("--generations", type=int, default=6)
    parser.add_argument(
        "--crash-after",
        type=int,
        default=3,
        help="SIGKILL the victim after its N-th checkpoint (must be mid-run)",
    )
    parser.add_argument(
        "--workdir",
        type=Path,
        default=None,
        help="where runs and checkpoints land (default: a fresh temp dir)",
    )
    args = parser.parse_args()
    if not 1 <= args.crash_after < args.generations:
        print(
            f"--crash-after must be in [1, generations), got {args.crash_after}",
            file=sys.stderr,
        )
        return 2

    workdir = args.workdir or Path(tempfile.mkdtemp(prefix="crash-resume-"))
    workdir.mkdir(parents=True, exist_ok=True)
    control_json = workdir / "control.json"
    victim_json = workdir / "victim.json"
    checkpoints = workdir / "checkpoints"
    print(f"workdir: {workdir}")

    print("\n[1/3] control run (uninterrupted)")
    if run_case(args, control_json).returncode != 0:
        print("control run failed", file=sys.stderr)
        return 2

    print("\n[2/3] victim run (crash injection)")
    victim = run_case(
        args, victim_json, checkpoint_dir=checkpoints, crash_after=args.crash_after
    )
    if victim.returncode == 0:
        print(
            "victim run survived — crash injection did not fire", file=sys.stderr
        )
        return 2
    if victim_json.exists():
        print("victim wrote results despite dying mid-run", file=sys.stderr)
        return 2
    print(f"victim died as injected (rc={victim.returncode})")

    print("\n[3/3] resumed run")
    if (
        run_case(args, victim_json, checkpoint_dir=checkpoints, resume=True).returncode
        != 0
    ):
        print("resumed run failed", file=sys.stderr)
        return 2

    resumed_raw = json.loads(victim_json.read_text())
    provenance = resumed_raw["replications"][0].get("checkpoint") or {}
    resumed_from = provenance.get("resumed_from_generation")
    expected = args.crash_after - 1
    if resumed_from != expected:
        print(
            f"expected resume from generation {expected}"
            f" (checkpoint {args.crash_after} was the fatal one),"
            f" got {resumed_from!r}",
            file=sys.stderr,
        )
        return 2

    if canonical(victim_json) != canonical(control_json):
        print(
            "IDENTITY VIOLATION: resumed results differ from the"
            f" uninterrupted control\n  control: {control_json}\n"
            f"  resumed: {victim_json}",
            file=sys.stderr,
        )
        return 1
    print(
        f"\nOK: resumed run (from generation {resumed_from}) is byte-identical"
        " to the uninterrupted control"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""CI serving-layer gate: boot ``repro serve``, drive one job end to end.

The sequence, all through the real HTTP surface (whichever backend the
container has — the script works against both the FastAPI skin and the
dependency-free stdlib fallback):

1. start ``python -m repro serve`` on an ephemeral port and poll
   ``/healthz`` until it answers;
2. ``POST /jobs`` the smoke scenario, expect **201** (created);
3. ``POST`` the same scenario again, expect **200** and the *same*
   ``job_id`` — content-addressed dedupe is the service's core promise;
4. poll ``GET /jobs/<id>`` to a terminal state, demand ``done``;
5. validate the status payload's embedded run manifest against
   ``RUN_MANIFEST_KEYS`` (``validate_run_manifest``) and check its
   ``config_hash`` equals the job id;
6. fetch ``GET /jobs/<id>/result`` and check it carries replications.

Exit codes: 0 success, 1 contract violation (wrong status/state/schema),
2 orchestration failure (server never came up, scenario missing).
"""

from __future__ import annotations

import argparse
import json
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def request(url: str, payload: dict | None = None) -> tuple[int, dict]:
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode() if payload is not None else None,
        headers={"Content-Type": "application/json"},
        method="POST" if payload is not None else "GET",
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def wait_for_health(base: str, server: subprocess.Popen, deadline_s: float) -> bool:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if server.poll() is not None:
            return False
        try:
            if request(f"{base}/healthz")[0] == 200:
                return True
        except (urllib.error.URLError, ConnectionError, TimeoutError):
            time.sleep(0.2)
    return False


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario",
        type=Path,
        default=REPO_ROOT / "scenarios" / "fig4_smoke.yaml",
        help="scenario file to submit (default scenarios/fig4_smoke.yaml)",
    )
    parser.add_argument(
        "--backend",
        default="auto",
        choices=("auto", "fastapi", "stdlib"),
        help="which repro serve backend to boot (default auto)",
    )
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args()
    if not args.scenario.exists():
        print(f"scenario not found: {args.scenario}", file=sys.stderr)
        return 2
    # parse via the scenario layer so the submission is exactly what
    # `repro run` would execute (and fails fast if the file is invalid)
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.scenarios import load_scenario
    from repro.utils.validation import validate_run_manifest

    scenario = load_scenario(args.scenario)
    port = free_port()
    base = f"http://127.0.0.1:{port}"
    workdir = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--host",
        "127.0.0.1",
        "--port",
        str(port),
        "--root",
        str(workdir / "store"),
        "--backend",
        args.backend,
        "--scenarios",
        str(args.scenario.parent),
    ]
    print(f"$ {' '.join(cmd)}")
    server = subprocess.Popen(cmd)
    try:
        if not wait_for_health(base, server, deadline_s=60):
            print("server never became healthy", file=sys.stderr)
            return 2
        print(f"healthy at {base}")

        code, record = request(f"{base}/jobs", scenario)
        if code != 201:
            print(f"first submit: expected 201, got {code}: {record}", file=sys.stderr)
            return 1
        job_id = record["job_id"]
        print(f"submitted {scenario['name']} -> job {job_id[:16]} (201)")

        code, again = request(f"{base}/jobs", scenario)
        if code != 200 or again.get("job_id") != job_id:
            print(
                f"duplicate submit must dedupe to 200/{job_id[:16]},"
                f" got {code}/{again.get('job_id', '?')[:16]}",
                file=sys.stderr,
            )
            return 1
        print("duplicate submission deduped (200, same content address)")

        deadline = time.monotonic() + args.timeout
        status: dict = {}
        while time.monotonic() < deadline:
            code, status = request(f"{base}/jobs/{job_id}")
            if code != 200:
                print(f"status: expected 200, got {code}", file=sys.stderr)
                return 1
            if status["state"] in ("done", "failed"):
                break
            time.sleep(0.5)
        if status.get("state") != "done":
            print(f"job did not finish cleanly: {status}", file=sys.stderr)
            return 1
        print(f"job done after {status['attempts']} attempt(s)")

        manifest = status.get("manifest")
        try:
            validate_run_manifest(manifest, name="status manifest")
        except ValueError as exc:
            print(f"served manifest violates the schema: {exc}", file=sys.stderr)
            return 1
        if manifest["config_hash"] != job_id:
            print(
                "manifest config_hash does not match the job's content"
                f" address: {manifest['config_hash'][:16]} != {job_id[:16]}",
                file=sys.stderr,
            )
            return 1
        print("status payload serves a schema-valid run manifest")

        code, result = request(f"{base}/jobs/{job_id}/result")
        if code != 200 or not result.get("replications"):
            print(f"result: expected replications, got {code}", file=sys.stderr)
            return 1
        print(f"result carries {len(result['replications'])} replication(s)")
        print("\nOK: service round trip (submit, dedupe, run, manifest, result)")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=15)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    raise SystemExit(main())

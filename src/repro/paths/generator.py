"""Random generation of candidate path sets (§6.1, "Selecting paths").

For each game: draw a hop count from the mode's hop distribution, draw the
number of available alternate paths conditioned on that hop count (Table 3),
then build each path as ``hops - 1`` distinct intermediates sampled uniformly
without replacement from the participant pool (excluding source and
destination).  Alternate paths are sampled independently and may overlap.

Sampling-without-replacement uses a partial Fisher–Yates shuffle over a
scratch list, which is both exact and O(m) per path — measurably faster in
the hot loop than ``Generator.choice(..., replace=False)``, which builds a
full permutation internally for small pools.  The swap indices are derived
from a single ``Generator.random(k)`` call: profiling showed the bounded
``Generator.integers(0, array_of_bounds)`` path carries ~10x the fixed
overhead of a uniform batch (bounds broadcasting plus per-element rejection
sampling), and mapping ``u -> i + floor(u * (n - i))`` is exact up to float
quantisation (pools are tens of nodes, so the bias is ~2^-47 per draw).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.paths.distributions import (
    DEFAULT_PATH_COUNTS,
    HopDistribution,
    PathCountDistribution,
)

__all__ = ["PathSetGenerator", "sample_distinct"]


def sample_distinct(
    pool: list[int], k: int, rng: np.random.Generator
) -> tuple[int, ...]:
    """Draw ``k`` distinct elements from ``pool`` uniformly, order random.

    Mutates ``pool`` in place (partial Fisher–Yates); the pool keeps the same
    multiset of elements, only their order changes, so callers can reuse it.
    """
    n = len(pool)
    if k > n:
        raise ValueError(f"cannot draw {k} distinct nodes from a pool of {n}")
    # Draw all k random uniforms in one call: one RNG invocation per path
    # instead of one per hop (profiling showed per-call overhead dominates).
    if k == 0:
        return ()
    us = rng.random(k).tolist()
    for i in range(k):
        j = i + int(us[i] * (n - i))
        pool[i], pool[j] = pool[j], pool[i]
    return tuple(pool[:k])


class PathSetGenerator:
    """Draws (hop count, alternate path set) pairs for one game."""

    def __init__(
        self,
        hop_distribution: HopDistribution,
        count_distribution: PathCountDistribution | None = None,
    ):
        self.hop_distribution = hop_distribution
        self.count_distribution = (
            DEFAULT_PATH_COUNTS if count_distribution is None else count_distribution
        )

    def generate(
        self,
        rng: np.random.Generator,
        pool: Sequence[int],
    ) -> list[tuple[int, ...]]:
        """Generate the candidate path set for one game.

        ``pool`` is the set of possible intermediates (participants minus
        source and destination).  The hop count is clamped so a path never
        needs more intermediates than the pool holds (only relevant for tiny
        tournaments; the paper's pool of 48 always accommodates 9).
        """
        hops = self.hop_distribution.sample(rng)
        n_intermediates = min(hops - 1, len(pool))
        if n_intermediates < 1:
            raise ValueError("participant pool too small for any path")
        n_paths = self.count_distribution.sample(rng, hops)
        scratch = list(pool)
        return [
            sample_distinct(scratch, n_intermediates, rng) for _ in range(n_paths)
        ]

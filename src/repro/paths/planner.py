"""Draw-planner layer: destination sampling over a route provider.

Top layer of the oracle stack's three-layer split (topology provider →
route provider → draw planner; see :mod:`repro.network.provider`).  The
planner owns the *draw semantics* that used to be duplicated between the
topology and mobile oracles:

* :func:`draw_setup` — the sequential rejection-sampling destination draw
  (uniform over the source's others, redrawn while the drawn pair has no
  route, capped at ``max_draws``);
* :func:`plan_round` — the batched form: one :data:`PlannedGame` per
  source, **stream-identical** to calling :func:`draw_setup` per source
  (same RNG methods, same arguments, same order), with an optional ``tick``
  hook fired once per game for draw-count-clocked topology stepping.

The vectorized face of this layer lives in :mod:`repro.paths.vector`
(whole-tournament draws packed into ``GamePlanArrays`` for the turbo
engine); :func:`repro.paths.oracle.plan_games` is the oracle-generic
dispatch that picks an oracle's batched path when it has one.

Both loops consume randomness *identically* to the per-game form —
``others[int(rng.integers(len(others)))]`` per attempt, nothing else — so
an engine interleaving sequential and batched drawing on a shared generator
cannot change a trajectory.  That property is what keeps the
reference/fast/batch trio bit-identical through this refactor, and it is
pinned by the stream-identity suites in ``tests/test_network_topology.py``
and ``tests/test_mobility_oracle.py``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.paths.oracle import PlannedGame, plan_games

__all__ = ["draw_setup", "plan_round", "plan_games"]

#: Route lookup: (source, destination) -> candidate paths (possibly empty).
RouteFn = Callable[[int, int], Sequence[Sequence[int]]]


def draw_setup(
    rng: np.random.Generator,
    source: int,
    others: Sequence[int],
    routes: RouteFn,
    max_draws: int,
) -> tuple[int, Sequence[Sequence[int]]]:
    """Draw one game's (destination, paths) by rejection sampling.

    The destination is uniform over ``others``; a drawn destination with no
    route is rejected and redrawn, up to ``max_draws`` attempts before
    giving up with a descriptive error.
    """
    integers = rng.integers
    n_others = len(others)
    for _ in range(max_draws):
        destination = others[int(integers(n_others))]
        paths = routes(source, destination)
        if paths:
            return destination, paths
    raise RuntimeError(
        f"no routable destination found for source {source} after"
        f" {max_draws} draws; topology too sparse for this game"
    )


def plan_round(
    rng: np.random.Generator,
    sources: Sequence[int],
    participants: Sequence[int],
    routes: RouteFn,
    max_draws: int,
    tick: Callable[[], None] | None = None,
) -> list[PlannedGame]:
    """Draw a whole round's (or tournament's) games in one batch.

    Stream-identical to :func:`draw_setup` once per source; the speedup is
    per-game overhead removal (cached ``others`` pools, no ``GameSetup``
    construction).  ``tick``, when given, fires once per game *before* its
    destination draws — the hook draw-count-clocked topologies use to step
    (and possibly consume the shared generator) at exactly the same draw
    counts as the sequential form.
    """
    integers = rng.integers
    others_cache: dict[int, list[int]] = {}
    cache_get = others_cache.get
    plan: list[PlannedGame] = []
    append = plan.append
    for source in sources:
        others = cache_get(source)
        if others is None:
            others = [p for p in participants if p != source]
            others_cache[source] = others
        if not others:
            raise ValueError("need at least one potential destination")
        if tick is not None:
            tick()
        n_others = len(others)
        for _ in range(max_draws):
            destination = others[int(integers(n_others))]
            paths = routes(source, destination)
            if paths:
                append((source, destination, paths))
                break
        else:
            raise RuntimeError(
                f"no routable destination found for source {source} after"
                f" {max_draws} draws; topology too sparse for this game"
            )
    return plan

"""Path oracles — the single source of randomness for game setup.

A *path oracle* answers, for each game, "who is the destination and which
candidate paths exist?".  Both simulation engines (reference and fast) call
the oracle in exactly the same order (round by round, source by source), so
two engines sharing an identically-seeded oracle consume identical random
streams and produce bit-identical trajectories — the property exploited by
``tests/test_engine_equivalence.py``.

Oracles also underpin testing: :class:`ScriptedPathOracle` replays a fixed
schedule so unit tests can script exact scenarios (e.g. the paper's Fig. 1a
example), and :mod:`repro.network.topology` provides a geometric-topology
oracle as a low-mobility extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

import numpy as np

from repro.paths.distributions import HopDistribution, PathCountDistribution
from repro.paths.generator import PathSetGenerator

__all__ = ["GameSetup", "PathOracle", "RandomPathOracle", "ScriptedPathOracle"]


@dataclass(frozen=True)
class GameSetup:
    """Everything random about one game: destination and candidate paths."""

    source: int
    destination: int
    paths: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not self.paths:
            raise ValueError("a game needs at least one candidate path")
        for path in self.paths:
            if self.source in path or self.destination in path:
                raise ValueError(
                    f"path {path} contains source/destination "
                    f"({self.source}/{self.destination})"
                )
            if len(set(path)) != len(path):
                raise ValueError(f"path {path} repeats an intermediate")


class PathOracle(Protocol):
    """Protocol implemented by all oracles."""

    def draw(self, source: int, participants: Sequence[int]) -> GameSetup:
        """Produce the setup of the next game originated by ``source``."""
        ...


class RandomPathOracle:
    """The paper's oracle: random destination, random paths (high mobility).

    "All intermediate nodes are chosen randomly.  This simulates a network
    with a high mobility level, in which topology changes very fast." (§4.1)
    """

    def __init__(
        self,
        rng: np.random.Generator,
        hop_distribution: HopDistribution,
        count_distribution: PathCountDistribution | None = None,
    ):
        self.rng = rng
        self.generator = PathSetGenerator(hop_distribution, count_distribution)

    def draw(self, source: int, participants: Sequence[int]) -> GameSetup:
        others = [p for p in participants if p != source]
        if len(others) < 2:
            raise ValueError(
                "need at least 3 participants (source, destination, 1 intermediate)"
            )
        destination = others[int(self.rng.integers(len(others)))]
        pool = [p for p in others if p != destination]
        paths = self.generator.generate(self.rng, pool)
        return GameSetup(
            source=source, destination=destination, paths=tuple(paths)
        )


class ScriptedPathOracle:
    """Replays a pre-built schedule of :class:`GameSetup`s (testing).

    The schedule is consumed in order; drawing past the end raises.  ``draw``
    verifies the requested source matches the scripted one, catching
    scheduling bugs in the engines early.
    """

    def __init__(self, setups: Iterable[GameSetup]):
        self._setups = list(setups)
        self._next = 0

    def draw(self, source: int, participants: Sequence[int]) -> GameSetup:
        if self._next >= len(self._setups):
            raise IndexError("scripted oracle exhausted")
        setup = self._setups[self._next]
        self._next += 1
        if setup.source != source:
            raise AssertionError(
                f"scripted setup #{self._next - 1} is for source {setup.source}, "
                f"engine asked for {source}"
            )
        return setup

    @property
    def remaining(self) -> int:
        """Number of scripted games not yet consumed."""
        return len(self._setups) - self._next

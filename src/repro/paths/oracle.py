"""Path oracles — the single source of randomness for game setup.

A *path oracle* answers, for each game, "who is the destination and which
candidate paths exist?".  Both simulation engines (reference and fast) call
the oracle in exactly the same order (round by round, source by source), so
two engines sharing an identically-seeded oracle consume identical random
streams and produce bit-identical trajectories — the property exploited by
``tests/test_engine_equivalence.py``.

Oracles also underpin testing: :class:`ScriptedPathOracle` replays a fixed
schedule so unit tests can script exact scenarios (e.g. the paper's Fig. 1a
example), and :mod:`repro.network.topology` provides a geometric-topology
oracle as a low-mobility extension.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

import numpy as np

from repro.paths.distributions import HopDistribution, PathCountDistribution
from repro.paths.generator import PathSetGenerator, sample_distinct

__all__ = [
    "GameSetup",
    "PathOracle",
    "PlannedGame",
    "RandomPathOracle",
    "ScriptedPathOracle",
    "plan_games",
]

#: One pre-drawn game in struct-of-arrays-friendly raw form:
#: ``(source, destination, candidate_paths)``.  Carries exactly the fields of
#: :class:`GameSetup` without object construction/validation cost — the batch
#: engine consumes thousands per tournament, read-only, so the path sequences
#: may be lists or (cached) tuples.
PlannedGame = tuple[int, int, Sequence[Sequence[int]]]


@dataclass(frozen=True)
class GameSetup:
    """Everything random about one game: destination and candidate paths."""

    source: int
    destination: int
    paths: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.source == self.destination:
            # a self-addressed game has no forwarding decision to score and
            # would silently corrupt fitness accounting downstream
            raise ValueError(
                f"source and destination are both {self.source};"
                " a game needs two distinct endpoints"
            )
        if not self.paths:
            raise ValueError("a game needs at least one candidate path")
        for path in self.paths:
            if self.source in path or self.destination in path:
                raise ValueError(
                    f"path {path} contains source/destination "
                    f"({self.source}/{self.destination})"
                )
            if len(set(path)) != len(path):
                raise ValueError(f"path {path} repeats an intermediate")


class PathOracle(Protocol):
    """Protocol implemented by all oracles."""

    def draw(self, source: int, participants: Sequence[int]) -> GameSetup:
        """Produce the setup of the next game originated by ``source``."""
        ...


class RandomPathOracle:
    """The paper's oracle: random destination, random paths (high mobility).

    "All intermediate nodes are chosen randomly.  This simulates a network
    with a high mobility level, in which topology changes very fast." (§4.1)
    """

    def __init__(
        self,
        rng: np.random.Generator,
        hop_distribution: HopDistribution,
        count_distribution: PathCountDistribution | None = None,
    ):
        self.rng = rng
        self.generator = PathSetGenerator(hop_distribution, count_distribution)
        self._plan_tables: tuple | None = None

    def draw(self, source: int, participants: Sequence[int]) -> GameSetup:
        others = [p for p in participants if p != source]
        if len(others) < 2:
            raise ValueError(
                "need at least 3 participants (source, destination, 1 intermediate)"
            )
        destination = others[int(self.rng.integers(len(others)))]
        pool = [p for p in others if p != destination]
        paths = self.generator.generate(self.rng, pool)
        return GameSetup(
            source=source, destination=destination, paths=tuple(paths)
        )

    # -- batched drawing (struct-of-arrays engines) --------------------------

    def _tables(self):
        """Plain-Python inverse-CDF tables for the batched draw path."""
        if self._plan_tables is None:
            hop_dist = self.generator.hop_distribution.dist
            hop_values = hop_dist.values
            hop_cum = list(hop_dist.cumulative)
            counts = self.generator.count_distribution
            count_lut = {
                h: (d.values, list(d.cumulative))
                for h in hop_values
                for d in (counts.distribution_for(h),)
            }
            self._plan_tables = (hop_values, hop_cum, count_lut)
        return self._plan_tables

    def draw_tournament(
        self, sources: Sequence[int], participants: Sequence[int]
    ) -> list[PlannedGame]:
        """Draw the games of a whole round (or tournament) in one batch.

        Returns one :data:`PlannedGame` per entry of ``sources``, in order.
        **Stream-identical** to calling :meth:`draw` once per source: the same
        RNG methods are invoked with the same arguments in the same order
        (destination ``integers``, hop/count uniform + right-bisection, one
        ``random(k)`` per path), so interleaving batched and per-game drawing
        across engines cannot change a trajectory — the property the
        engine-equivalence suite relies on.  The speedup is pure Python
        overhead: cached ``others`` pools, bisect instead of numpy
        ``searchsorted`` dispatch, and no per-game ``GameSetup``
        construction/validation.
        """
        hop_values, hop_cum, count_lut = self._tables()
        rng = self.rng
        integers, random = rng.integers, rng.random
        participants = list(participants)
        others_cache: dict[int, list[int]] = {}
        cache_get = others_cache.get
        plan: list[PlannedGame] = []
        append = plan.append
        for source in sources:
            others = cache_get(source)
            if others is None:
                others = [p for p in participants if p != source]
                others_cache[source] = others
            # sized per source: a source outside ``participants`` leaves all
            # of them in ``others``, exactly as draw() sees it
            n_others = len(others)
            if n_others < 2:
                raise ValueError(
                    "need at least 3 participants"
                    " (source, destination, 1 intermediate)"
                )
            n = n_others - 1  # pool size once the destination is removed
            destination = others[int(integers(n_others))]
            pool = others.copy()
            pool.remove(destination)
            # One batched uniform for the hop and count draws: numpy
            # generators fill arrays element-by-element off the same bit
            # stream, so random(2) yields exactly the two scalars draw()
            # consumes.  (On the pool-too-small *error* path the count
            # uniform is consumed a moment earlier than draw() would —
            # irrelevant, the exception kills the tournament either way.)
            u_hop, u_count = random(2).tolist()
            hops = hop_values[bisect_right(hop_cum, u_hop)]
            k = hops - 1 if hops - 1 < n else n
            if k < 1:
                raise ValueError("participant pool too small for any path")
            cvalues, ccum = count_lut[hops]
            n_paths = cvalues[bisect_right(ccum, u_count)]
            # the one shared definition of the partial Fisher-Yates draw:
            # calling it keeps this batched path and generate() stream-locked
            paths = [
                list(sample_distinct(pool, k, rng)) for _ in range(n_paths)
            ]
            append((source, destination, paths))
        return plan


class ScriptedPathOracle:
    """Replays a pre-built schedule of :class:`GameSetup`s (testing).

    The schedule is consumed in order; drawing past the end raises.  ``draw``
    verifies the requested source matches the scripted one, catching
    scheduling bugs in the engines early.
    """

    def __init__(self, setups: Iterable[GameSetup]):
        self._setups = list(setups)
        self._next = 0

    def draw(self, source: int, participants: Sequence[int]) -> GameSetup:
        if self._next >= len(self._setups):
            raise IndexError("scripted oracle exhausted")
        setup = self._setups[self._next]
        self._next += 1
        if setup.source != source:
            raise AssertionError(
                f"scripted setup #{self._next - 1} is for source {setup.source}, "
                f"engine asked for {source}"
            )
        return setup

    @property
    def remaining(self) -> int:
        """Number of scripted games not yet consumed."""
        return len(self._setups) - self._next


def plan_games(
    oracle: PathOracle, sources: Sequence[int], participants: Sequence[int]
) -> list[PlannedGame]:
    """Pre-draw one round's games from any oracle, in source order.

    Uses the oracle's batched ``draw_tournament`` when it has one (all
    production oracles do: :class:`RandomPathOracle`,
    ``TopologyPathOracle``, ``MobilePathOracle`` — each pinned
    stream-identical to its per-game ``draw``), otherwise falls back to
    per-game :meth:`draw` calls in the same order.  Both modes are stream-
    and state-identical to an engine drawing each
    game just before playing it, because games consume no randomness
    themselves and no oracle mutates per-draw state based on game outcomes —
    so pre-drawing only moves the *timing* of the draws, never their values.

    Callers that interleave other consumers of the oracle's generator between
    games (none exist today; the reputation exchange runs between *rounds*)
    must not pre-draw across those boundaries — which is why the batch engine
    plans one round at a time when the exchange extension is enabled.
    """
    batched = getattr(oracle, "draw_tournament", None)
    if batched is not None:
        return batched(sources, participants)
    return [
        (setup.source, setup.destination, setup.paths)
        for setup in (oracle.draw(source, participants) for source in sources)
    ]

"""Vectorized tournament-plan sampling for the turbo engine.

The bit-identical engines draw game setups through the oracle's sequential
RNG protocol (``draw`` / the stream-identical ``draw_tournament``), which
pins every trajectory but caps throughput: profiling shows the per-game draw
overhead — not the game kernel — dominates the batch engine on the random
oracle (~9 of ~11 us/game at table-5 scale).

The turbo engine's contract is *statistical* (distributional), not
bit-identical, which unlocks a different sampler: draw the whole tournament's
destinations, hop counts, path counts and intermediate sets as a handful of
numpy array operations.  Every marginal and joint distribution matches the
sequential sampler exactly —

* destination: uniform over the participants minus the source
  (``Generator.integers``, same as :meth:`RandomPathOracle.draw`),
* hop count: inverse-CDF over the mode's :class:`HopDistribution` with
  right-bisection, the same lookup ``DiscreteDistribution.sample`` performs,
* alternate-path count: the Table-3 pmf conditioned on the drawn hop count,
* each path: a uniform ordered ``k``-subset of the pool via a partial
  Fisher–Yates shuffle vectorized across paths, using the same
  ``u -> i + floor(u * (n - i))`` index map as
  :func:`repro.paths.generator.sample_distinct` (paths of one game are
  mutually independent in both samplers: a partial Fisher–Yates draw is
  uniform from *any* starting pool order),

but the underlying generator is consumed in a different order and count, so
trajectories diverge from the sequential engines while every per-game
distribution is identical.  ``tests/test_paths_vector.py`` pins the
distributional match; ``tests/test_engine_statistical.py`` pins the
downstream claim.

The route-table oracles (topology, mobile) get a second native sampler,
:func:`_sample_routed_vectorized`: destinations are rejection-sampled in
vectorized waves (one ``integers`` batch per wave instead of one call per
attempt), routability is resolved once per *distinct* (source, destination)
pair per topology window through the oracle's route provider, and the
plan is packed with pair-level dedup — each distinct candidate-path set is
packed once and games gather its rows by index.  Per-game distributions are
identical to the sequential rejection sampler (uniform over the source's
others, conditioned on routability within ``max_draws`` attempts), and the
draw-count-clocked topology stepping of the mobile oracle fires at exactly
the same draw counts (window boundaries), but the shared generator is
consumed in a different order — the same statistical relaxation as the
random sampler above.  ``tests/test_paths_vector.py`` pins the
distributional match and the step schedule.

Oracles without a vectorized sampler (scripted, third-party) are planned
through :func:`repro.paths.oracle.plan_games` and packed into the same
:class:`GamePlanArrays` layout.

:func:`plan_generation_arrays` stacks *all* tournaments of a generation
into one round-major plan for the fused engine: the random oracle draws
every tournament's games through one core call over per-tournament pools,
while routed/fallback oracles are planned tournament by tournament (so the
topology clock and slot cache advance exactly as the sequential generation
loop drives them) and interleaved into the stacked layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.paths.oracle import PathOracle, RandomPathOracle, plan_games

__all__ = [
    "GamePlanArrays",
    "plan_tournament_arrays",
    "plan_generation_arrays",
    "stack_replication_plans",
]


@dataclass
class GamePlanArrays:
    """A whole tournament's game setups as padded struct-of-arrays.

    ``path_nodes`` rows hold the intermediates of one candidate path in
    forwarding order, right-padded with ``-1``; paths of game ``g`` occupy
    rows ``game_path_start[g]:game_path_start[g + 1]`` in candidate order.
    """

    n_games: int
    src: np.ndarray  # (G,) int64 — source id per game
    dst: np.ndarray  # (G,) int64 — destination id per game
    n_paths: np.ndarray  # (G,) int64 — candidate paths per game
    game_path_start: np.ndarray  # (G + 1,) int64 — path-row ranges per game
    path_game: np.ndarray  # (P,) int64 — owning game of each path row
    path_col: np.ndarray  # (P,) int64 — candidate index within the game
    path_nodes: np.ndarray  # (P, H) int64 — intermediates, -1 padded
    path_len: np.ndarray  # (P,) int64 — intermediates per path
    max_paths: int  # max candidates in any game (column count for ratings)
    #: every path's intermediates are pairwise distinct and exclude the
    #: source — true for the native samplers (pool draws without
    #: replacement; simple routes), unknowable for scripted plans.  The
    #: speculative engines' conflict pass uses the guarantee to replace a
    #: full-grid (observer == subject) mask with a diagonal assignment.
    distinct_nodes: bool = False

    def paths_of(self, game: int) -> list[list[int]]:
        """The candidate paths of one game as plain lists (replay kernel)."""
        lo, hi = self.game_path_start[game], self.game_path_start[game + 1]
        return [
            row[: self.path_len[p]].tolist()
            for p, row in zip(range(lo, hi), self.path_nodes[lo:hi])
        ]


def plan_tournament_arrays(
    oracle: PathOracle, sources: Sequence[int], participants: Sequence[int]
) -> GamePlanArrays:
    """Draw a whole tournament's games into :class:`GamePlanArrays`.

    :class:`RandomPathOracle` gets the native vectorized sampler, and the
    route-table oracles (``TopologyPathOracle``, ``MobilePathOracle``) the
    native routed sampler (both distributionally identical,
    stream-divergent — see the module docstring); every other oracle is
    planned sequentially through :func:`plan_games` and repacked.
    """
    participants = list(participants)
    sources = list(sources)
    if set(sources) <= set(participants):
        if isinstance(oracle, RandomPathOracle):
            return _sample_random_vectorized(oracle, sources, participants)
        if _is_routed_oracle(oracle) and len(participants) >= 2:
            return _sample_routed_vectorized(oracle, sources, participants)
    return _arrays_from_plan(plan_games(oracle, sources, participants))


def _is_routed_oracle(oracle) -> bool:
    """Whether the oracle is one of the route-provider-backed kinds."""
    # imported lazily: paths is a lower layer than network/mobility, so the
    # dispatch must not pull them into the import chain of this module
    from repro.mobility.oracle import MobilePathOracle
    from repro.network.topology import TopologyPathOracle

    return isinstance(oracle, (TopologyPathOracle, MobilePathOracle))


def _arrays_from_plan(plan) -> GamePlanArrays:
    """Pack a sequential :func:`plan_games` plan into padded arrays."""
    n_games = len(plan)
    src = np.empty(n_games, dtype=np.int64)
    dst = np.empty(n_games, dtype=np.int64)
    n_paths = np.empty(n_games, dtype=np.int64)
    flat_paths: list[Sequence[int]] = []
    for g, (source, destination, paths) in enumerate(plan):
        src[g] = source
        dst[g] = destination
        n_paths[g] = len(paths)
        flat_paths.extend(paths)
    total = len(flat_paths)
    path_len = np.fromiter(
        (len(p) for p in flat_paths), dtype=np.int64, count=total
    )
    max_len = int(path_len.max()) if total else 1
    path_nodes = np.full((total, max_len), -1, dtype=np.int64)
    for row, path in enumerate(flat_paths):
        path_nodes[row, : len(path)] = path
    game_path_start = np.zeros(n_games + 1, dtype=np.int64)
    np.cumsum(n_paths, out=game_path_start[1:])
    path_game = np.repeat(np.arange(n_games, dtype=np.int64), n_paths)
    path_col = np.arange(total, dtype=np.int64) - game_path_start[path_game]
    return GamePlanArrays(
        n_games=n_games,
        src=src,
        dst=dst,
        n_paths=n_paths,
        game_path_start=game_path_start,
        path_game=path_game,
        path_col=path_col,
        path_nodes=path_nodes,
        path_len=path_len,
        max_paths=int(n_paths.max()) if n_games else 0,
    )


def _step_windows(
    oracle, n_games: int, n_participants: int
) -> tuple[list[tuple[bool, int]], int | None]:
    """Split the plan into maximal game ranges with no topology step inside.

    Returns ``(windows, final_draw_count)`` where each window is
    ``(step_before, size)`` — the topology steps once before every window
    flagged ``step_before``, replicating the draw-count-clocked schedule of
    the sequential mobile draw exactly — and ``final_draw_count`` is the
    oracle's ``_draws_since_step`` after all draws (``None`` for oracles
    without a clock).
    """
    step_every = getattr(oracle, "step_every", None)
    if step_every is None:
        return [(False, n_games)], None
    threshold = n_participants if step_every == "round" else step_every
    since = oracle._draws_since_step
    if not isinstance(threshold, int):
        # "tournament" mode: stepping is hook-driven, the counter still runs
        return [(False, n_games)], since + n_games
    windows: list[tuple[bool, int]] = []
    remaining = n_games
    while remaining > 0:
        step_before = since >= threshold
        if step_before:
            since = 0
        size = min(threshold - since, remaining)
        windows.append((step_before, size))
        since += size
        remaining -= size
    return windows, since


class _RoutedSlotCache:
    """Persistent pair -> candidate-path-set resolution for one oracle.

    Lives across :func:`plan_tournament_arrays` calls (attached to the
    oracle as ``_vector_cache``), so a static or slowly-changing topology
    resolves each (source, destination) pair through the route provider
    once per epoch instead of once per tournament.  ``route_slot`` is a
    dense pair-code lookup (-2 unknown, -1 no route, >= 0 a slot index);
    ``slots`` is append-only, which keeps ``id()``-keyed dedup safe (every
    keyed object stays alive in ``slots``) and lets the packed slot arrays
    be reused verbatim while no new slot appeared.
    """

    __slots__ = (
        "epoch",
        "steps",
        "scope",
        "m1",
        "route_slot",
        "slots",
        "slot_of_obj",
        "packed_count",
        "n_rows",
        "_n_paths",
        "_row_start",
        "_rows",
        "_path_len",
        "resolves",
        "rejects",
        "invalidations",
    )

    def __init__(self, epoch: int, steps: int, scope, m1: int):
        self.epoch = epoch
        self.steps = steps
        self.scope = scope
        self.m1 = m1
        #: pair codes resolved through the route provider (cache fills)
        self.resolves = 0
        #: rejection-sampling retries: drawn candidates with no route
        self.rejects = 0
        #: topology-window invalidations (route_slot wiped, dedup kept)
        self.invalidations = 0
        self.route_slot = np.full(m1 * m1, -2, dtype=np.int64)
        self.slots: list[Sequence[Sequence[int]]] = []
        self.slot_of_obj: dict[int, int] = {}
        # packed arrays grow append-only with amortized-doubling capacity;
        # the first packed_count slots / n_rows rows are valid
        self.packed_count = 0
        self.n_rows = 0
        self._n_paths = np.empty(64, dtype=np.int64)
        self._row_start = np.zeros(65, dtype=np.int64)
        self._rows = np.full((256, 4), -1, dtype=np.int64)
        self._path_len = np.empty(256, dtype=np.int64)

    def invalidate(self, epoch: int, steps: int) -> None:
        """Unknown all pairs (new topology window); keep the slot dedup.

        Keyed on ``steps``, not just ``epoch``: a step that leaves the edge
        set (and epoch) intact can still move positions, and the provider's
        never-cache routes (churned-out sources, emergency boosts) are
        position-dependent — their pair resolutions must not outlive any
        step, exactly as the provider recomputes them on every call.
        """
        self.epoch = epoch
        self.steps = steps
        self.route_slot.fill(-2)
        self.invalidations += 1

    def packed_slots(self) -> tuple:
        """(n_paths, row_start, rows, path_len) arrays over all slots.

        Incremental: only slots appended since the last call are packed, so
        a stable slot population (static topology, warm caches) pays
        nothing here.
        """
        slots = self.slots
        n_slots = len(slots)
        if self.packed_count < n_slots:
            new_rows = sum(len(slots[i]) for i in range(self.packed_count, n_slots))
            self._reserve(n_slots, self.n_rows + new_rows)
            row = self.n_rows
            rows_buf = self._rows
            len_buf = self._path_len
            for i in range(self.packed_count, n_slots):
                paths = slots[i]
                self._n_paths[i] = len(paths)
                self._row_start[i + 1] = row + len(paths)
                for path in paths:
                    len_buf[row] = len(path)
                    rows_buf[row, : len(path)] = path
                    row += 1
            self.packed_count = n_slots
            self.n_rows = row
        return (
            self._n_paths[:n_slots],
            self._row_start[: n_slots + 1],
            self._rows[: self.n_rows],
            self._path_len[: self.n_rows],
        )

    def _reserve(self, n_slots: int, n_rows: int) -> None:
        """Grow the packed buffers (doubling) to hold the new slots/rows."""
        if n_slots > self._n_paths.shape[0]:
            cap = max(2 * self._n_paths.shape[0], n_slots)
            self._n_paths = np.concatenate(
                [self._n_paths, np.empty(cap - self._n_paths.shape[0], np.int64)]
            )
            grown = np.zeros(cap + 1, dtype=np.int64)
            grown[: self._row_start.shape[0]] = self._row_start
            self._row_start = grown
        width = max(
            (
                len(p)
                for i in range(self.packed_count, n_slots)
                for p in self.slots[i]
            ),
            default=0,
        )
        old_rows, old_width = self._rows.shape
        new_width = max(old_width, width)
        if n_rows > old_rows or new_width > old_width:
            cap = max(2 * old_rows, n_rows)
            rows = np.full((cap, new_width), -1, dtype=np.int64)
            rows[: self.n_rows, :old_width] = self._rows[: self.n_rows]
            self._rows = rows
            self._path_len = np.concatenate(
                [
                    self._path_len,
                    np.empty(cap - self._path_len.shape[0], np.int64),
                ]
            )


def _slot_cache_for(oracle, provider, m1: int) -> _RoutedSlotCache:
    """The oracle's persistent slot cache, (re)built when stale.

    The cache is only valid for the provider's current scope and the
    topology's current epoch *and* step count (steps between plans can move
    positions — and the never-cache boost/virtual routes — without bumping
    the epoch); it is also rebuilt when a non-caching provider
    (``cache=False`` benchmarking) or an accumulation of never-cached
    routes (boosted pairs) has grown it past a sane bound — an append-only
    dedup over fresh list objects would otherwise leak.
    """
    scope = provider.scope
    cache: _RoutedSlotCache | None = getattr(oracle, "_vector_cache", None)
    topology = oracle.topology
    epoch = topology.epoch
    steps = getattr(topology, "steps", 0)
    if (
        cache is None
        or cache.m1 != m1
        or cache.scope != scope
        or not getattr(provider, "caching", True)
        or len(cache.slots) > 4 * m1 * m1
    ):
        cache = _RoutedSlotCache(epoch, steps, scope, m1)
        oracle._vector_cache = cache
    elif cache.epoch != epoch or cache.steps != steps:
        cache.invalidate(epoch, steps)
    return cache


def _sample_routed_vectorized(
    oracle, sources: list[int], participants: list[int]
) -> GamePlanArrays:
    """The native vectorized sampler for the route-table oracles.

    Destinations are drawn in vectorized rejection waves per topology
    window; routability is resolved once per distinct (source, destination)
    pair per epoch through the oracle's route provider (which applies its
    cache policy), and packing dedups identical candidate-path sets.
    """
    rng = oracle.rng
    provider = oracle.provider
    routes = provider.routes
    max_draws = oracle.max_draws
    n = len(participants)
    parts = np.asarray(participants, dtype=np.int64)
    src = np.asarray(sources, dtype=np.int64)
    n_games = len(src)

    # per-participant "others" pools and the id -> row lookup, exactly as
    # the random sampler builds them
    off_diag = parts[None, :] != parts[:, None]
    others = np.broadcast_to(parts, (n, n))[off_diag].reshape(n, n - 1)
    max_id = int(parts.max())
    row_of = np.full(max_id + 1, -1, dtype=np.int64)
    row_of[parts] = np.arange(n, dtype=np.int64)
    src_rows = row_of[src]

    provider.rescope(participants)
    provider.sync()
    windows, final_draws = _step_windows(oracle, n_games, n)

    m1 = max_id + 1
    cache = _slot_cache_for(oracle, provider, m1)
    route_slot = cache.route_slot
    slots = cache.slots
    slot_of_obj = cache.slot_of_obj
    dst = np.empty(n_games, dtype=np.int64)
    game_slot = np.empty(n_games, dtype=np.int64)

    g0 = 0
    topology = oracle.topology
    for step_before, size in windows:
        if step_before:
            oracle._step_topology()
            cache.invalidate(topology.epoch, getattr(topology, "steps", 0))
        unresolved = np.arange(g0, g0 + size)
        for _ in range(max_draws):
            if unresolved.size == 0:
                break
            draws = rng.integers(n - 1, size=unresolved.size)
            cand = others[src_rows[unresolved], draws]
            codes = src[unresolved] * m1 + cand
            status = route_slot[codes]
            unknown = codes[status == -2]
            if unknown.size:
                unique_codes = np.unique(unknown).tolist()
                cache.resolves += len(unique_codes)
                for code in unique_codes:
                    s, d = divmod(code, m1)
                    paths = routes(s, d)
                    if paths:
                        slot = slot_of_obj.get(id(paths))
                        if slot is None:
                            slot = len(slots)
                            slots.append(paths)
                            slot_of_obj[id(paths)] = slot
                        route_slot[code] = slot
                    else:
                        route_slot[code] = -1
                status = route_slot[codes]
            ok = status >= 0
            hit = unresolved[ok]
            dst[hit] = cand[ok]
            game_slot[hit] = status[ok]
            unresolved = unresolved[~ok]
            cache.rejects += unresolved.size
        if unresolved.size:
            raise RuntimeError(
                f"no routable destination found for source"
                f" {int(src[unresolved[0]])} after {max_draws} draws;"
                f" topology too sparse for this game"
            )
        g0 += size
    if final_draws is not None:
        oracle._draws_since_step = final_draws

    return _arrays_from_slots(src, dst, game_slot, cache)


def _arrays_from_slots(
    src: np.ndarray,
    dst: np.ndarray,
    game_slot: np.ndarray,
    cache: _RoutedSlotCache,
) -> GamePlanArrays:
    """Pack a slot-deduped routed plan into :class:`GamePlanArrays`.

    The per-path Python work is proportional to the number of *distinct*
    candidate-path sets (and amortizes to zero while the slot cache is
    stable): each slot is packed once and every game gathers its rows with
    one fancy index.
    """
    n_games = len(src)
    slot_n_paths, slot_row_start, slot_rows, slot_path_len = cache.packed_slots()
    n_paths = slot_n_paths[game_slot] if n_games else np.zeros(0, dtype=np.int64)
    game_path_start = np.zeros(n_games + 1, dtype=np.int64)
    np.cumsum(n_paths, out=game_path_start[1:])
    total = int(game_path_start[-1])
    path_game = np.repeat(np.arange(n_games, dtype=np.int64), n_paths)
    path_col = np.arange(total, dtype=np.int64) - game_path_start[path_game]
    row_idx = slot_row_start[game_slot[path_game]] + path_col
    return GamePlanArrays(
        n_games=n_games,
        src=src,
        dst=dst,
        n_paths=n_paths,
        game_path_start=game_path_start,
        path_game=path_game,
        path_col=path_col,
        path_nodes=slot_rows[row_idx],
        path_len=slot_path_len[row_idx],
        max_paths=int(n_paths.max()) if n_games else 0,
        distinct_nodes=True,
    )


def _sample_random_vectorized(
    oracle: RandomPathOracle, sources: Sequence[int], participants: list[int]
) -> GamePlanArrays:
    """The native vectorized sampler for :class:`RandomPathOracle`."""
    n = len(participants)
    if n - 1 < 2:
        raise ValueError(
            "need at least 3 participants (source, destination, 1 intermediate)"
        )
    parts = np.asarray(participants, dtype=np.int64)
    src = np.asarray(sources, dtype=np.int64)

    # per-participant "others" pools (participants minus self, order kept),
    # plus the inverse lookup position-of-id used to swap destinations out
    off_diag = parts[None, :] != parts[:, None]
    others = np.broadcast_to(parts, (n, n))[off_diag].reshape(n, n - 1)
    max_id = int(parts.max())
    row_of = np.full(max_id + 1, -1, dtype=np.int64)
    row_of[parts] = np.arange(n, dtype=np.int64)
    pos_in_others = np.zeros((n, max_id + 1), dtype=np.int64)
    np.put_along_axis(
        pos_in_others, others, np.broadcast_to(np.arange(n - 1), (n, n - 1)), axis=1
    )
    src_rows = row_of[src]
    return _random_arrays_core(oracle, src, src_rows, others, pos_in_others)


def _random_arrays_core(
    oracle: RandomPathOracle,
    src: np.ndarray,
    src_rows: np.ndarray,
    others: np.ndarray,
    pos_in_others: np.ndarray,
) -> GamePlanArrays:
    """Shared draw core of the random sampler (single and stacked forms).

    ``others`` holds one destination pool per *pool row* (a participant of
    one tournament); ``src_rows[g]`` names game ``g``'s pool row and
    ``pos_in_others`` the id -> column lookup within a row.  Pools from
    different tournaments are just different rows, which is all the stacked
    generation sampler needs.
    """
    rng = oracle.rng
    n_games = len(src)
    n_others = others.shape[1]

    # destinations: uniform over the n - 1 others, as draw() does per game
    dst = others[src_rows, rng.integers(n_others, size=n_games)]

    # hop counts and conditional path counts, inverse-CDF as sample() does
    gen = oracle.generator
    hop_values = np.asarray(gen.hop_distribution.dist.values, dtype=np.int64)
    hop_cum = np.asarray(gen.hop_distribution.dist.cumulative)
    u = rng.random((n_games, 2))
    hops = hop_values[np.searchsorted(hop_cum, u[:, 0], side="right")]
    pool_size = n_others - 1  # others minus the destination
    k = np.minimum(hops - 1, pool_size)
    if (k < 1).any():
        raise ValueError("participant pool too small for any path")
    n_paths = np.empty(n_games, dtype=np.int64)
    for hv in np.unique(hops):
        dist = gen.count_distribution.distribution_for(int(hv))
        rows = hops == hv
        idx = np.searchsorted(
            np.asarray(dist.cumulative), u[rows, 1], side="right"
        )
        n_paths[rows] = np.asarray(dist.values, dtype=np.int64)[idx]

    total = int(n_paths.sum())
    game_path_start = np.zeros(n_games + 1, dtype=np.int64)
    np.cumsum(n_paths, out=game_path_start[1:])
    path_game = np.repeat(np.arange(n_games, dtype=np.int64), n_paths)
    path_col = np.arange(total, dtype=np.int64) - game_path_start[path_game]

    # partial Fisher-Yates with *virtual* swaps: same index quantisation as
    # sample_distinct, same drawn values, but the per-path pool copy (the
    # plan's largest temporary by an order of magnitude) is never
    # materialised.  A real partial shuffle only ever reads position ``i``
    # and the drawn position ``j_i >= i`` at step ``i``, so the pool state
    # can be reconstructed per read: a position holds its original value
    # unless an earlier step swapped its displaced value there.  ``disp``
    # tracks those displaced values (``disp[l]`` is what step ``l`` left at
    # position ``j_l``); chains resolve because each fix-up consults only
    # earlier, already-resolved columns, latest write winning.  Work shrinks
    # with the step: paths sorted by k descending keep the rows still
    # shuffling at step ``i`` a contiguous prefix (swaps past a path's own
    # k are dead — never read — so skipping them changes nothing).
    k_path = k[path_game]
    k_max = int(k_path.max())
    us = rng.random((total, k_max))
    order = np.argsort(-k_path, kind="stable")
    alive = total - np.cumsum(np.bincount(k_path, minlength=k_max + 1))
    row_base = src_rows[path_game][order] * n_others
    flat = others.ravel()
    dest_pos = pos_in_others[src_rows, dst][path_game][order]
    # the destination's slot is overwritten by the (otherwise dead) last
    # pool element before the shuffle, exactly as sample_distinct excludes
    # the destination from the candidate pool
    last = flat[row_base + pool_size]
    us = us[order]

    path_nodes = np.empty((total, k_max), dtype=np.int64)
    j_cols: list[np.ndarray] = []
    disp: list[np.ndarray] = []
    for i in range(k_max):
        a = int(alive[i])  # rows with k > i: a prefix, by construction
        j_i = i + (us[:a, i] * (pool_size - i)).astype(np.int64)
        base = row_base[:a]
        held = np.where(dest_pos[:a] == i, last[:a], flat[base + i])
        drawn = np.where(j_i == dest_pos[:a], last[:a], flat[base + j_i])
        for prior in range(i):
            j_prior = j_cols[prior][:a]
            np.copyto(held, disp[prior][:a], where=j_prior == i)
            np.copyto(drawn, disp[prior][:a], where=j_prior == j_i)
        j_cols.append(j_i)
        disp.append(held)
        path_nodes[order[:a], i] = drawn
    path_nodes[np.arange(k_max)[None, :] >= k_path[:, None]] = -1

    return GamePlanArrays(
        n_games=n_games,
        src=src,
        dst=dst,
        n_paths=n_paths,
        game_path_start=game_path_start,
        path_game=path_game,
        path_col=path_col,
        path_nodes=path_nodes,
        path_len=k_path,
        max_paths=int(n_paths.max()),
        distinct_nodes=True,
    )


def plan_generation_arrays(
    oracle: PathOracle,
    seatings: Sequence[Sequence[int]],
    rounds: int,
    on_tournament_end=None,
) -> GamePlanArrays:
    """Draw *all* tournaments of a generation into one stacked plan.

    The returned :class:`GamePlanArrays` is **round-major across the
    stack**: with ``T`` tournaments of ``n`` seats each, game
    ``g = round * (T * n) + tournament * n + seat`` — every slate of
    ``T * n`` consecutive games is "round r of every tournament", which is
    the layout the fused engine's slate kernel consumes (its per-round
    source order is the concatenation of the seatings, constant across
    rounds, exactly like a single tournament's plan).

    :class:`RandomPathOracle` gets a natively stacked sampler (one draw
    core call over every tournament's pools at once).  Route-table and
    fallback oracles are planned per tournament — in seating order, so the
    topology clock, route provider scope and slot cache advance exactly as
    the sequential generation loop drives them — and interleaved into the
    stacked layout; ``on_tournament_end``, when given, fires after each
    tournament's plan (the per-tournament topology clocking hook that
    ``evaluate_generation`` owns on the unfused path).
    """
    seatings = [list(s) for s in seatings]
    if not seatings:
        raise ValueError("need at least one seating")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    n = len(seatings[0])
    if any(len(s) != n for s in seatings):
        raise ValueError(
            "all seatings of one fused generation must be the same size"
        )
    if isinstance(oracle, RandomPathOracle):
        plan = _sample_random_stacked(oracle, seatings, rounds)
        if on_tournament_end is not None:
            for _ in seatings:
                on_tournament_end()
        return plan
    plans = []
    for seating in seatings:
        plans.append(plan_tournament_arrays(oracle, seating * rounds, seating))
        if on_tournament_end is not None:
            on_tournament_end()
    return _interleave_plans(plans, rounds, n)


def _sample_random_stacked(
    oracle: RandomPathOracle, seatings: list[list[int]], rounds: int
) -> GamePlanArrays:
    """All tournaments' random draws through one core call.

    Each tournament contributes ``n`` pool rows (its participants' others);
    pools of different tournaments never mix, so duplicate ids across
    seatings are fine.  The games are laid out round-major across the
    stack (see :func:`plan_generation_arrays`).
    """
    parts = np.asarray(seatings, dtype=np.int64)  # (T, n)
    n_tournaments, n = parts.shape
    if n - 1 < 2:
        raise ValueError(
            "need at least 3 participants (source, destination, 1 intermediate)"
        )
    sorted_parts = np.sort(parts, axis=1)
    if (sorted_parts[:, 1:] == sorted_parts[:, :-1]).any():
        raise ValueError("each seating must contain distinct participants")

    # per-(tournament, participant) "others" pools, flattened to rows
    mask = parts[:, None, :] != parts[:, :, None]  # [t, i, j]: j != i
    others = (
        np.broadcast_to(parts[:, None, :], (n_tournaments, n, n))[mask]
        .reshape(n_tournaments * n, n - 1)
    )
    max_id = int(parts.max())
    pos_in_others = np.zeros((n_tournaments * n, max_id + 1), dtype=np.int64)
    np.put_along_axis(
        pos_in_others,
        others,
        np.broadcast_to(np.arange(n - 1), (n_tournaments * n, n - 1)),
        axis=1,
    )
    # slate source order = the seatings concatenated; every round repeats it
    flat_src = parts.reshape(-1)
    src = np.tile(flat_src, rounds)
    src_rows = np.tile(np.arange(n_tournaments * n, dtype=np.int64), rounds)
    return _random_arrays_core(oracle, src, src_rows, others, pos_in_others)


def _interleave_plans(
    plans: list[GamePlanArrays], rounds: int, n: int
) -> GamePlanArrays:
    """Weave per-tournament plans into the stacked round-major layout.

    Tournament ``t``'s local game ``r * n + k`` becomes stacked game
    ``r * (T * n) + t * n + k``; path rows are gathered so each game's
    candidates stay contiguous and in candidate order.
    """
    n_tournaments = len(plans)
    slate = n_tournaments * n
    n_games = rounds * slate
    src = np.empty(n_games, dtype=np.int64)
    dst = np.empty(n_games, dtype=np.int64)
    n_paths = np.empty(n_games, dtype=np.int64)
    # each game's first path row in the concatenated per-plan row space
    first_row_old = np.empty(n_games, dtype=np.int64)
    width = max(int(p.path_nodes.shape[1]) for p in plans) if plans else 1
    old_nodes = []
    old_len = []
    row_offset = 0
    seat_cols = np.arange(n, dtype=np.int64)
    round_rows = np.arange(rounds, dtype=np.int64) * slate
    for t, plan in enumerate(plans):
        idx = (round_rows[:, None] + t * n + seat_cols[None, :]).reshape(-1)
        src[idx] = plan.src
        dst[idx] = plan.dst
        n_paths[idx] = plan.n_paths
        first_row_old[idx] = row_offset + plan.game_path_start[:-1]
        nodes = plan.path_nodes
        if nodes.shape[1] < width:
            pad = np.full(
                (nodes.shape[0], width - nodes.shape[1]), -1, dtype=np.int64
            )
            nodes = np.concatenate([nodes, pad], axis=1)
        old_nodes.append(nodes)
        old_len.append(plan.path_len)
        row_offset += nodes.shape[0]
    all_nodes = np.concatenate(old_nodes)
    all_len = np.concatenate(old_len)
    game_path_start = np.zeros(n_games + 1, dtype=np.int64)
    np.cumsum(n_paths, out=game_path_start[1:])
    total = int(game_path_start[-1])
    path_game = np.repeat(np.arange(n_games, dtype=np.int64), n_paths)
    path_col = np.arange(total, dtype=np.int64) - game_path_start[path_game]
    row_idx = first_row_old[path_game] + path_col
    return GamePlanArrays(
        n_games=n_games,
        src=src,
        dst=dst,
        n_paths=n_paths,
        game_path_start=game_path_start,
        path_game=path_game,
        path_col=path_col,
        path_nodes=all_nodes[row_idx],
        path_len=all_len[row_idx],
        max_paths=int(n_paths.max()) if n_games else 0,
        distinct_nodes=all(p.distinct_nodes for p in plans),
    )


def _offset_plan_ids(plan: GamePlanArrays, offset: int) -> GamePlanArrays:
    """A copy of ``plan`` with every node id shifted by ``offset``.

    ``path_nodes`` padding (``-1``) is preserved; all other arrays are
    shared with the original (they carry positions, not ids).
    """
    if offset == 0:
        return plan
    nodes = plan.path_nodes + offset
    nodes[plan.path_nodes < 0] = -1
    return GamePlanArrays(
        n_games=plan.n_games,
        src=plan.src + offset,
        dst=plan.dst + offset,
        n_paths=plan.n_paths,
        game_path_start=plan.game_path_start,
        path_game=plan.path_game,
        path_col=plan.path_col,
        path_nodes=nodes,
        path_len=plan.path_len,
        max_paths=plan.max_paths,
        distinct_nodes=plan.distinct_nodes,
    )


def stack_replication_plans(
    plans: Sequence[GamePlanArrays], rounds: int, block: int
) -> GamePlanArrays:
    """Stack per-replication generation plans into one mega-slate.

    Each input is one replication's round-major generation plan (from
    :func:`plan_generation_arrays`, ``T`` tournaments of ``n`` seats: its
    slate is ``S = T * n`` games per round).  Replication ``r``'s game
    ``round * S + g`` becomes stacked game ``round * (R * S) + r * S + g``
    — i.e. ``round * (R * T * n) + rep * (T * n) + tournament * n + seat``
    — and every node id is shifted into the replication's private block
    ``[r * block, (r + 1) * block)``, which is what keeps the stacked
    engine's reputation state block-diagonal (games of different
    replications can never name the same node).

    Structurally each replication is "one very wide tournament" of ``S``
    seats, so the weave is exactly :func:`_interleave_plans`.
    """
    if not plans:
        raise ValueError("need at least one replication plan")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    n_games = plans[0].n_games
    if n_games % rounds:
        raise ValueError(
            f"plan of {n_games} games does not divide into {rounds} rounds"
        )
    if any(p.n_games != n_games for p in plans):
        raise ValueError("all replication plans must be the same size")
    slate = n_games // rounds
    shifted = [_offset_plan_ids(p, r * block) for r, p in enumerate(plans)]
    return _interleave_plans(shifted, rounds, slate)

"""Vectorized tournament-plan sampling for the turbo engine.

The bit-identical engines draw game setups through the oracle's sequential
RNG protocol (``draw`` / the stream-identical ``draw_tournament``), which
pins every trajectory but caps throughput: profiling shows the per-game draw
overhead — not the game kernel — dominates the batch engine on the random
oracle (~9 of ~11 us/game at table-5 scale).

The turbo engine's contract is *statistical* (distributional), not
bit-identical, which unlocks a different sampler: draw the whole tournament's
destinations, hop counts, path counts and intermediate sets as a handful of
numpy array operations.  Every marginal and joint distribution matches the
sequential sampler exactly —

* destination: uniform over the participants minus the source
  (``Generator.integers``, same as :meth:`RandomPathOracle.draw`),
* hop count: inverse-CDF over the mode's :class:`HopDistribution` with
  right-bisection, the same lookup ``DiscreteDistribution.sample`` performs,
* alternate-path count: the Table-3 pmf conditioned on the drawn hop count,
* each path: a uniform ordered ``k``-subset of the pool via a partial
  Fisher–Yates shuffle vectorized across paths, using the same
  ``u -> i + floor(u * (n - i))`` index map as
  :func:`repro.paths.generator.sample_distinct` (paths of one game are
  mutually independent in both samplers: a partial Fisher–Yates draw is
  uniform from *any* starting pool order),

but the underlying generator is consumed in a different order and count, so
trajectories diverge from the sequential engines while every per-game
distribution is identical.  ``tests/test_paths_vector.py`` pins the
distributional match; ``tests/test_engine_statistical.py`` pins the
downstream claim.

Oracles without a vectorized sampler (topology, mobile, scripted) are planned
through :func:`repro.paths.oracle.plan_games` — their draw cost is either
cheap (cached route tables) or semantically clocked (mobility) — and packed
into the same :class:`GamePlanArrays` layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.paths.oracle import PathOracle, RandomPathOracle, plan_games

__all__ = ["GamePlanArrays", "plan_tournament_arrays"]


@dataclass
class GamePlanArrays:
    """A whole tournament's game setups as padded struct-of-arrays.

    ``path_nodes`` rows hold the intermediates of one candidate path in
    forwarding order, right-padded with ``-1``; paths of game ``g`` occupy
    rows ``game_path_start[g]:game_path_start[g + 1]`` in candidate order.
    """

    n_games: int
    src: np.ndarray  # (G,) int64 — source id per game
    dst: np.ndarray  # (G,) int64 — destination id per game
    n_paths: np.ndarray  # (G,) int64 — candidate paths per game
    game_path_start: np.ndarray  # (G + 1,) int64 — path-row ranges per game
    path_game: np.ndarray  # (P,) int64 — owning game of each path row
    path_col: np.ndarray  # (P,) int64 — candidate index within the game
    path_nodes: np.ndarray  # (P, H) int64 — intermediates, -1 padded
    path_len: np.ndarray  # (P,) int64 — intermediates per path
    max_paths: int  # max candidates in any game (column count for ratings)

    def paths_of(self, game: int) -> list[list[int]]:
        """The candidate paths of one game as plain lists (replay kernel)."""
        lo, hi = self.game_path_start[game], self.game_path_start[game + 1]
        return [
            row[: self.path_len[p]].tolist()
            for p, row in zip(range(lo, hi), self.path_nodes[lo:hi])
        ]


def plan_tournament_arrays(
    oracle: PathOracle, sources: Sequence[int], participants: Sequence[int]
) -> GamePlanArrays:
    """Draw a whole tournament's games into :class:`GamePlanArrays`.

    :class:`RandomPathOracle` gets the native vectorized sampler
    (distributionally identical, stream-divergent — see the module
    docstring); every other oracle is planned sequentially through
    :func:`plan_games` and repacked.
    """
    participants = list(participants)
    sources = list(sources)
    if isinstance(oracle, RandomPathOracle) and set(sources) <= set(participants):
        return _sample_random_vectorized(oracle, sources, participants)
    return _arrays_from_plan(plan_games(oracle, sources, participants))


def _arrays_from_plan(plan) -> GamePlanArrays:
    """Pack a sequential :func:`plan_games` plan into padded arrays."""
    n_games = len(plan)
    src = np.empty(n_games, dtype=np.int64)
    dst = np.empty(n_games, dtype=np.int64)
    n_paths = np.empty(n_games, dtype=np.int64)
    flat_paths: list[Sequence[int]] = []
    for g, (source, destination, paths) in enumerate(plan):
        src[g] = source
        dst[g] = destination
        n_paths[g] = len(paths)
        flat_paths.extend(paths)
    total = len(flat_paths)
    path_len = np.fromiter(
        (len(p) for p in flat_paths), dtype=np.int64, count=total
    )
    max_len = int(path_len.max()) if total else 1
    path_nodes = np.full((total, max_len), -1, dtype=np.int64)
    for row, path in enumerate(flat_paths):
        path_nodes[row, : len(path)] = path
    game_path_start = np.zeros(n_games + 1, dtype=np.int64)
    np.cumsum(n_paths, out=game_path_start[1:])
    path_game = np.repeat(np.arange(n_games, dtype=np.int64), n_paths)
    path_col = np.arange(total, dtype=np.int64) - game_path_start[path_game]
    return GamePlanArrays(
        n_games=n_games,
        src=src,
        dst=dst,
        n_paths=n_paths,
        game_path_start=game_path_start,
        path_game=path_game,
        path_col=path_col,
        path_nodes=path_nodes,
        path_len=path_len,
        max_paths=int(n_paths.max()) if n_games else 0,
    )


def _sample_random_vectorized(
    oracle: RandomPathOracle, sources: Sequence[int], participants: list[int]
) -> GamePlanArrays:
    """The native vectorized sampler for :class:`RandomPathOracle`."""
    rng = oracle.rng
    n = len(participants)
    if n - 1 < 2:
        raise ValueError(
            "need at least 3 participants (source, destination, 1 intermediate)"
        )
    parts = np.asarray(participants, dtype=np.int64)
    src = np.asarray(sources, dtype=np.int64)
    n_games = len(src)

    # per-participant "others" pools (participants minus self, order kept),
    # plus the inverse lookup position-of-id used to swap destinations out
    off_diag = parts[None, :] != parts[:, None]
    others = np.broadcast_to(parts, (n, n))[off_diag].reshape(n, n - 1)
    max_id = int(parts.max())
    row_of = np.full(max_id + 1, -1, dtype=np.int64)
    row_of[parts] = np.arange(n, dtype=np.int64)
    pos_in_others = np.zeros((n, max_id + 1), dtype=np.int64)
    np.put_along_axis(
        pos_in_others, others, np.broadcast_to(np.arange(n - 1), (n, n - 1)), axis=1
    )
    src_rows = row_of[src]

    # destinations: uniform over the n - 1 others, as draw() does per game
    dst = others[src_rows, rng.integers(n - 1, size=n_games)]

    # hop counts and conditional path counts, inverse-CDF as sample() does
    gen = oracle.generator
    hop_values = np.asarray(gen.hop_distribution.dist.values, dtype=np.int64)
    hop_cum = np.asarray(gen.hop_distribution.dist.cumulative)
    u = rng.random((n_games, 2))
    hops = hop_values[np.searchsorted(hop_cum, u[:, 0], side="right")]
    pool_size = n - 2  # others minus the destination
    k = np.minimum(hops - 1, pool_size)
    if (k < 1).any():
        raise ValueError("participant pool too small for any path")
    n_paths = np.empty(n_games, dtype=np.int64)
    for hv in np.unique(hops):
        dist = gen.count_distribution.distribution_for(int(hv))
        rows = hops == hv
        idx = np.searchsorted(
            np.asarray(dist.cumulative), u[rows, 1], side="right"
        )
        n_paths[rows] = np.asarray(dist.values, dtype=np.int64)[idx]

    # one pool copy per path; swap the destination into the dead last slot
    total = int(n_paths.sum())
    game_path_start = np.zeros(n_games + 1, dtype=np.int64)
    np.cumsum(n_paths, out=game_path_start[1:])
    path_game = np.repeat(np.arange(n_games, dtype=np.int64), n_paths)
    path_col = np.arange(total, dtype=np.int64) - game_path_start[path_game]
    pools = others[src_rows[path_game]]  # fancy indexing copies
    rows_idx = np.arange(total)
    dest_pos = pos_in_others[src_rows, dst][path_game]
    pools[rows_idx, dest_pos] = pools[:, pool_size]

    # partial Fisher-Yates vectorized across paths: same index quantisation
    # as sample_distinct; swaps past a path's own k are dead (never read)
    k_path = k[path_game]
    k_max = int(k_path.max())
    us = rng.random((total, k_max))
    for i in range(k_max):
        j = i + (us[:, i] * (pool_size - i)).astype(np.int64)
        drawn = pools[rows_idx, j]
        pools[rows_idx, j] = pools[:, i]
        pools[:, i] = drawn
    path_nodes = pools[:, :k_max].copy()
    path_nodes[np.arange(k_max)[None, :] >= k_path[:, None]] = -1

    return GamePlanArrays(
        n_games=n_games,
        src=src,
        dst=dst,
        n_paths=n_paths,
        game_path_start=game_path_start,
        path_game=path_game,
        path_col=path_col,
        path_nodes=path_nodes,
        path_len=k_path,
        max_paths=int(n_paths.max()),
    )

"""Hop-length and alternate-path-count distributions (Tables 2 and 3).

Table 2 reading
---------------
The paper's Table 2 lists probabilities against hop *ranges*.  Read per range
the columns do not sum to one; read per individual hop count they sum to
exactly one in both modes, so that is the interpretation used (documented in
DESIGN.md §2.2)::

    shorter paths: P(2)=0.2, P(3)=P(4)=0.3, P(5..8)=0.05, P(9)=P(10)=0
    longer  paths: P(2)=0.1, P(3)=P(4)=0.1, P(5..8)=0.10, P(9)=P(10)=0.15

Table 3 reading
---------------
Alternate-path counts are given for 2–3, 4–6 and 7–8 hops; for 9–10 hops we
extend the 7–8 row, consistent with the paper's "the longer the path, the
fewer routes" trend (DESIGN.md §2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "DiscreteDistribution",
    "HopDistribution",
    "PathCountDistribution",
    "SHORTER_PATHS",
    "LONGER_PATHS",
    "DEFAULT_PATH_COUNTS",
]


class DiscreteDistribution:
    """A finite distribution over integer outcomes, sampled via inverse CDF.

    Probabilities must sum to 1 within a small tolerance; they are renormalised
    exactly so the cumulative array ends at 1.0.
    """

    __slots__ = ("_values", "_probs", "_cum")

    def __init__(self, pmf: Mapping[int, float]):
        if not pmf:
            raise ValueError("distribution needs at least one outcome")
        items = sorted((int(v), float(p)) for v, p in pmf.items())
        values = [v for v, _ in items]
        probs = np.array([p for _, p in items], dtype=float)
        if (probs < 0).any():
            raise ValueError(f"negative probability in {pmf!r}")
        total = probs.sum()
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"probabilities must sum to 1, got {total!r}")
        probs /= total
        self._values = tuple(values)
        self._probs = probs
        self._cum = np.cumsum(probs)
        self._cum[-1] = 1.0  # guard against float drift at the top end

    @property
    def values(self) -> tuple[int, ...]:
        """Possible outcomes, ascending."""
        return self._values

    @property
    def probabilities(self) -> np.ndarray:
        """Probability of each outcome (aligned with :attr:`values`)."""
        return self._probs.copy()

    @property
    def cumulative(self) -> tuple[float, ...]:
        """The inverse-CDF lookup table (aligned with :attr:`values`).

        Exposed so batched samplers (``RandomPathOracle.draw_tournament``) can
        reproduce :meth:`sample` exactly — same uniform draw, same
        right-bisection — without the per-call numpy dispatch overhead.
        """
        return tuple(float(c) for c in self._cum)

    def pmf(self, value: int) -> float:
        """P(X = value); 0.0 for outcomes not in the support."""
        try:
            return float(self._probs[self._values.index(value)])
        except ValueError:
            return 0.0

    def mean(self) -> float:
        """Expected value."""
        return float(np.dot(self._values, self._probs))

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one outcome."""
        u = rng.random()
        return self._values[int(np.searchsorted(self._cum, u, side="right"))]

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` outcomes with a single uniform batch (hot-loop path)."""
        u = rng.random(n)
        idx = np.searchsorted(self._cum, u, side="right")
        return np.asarray(self._values, dtype=np.int64)[idx]

    def __repr__(self) -> str:
        pairs = ", ".join(f"{v}: {p:.3f}" for v, p in zip(self._values, self._probs))
        return f"DiscreteDistribution({{{pairs}}})"


@dataclass(frozen=True)
class HopDistribution:
    """Distribution of the number of hops from source to destination.

    A path of ``h`` hops traverses ``h - 1`` intermediate nodes.
    """

    name: str
    dist: DiscreteDistribution

    @property
    def min_hops(self) -> int:
        return self.dist.values[0]

    @property
    def max_hops(self) -> int:
        return self.dist.values[-1]

    def sample(self, rng: np.random.Generator) -> int:
        return self.dist.sample(rng)

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.dist.sample_many(rng, n)


def _expand_ranges(rows: Sequence[tuple[range, float]]) -> dict[int, float]:
    pmf: dict[int, float] = {}
    for hop_range, prob in rows:
        for h in hop_range:
            pmf[h] = prob
    return pmf


#: Table 2, "shorter paths" column, expanded per hop count.
SHORTER_PATHS = HopDistribution(
    name="shorter",
    dist=DiscreteDistribution(
        _expand_ranges(
            [
                (range(2, 3), 0.20),
                (range(3, 5), 0.30),
                (range(5, 9), 0.05),
                (range(9, 11), 0.00),
            ]
        )
    ),
)

#: Table 2, "longer paths" column, expanded per hop count.
LONGER_PATHS = HopDistribution(
    name="longer",
    dist=DiscreteDistribution(
        _expand_ranges(
            [
                (range(2, 3), 0.10),
                (range(3, 5), 0.10),
                (range(5, 9), 0.10),
                (range(9, 11), 0.15),
            ]
        )
    ),
)

HOP_MODES: dict[str, HopDistribution] = {
    "shorter": SHORTER_PATHS,
    "longer": LONGER_PATHS,
}


class PathCountDistribution:
    """Number of alternate paths available, conditioned on path length (Table 3)."""

    def __init__(
        self, rows: Mapping[tuple[int, int], Mapping[int, float]] | None = None
    ):
        """``rows`` maps inclusive hop ranges ``(lo, hi)`` to count pmfs."""
        if rows is None:
            rows = _DEFAULT_COUNT_ROWS
        self._rows: list[tuple[int, int, DiscreteDistribution]] = []
        for (lo, hi), pmf in sorted(rows.items()):
            if lo > hi:
                raise ValueError(f"bad hop range ({lo}, {hi})")
            self._rows.append((lo, hi, DiscreteDistribution(pmf)))
        for (_, hi_a, _), (lo_b, _, _) in zip(self._rows, self._rows[1:]):
            if lo_b != hi_a + 1:
                raise ValueError("hop ranges must be contiguous")

    def distribution_for(self, hops: int) -> DiscreteDistribution:
        """The count pmf for a path of ``hops`` hops.

        Hops above the last configured range reuse the last row (the 9–10 hop
        extension of DESIGN.md §2.3); hops below the first range are an error.
        """
        if hops < self._rows[0][0]:
            raise ValueError(f"no path-count row for {hops} hops")
        for lo, hi, dist in self._rows:
            if lo <= hops <= hi:
                return dist
        return self._rows[-1][2]

    def sample(self, rng: np.random.Generator, hops: int) -> int:
        """Draw the number of available alternate paths for a given length."""
        return self.distribution_for(hops).sample(rng)

    def max_count(self) -> int:
        """Largest possible number of alternate paths across all rows."""
        return max(dist.values[-1] for _, _, dist in self._rows)


_DEFAULT_COUNT_ROWS: dict[tuple[int, int], dict[int, float]] = {
    (2, 3): {1: 0.50, 2: 0.30, 3: 0.20},
    (4, 6): {1: 0.60, 2: 0.25, 3: 0.15},
    (7, 8): {1: 0.80, 2: 0.15, 3: 0.05},
}

#: Table 3 with the documented 9–10 hop extension.
DEFAULT_PATH_COUNTS = PathCountDistribution()

"""Path rating and best-path selection (§3.1).

"A path rating is calculated as a multiplication of all known forwarding
rates of all nodes belonging to the route.  An unknown node has a forwarding
rate set to 0.5.  If a source node has more than one path available to the
destination it will choose the one with the best reputation."
"""

from __future__ import annotations

from typing import Sequence

from repro.reputation.records import DEFAULT_UNKNOWN_RATE, ReputationTable

__all__ = ["rate_path", "best_path_index"]


def rate_path(
    table: ReputationTable,
    path: Sequence[int],
    unknown_rate: float = DEFAULT_UNKNOWN_RATE,
) -> float:
    """Product of the source's known forwarding rates along ``path``.

    ``table`` is the *source's* reputation table; intermediates the source has
    never observed contribute ``unknown_rate`` (paper: 0.5).  An empty path
    rates 1.0 (nothing can drop the packet).
    """
    rating = 1.0
    for node in path:
        rating *= table.forwarding_rate(node, default=unknown_rate)
    return rating


def best_path_index(
    table: ReputationTable,
    paths: Sequence[Sequence[int]],
    unknown_rate: float = DEFAULT_UNKNOWN_RATE,
) -> int:
    """Index of the best-rated path; first index wins ties.

    Tie-breaking by first index keeps the choice deterministic given the
    oracle's path ordering, which is what allows the two simulation engines to
    be compared bit-for-bit.
    """
    if not paths:
        raise ValueError("best_path_index needs at least one path")
    best_i = 0
    best_r = rate_path(table, paths[0], unknown_rate)
    for i in range(1, len(paths)):
        r = rate_path(table, paths[i], unknown_rate)
        if r > best_r:
            best_i, best_r = i, r
    return best_i

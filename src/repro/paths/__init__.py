"""Path model: hop-length/path-count distributions, generation, rating.

Implements the path selection machinery of §3.1 and §6.1 (Tables 2 and 3).
All randomness used by the simulation engines flows through the oracles in
:mod:`repro.paths.oracle`, which is what makes the reference and fast engines
bit-identical under a shared seed.
"""

from repro.paths.distributions import (
    LONGER_PATHS,
    SHORTER_PATHS,
    DiscreteDistribution,
    HopDistribution,
    PathCountDistribution,
)
from repro.paths.generator import PathSetGenerator
from repro.paths.oracle import (
    GameSetup,
    PathOracle,
    RandomPathOracle,
    ScriptedPathOracle,
)
from repro.paths.rating import best_path_index, rate_path

__all__ = [
    "DiscreteDistribution",
    "HopDistribution",
    "PathCountDistribution",
    "SHORTER_PATHS",
    "LONGER_PATHS",
    "PathSetGenerator",
    "rate_path",
    "best_path_index",
    "GameSetup",
    "PathOracle",
    "RandomPathOracle",
    "ScriptedPathOracle",
]

"""Small shared utilities: RNG plumbing, bit strings, ASCII rendering.

These helpers are deliberately dependency-light; everything above them in the
stack (reputation, game, tournament, GA) builds on this layer.
"""

from repro.utils.bitstring import (
    bits_from_int,
    bits_from_string,
    bits_to_int,
    bits_to_string,
    hamming_distance,
)
from repro.utils.rng import as_generator, spawn_generators, spawn_seeds
from repro.utils.tables import ascii_lineplot, format_table
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "spawn_seeds",
    "bits_from_int",
    "bits_from_string",
    "bits_to_int",
    "bits_to_string",
    "hamming_distance",
    "format_table",
    "ascii_lineplot",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
]

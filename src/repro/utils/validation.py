"""Tiny argument-validation helpers shared by configuration dataclasses."""

from __future__ import annotations

__all__ = [
    "check_probability",
    "check_fraction",
    "check_positive",
    "check_non_negative",
]


def check_probability(value: float, name: str) -> float:
    """Validate ``value`` lies in [0, 1]; returns it for chaining."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Validate ``value`` lies in (0, 1]; returns it for chaining."""
    value = float(value)
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate ``value`` is strictly positive; returns it for chaining."""
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate ``value`` is >= 0; returns it for chaining."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value

"""Tiny argument-validation helpers shared by configuration dataclasses,
plus the machine-readable bench-report schema contract."""

from __future__ import annotations

import math
from typing import Any, Mapping

__all__ = [
    "check_probability",
    "check_fraction",
    "check_positive",
    "check_non_negative",
    "BENCH_REPORT_KEYS",
    "validate_bench_report",
    "RUN_MANIFEST_KEYS",
    "validate_run_manifest",
    "CHECKPOINT_KEYS",
    "validate_checkpoint_manifest",
]


def check_probability(value: float, name: str) -> float:
    """Validate ``value`` lies in [0, 1]; returns it for chaining."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Validate ``value`` lies in (0, 1]; returns it for chaining."""
    value = float(value)
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate ``value`` is strictly positive; returns it for chaining."""
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate ``value`` is >= 0; returns it for chaining."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


#: The exact key set of every machine-readable bench report
#: (``results/bench_reports/*.json`` and the repo-root ``BENCH_ENGINE.json``).
BENCH_REPORT_KEYS = frozenset({"bench", "scale", "wall_s", "metrics", "git_sha"})


def _check_numeric_tree(value: Any, path: str) -> None:
    """Finite numbers, or string-keyed mappings that bottom out in them."""
    if isinstance(value, bool):
        raise ValueError(f"{path} must be numeric, got a bool")
    if isinstance(value, (int, float)):
        # NaN poisons comparisons silently; +/-inf serializes as the
        # non-RFC-8259 token ``Infinity`` that strict JSON consumers reject
        if not math.isfinite(value):
            raise ValueError(f"{path} is not finite ({value!r})")
        return
    if isinstance(value, Mapping):
        for key, sub in value.items():
            if not isinstance(key, str):
                raise ValueError(f"{path} has a non-string key {key!r}")
            _check_numeric_tree(sub, f"{path}[{key!r}]")
        return
    raise ValueError(
        f"{path} must be a number or a nested mapping of numbers,"
        f" got {type(value).__name__}"
    )


def validate_bench_report(payload: Any, name: str = "bench report") -> dict:
    """Validate one bench-report JSON payload against the pipeline contract.

    The contract (README "Verifying", enforced at write time by
    ``benchmarks/conftest.emit_report`` and over the committed artefacts by
    ``tests/test_bench_report_schema.py``):

    * exactly the keys ``{bench, scale, wall_s, metrics, git_sha}``,
    * ``bench`` and ``git_sha`` are non-empty strings,
    * ``scale`` is a string or a string-keyed mapping of numbers,
    * ``wall_s`` is a non-negative number, ``null`` (a bench that did not
      time itself), or a nested mapping of numbers (the engine ledger's
      per-oracle/per-engine matrix),
    * ``metrics`` is a string-keyed mapping bottoming out in finite numbers.

    Returns the payload for chaining; raises :class:`ValueError` with the
    offending path otherwise.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"{name} must be a JSON object, got {type(payload).__name__}")
    keys = set(payload)
    if keys != BENCH_REPORT_KEYS:
        missing = sorted(BENCH_REPORT_KEYS - keys)
        extra = sorted(keys - BENCH_REPORT_KEYS)
        raise ValueError(
            f"{name} keys mismatch: missing {missing or 'none'},"
            f" unexpected {extra or 'none'}"
        )
    for field in ("bench", "git_sha"):
        if not isinstance(payload[field], str) or not payload[field]:
            raise ValueError(f"{name}: {field!r} must be a non-empty string")
    scale = payload["scale"]
    if isinstance(scale, str):
        if not scale:
            raise ValueError(f"{name}: 'scale' string must be non-empty")
    else:
        _check_numeric_tree(scale, f"{name}: scale")
    wall = payload["wall_s"]
    if wall is not None:
        _check_numeric_tree(wall, f"{name}: wall_s")
        if isinstance(wall, (int, float)) and wall < 0:
            raise ValueError(f"{name}: wall_s must be >= 0, got {wall}")
    metrics = payload["metrics"]
    if not isinstance(metrics, Mapping):
        raise ValueError(f"{name}: 'metrics' must be a mapping")
    _check_numeric_tree(metrics, f"{name}: metrics")
    return dict(payload)


#: The exact key set of every telemetry run manifest
#: (``<name>_manifest.json``, written by ``repro.telemetry.manifest``).
RUN_MANIFEST_KEYS = frozenset(
    {
        "manifest_version",
        "name",
        "git_sha",
        "config_hash",
        "run",
        "wall_s",
        "metrics",
        "events_file",
    }
)


def validate_run_manifest(payload: Any, name: str = "run manifest") -> dict:
    """Validate one telemetry run-manifest payload against its contract.

    The contract (README "Observability", enforced at write time by
    ``repro.telemetry.manifest.build_run_manifest`` and at read time by
    ``repro stats``):

    * exactly the keys ``{manifest_version, name, git_sha, config_hash,
      run, wall_s, metrics, events_file}``,
    * ``manifest_version`` is the integer ``1``,
    * ``name``, ``git_sha`` and ``config_hash`` are non-empty strings,
    * ``run`` is a string-keyed mapping of scalars (strings or finite
      numbers) — the engine/oracle/policy provenance block,
    * ``wall_s`` is a non-negative finite number,
    * ``metrics`` is a string-keyed mapping bottoming out in finite
      numbers (the aggregated registry snapshot),
    * ``events_file`` is ``null`` or a non-empty string naming the
      sibling JSONL event dump.

    Returns the payload for chaining; raises :class:`ValueError` with the
    offending path otherwise.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"{name} must be a JSON object, got {type(payload).__name__}")
    keys = set(payload)
    if keys != RUN_MANIFEST_KEYS:
        missing = sorted(RUN_MANIFEST_KEYS - keys)
        extra = sorted(keys - RUN_MANIFEST_KEYS)
        raise ValueError(
            f"{name} keys mismatch: missing {missing or 'none'},"
            f" unexpected {extra or 'none'}"
        )
    version = payload["manifest_version"]
    if isinstance(version, bool) or not isinstance(version, int) or version != 1:
        raise ValueError(
            f"{name}: 'manifest_version' must be the integer 1, got {version!r}"
        )
    for field in ("name", "git_sha", "config_hash"):
        if not isinstance(payload[field], str) or not payload[field]:
            raise ValueError(f"{name}: {field!r} must be a non-empty string")
    run = payload["run"]
    if not isinstance(run, Mapping):
        raise ValueError(f"{name}: 'run' must be a mapping")
    for key, value in run.items():
        if not isinstance(key, str):
            raise ValueError(f"{name}: run has a non-string key {key!r}")
        if isinstance(value, str):
            continue
        _check_numeric_tree(value, f"{name}: run[{key!r}]")
        if isinstance(value, Mapping):
            raise ValueError(f"{name}: run[{key!r}] must be a scalar")
    wall = payload["wall_s"]
    _check_numeric_tree(wall, f"{name}: wall_s")
    if not isinstance(wall, (int, float)) or wall < 0:
        raise ValueError(f"{name}: wall_s must be a number >= 0, got {wall!r}")
    metrics = payload["metrics"]
    if not isinstance(metrics, Mapping):
        raise ValueError(f"{name}: 'metrics' must be a mapping")
    _check_numeric_tree(metrics, f"{name}: metrics")
    events_file = payload["events_file"]
    if events_file is not None and (
        not isinstance(events_file, str) or not events_file
    ):
        raise ValueError(
            f"{name}: 'events_file' must be null or a non-empty string"
        )
    return dict(payload)


#: The exact key set of every checkpoint manifest
#: (``gen*.json``, written by ``repro.experiments.checkpoint``).
CHECKPOINT_KEYS = frozenset(
    {
        "checkpoint_version",
        "config_hash",
        "replication",
        "generation",
        "state_file",
        "state_sha256",
    }
)


def _check_exact_int(value: Any, name: str, minimum: int = 0) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def validate_checkpoint_manifest(payload: Any, name: str = "checkpoint") -> dict:
    """Validate one checkpoint-manifest payload against its contract.

    The contract (README "Fault tolerance", enforced at write time by
    ``repro.experiments.checkpoint.CheckpointStore.save`` and again at load
    time before the state blob is unpickled):

    * exactly the keys ``{checkpoint_version, config_hash, replication,
      generation, state_file, state_sha256}``,
    * ``checkpoint_version`` is the integer ``1``,
    * ``config_hash`` is a non-empty string (the content address — the same
      sha256 :func:`repro.telemetry.manifest.config_hash` produces),
    * ``replication`` and ``generation`` are integers >= 0,
    * ``state_file`` is a non-empty string naming the sibling pickle blob,
    * ``state_sha256`` is a 64-character lowercase hex digest of that blob.

    Returns the payload for chaining; raises :class:`ValueError` with the
    offending field otherwise.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"{name} must be a JSON object, got {type(payload).__name__}")
    keys = set(payload)
    if keys != CHECKPOINT_KEYS:
        missing = sorted(CHECKPOINT_KEYS - keys)
        extra = sorted(keys - CHECKPOINT_KEYS)
        raise ValueError(
            f"{name} keys mismatch: missing {missing or 'none'},"
            f" unexpected {extra or 'none'}"
        )
    version = payload["checkpoint_version"]
    if isinstance(version, bool) or not isinstance(version, int) or version != 1:
        raise ValueError(
            f"{name}: 'checkpoint_version' must be the integer 1, got {version!r}"
        )
    if not isinstance(payload["config_hash"], str) or not payload["config_hash"]:
        raise ValueError(f"{name}: 'config_hash' must be a non-empty string")
    _check_exact_int(payload["replication"], f"{name}: 'replication'")
    _check_exact_int(payload["generation"], f"{name}: 'generation'")
    if not isinstance(payload["state_file"], str) or not payload["state_file"]:
        raise ValueError(f"{name}: 'state_file' must be a non-empty string")
    digest = payload["state_sha256"]
    if (
        not isinstance(digest, str)
        or len(digest) != 64
        or any(c not in "0123456789abcdef" for c in digest)
    ):
        raise ValueError(
            f"{name}: 'state_sha256' must be a 64-char lowercase hex digest"
        )
    return dict(payload)

"""Tiny argument-validation helpers shared by configuration dataclasses,
plus the machine-readable bench-report schema contract."""

from __future__ import annotations

import math
from typing import Any, Mapping

__all__ = [
    "check_probability",
    "check_fraction",
    "check_positive",
    "check_non_negative",
    "drift_budget_error",
    "shards_error",
    "BENCH_REPORT_KEYS",
    "BENCH_REPORT_OPTIONAL_KEYS",
    "BENCH_KERNEL_KEYS",
    "validate_bench_report",
    "RUN_MANIFEST_KEYS",
    "validate_run_manifest",
    "CHECKPOINT_KEYS",
    "validate_checkpoint_manifest",
    "SCENARIO_KEYS",
    "SCENARIO_OVERRIDE_KEYS",
    "SCENARIO_RUN_KEYS",
    "validate_scenario",
    "JOB_STATES",
    "JOB_RECORD_KEYS",
    "validate_job_record",
]


def check_probability(value: float, name: str) -> float:
    """Validate ``value`` lies in [0, 1]; returns it for chaining."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Validate ``value`` lies in (0, 1]; returns it for chaining."""
    value = float(value)
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate ``value`` is strictly positive; returns it for chaining."""
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate ``value`` is >= 0; returns it for chaining."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def drift_budget_error(
    route_cache: str | None,
    drift_budget: int | None,
    route_cache_label: str = "--route-cache",
    budget_label: str = "--drift-budget",
) -> str | None:
    """Validate a route-cache/drift-budget pair (``None`` when fine).

    A budget without the approx policy would be range-checked and then
    silently ignored (the exact policy hardcodes budget 0) — reject it so
    a misconfigured benchmark or scenario cannot masquerade as a
    drift-budgeted run.  Shared by the CLI flags, the scenario loader and
    the service layer; the labels parametrize the error message so each
    surface reports in its own vocabulary.
    """
    if drift_budget is None:
        return None
    if drift_budget < 0:
        return f"{budget_label} must be >= 0, got {drift_budget}"
    if route_cache != "approx":
        return f"{budget_label} requires {route_cache_label} approx"
    return None


def shards_error(shards: int | None, label: str = "--shards") -> str | None:
    """Validate a shard count (``None`` when fine; ``None`` input means
    "one pool task per replication" and is always fine)."""
    if shards is not None and shards < 1:
        return f"{label} must be >= 1, got {shards}"
    return None


#: The exact key set of every machine-readable bench report
#: (``results/bench_reports/*.json`` and the repo-root ``BENCH_ENGINE.json``).
BENCH_REPORT_KEYS = frozenset({"bench", "scale", "wall_s", "metrics", "git_sha"})
#: Optional extra keys a report may carry.  ``kernel`` is the engine
#: ledger's kernel-backend record — which backend produced the timed
#: numbers (``backend``/``compiled``) and whether the compiled one was even
#: installable (``numba_available``), so a throughput figure is always
#: attributable to numpy vs numba.
BENCH_REPORT_OPTIONAL_KEYS = frozenset({"kernel"})
#: The exact key set of the ``kernel`` record when present.
BENCH_KERNEL_KEYS = frozenset({"backend", "compiled", "numba_available"})


def _check_numeric_tree(value: Any, path: str) -> None:
    """Finite numbers, or string-keyed mappings that bottom out in them."""
    if isinstance(value, bool):
        raise ValueError(f"{path} must be numeric, got a bool")
    if isinstance(value, (int, float)):
        # NaN poisons comparisons silently; +/-inf serializes as the
        # non-RFC-8259 token ``Infinity`` that strict JSON consumers reject
        if not math.isfinite(value):
            raise ValueError(f"{path} is not finite ({value!r})")
        return
    if isinstance(value, Mapping):
        for key, sub in value.items():
            if not isinstance(key, str):
                raise ValueError(f"{path} has a non-string key {key!r}")
            _check_numeric_tree(sub, f"{path}[{key!r}]")
        return
    raise ValueError(
        f"{path} must be a number or a nested mapping of numbers,"
        f" got {type(value).__name__}"
    )


def validate_bench_report(payload: Any, name: str = "bench report") -> dict:
    """Validate one bench-report JSON payload against the pipeline contract.

    The contract (README "Verifying", enforced at write time by
    ``benchmarks/conftest.emit_report`` and over the committed artefacts by
    ``tests/test_bench_report_schema.py``):

    * exactly the keys ``{bench, scale, wall_s, metrics, git_sha}``, plus
      optionally ``kernel`` (the engine ledger's kernel-backend record:
      ``backend`` a non-empty string, ``compiled``/``numba_available``
      booleans),
    * ``bench`` and ``git_sha`` are non-empty strings,
    * ``scale`` is a string or a string-keyed mapping of numbers,
    * ``wall_s`` is a non-negative number, ``null`` (a bench that did not
      time itself), or a nested mapping of numbers (the engine ledger's
      per-oracle/per-engine matrix),
    * ``metrics`` is a string-keyed mapping bottoming out in finite numbers.

    Returns the payload for chaining; raises :class:`ValueError` with the
    offending path otherwise.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"{name} must be a JSON object, got {type(payload).__name__}")
    keys = set(payload)
    missing = sorted(BENCH_REPORT_KEYS - keys)
    extra = sorted(keys - BENCH_REPORT_KEYS - BENCH_REPORT_OPTIONAL_KEYS)
    if missing or extra:
        raise ValueError(
            f"{name} keys mismatch: missing {missing or 'none'},"
            f" unexpected {extra or 'none'}"
        )
    kernel = payload.get("kernel")
    if kernel is not None:
        if not isinstance(kernel, Mapping) or set(kernel) != BENCH_KERNEL_KEYS:
            raise ValueError(
                f"{name}: 'kernel' must be a mapping with exactly the keys"
                f" {sorted(BENCH_KERNEL_KEYS)}"
            )
        if not isinstance(kernel["backend"], str) or not kernel["backend"]:
            raise ValueError(
                f"{name}: kernel 'backend' must be a non-empty string"
            )
        for flag in ("compiled", "numba_available"):
            if not isinstance(kernel[flag], bool):
                raise ValueError(
                    f"{name}: kernel {flag!r} must be a boolean,"
                    f" got {kernel[flag]!r}"
                )
    for field in ("bench", "git_sha"):
        if not isinstance(payload[field], str) or not payload[field]:
            raise ValueError(f"{name}: {field!r} must be a non-empty string")
    scale = payload["scale"]
    if isinstance(scale, str):
        if not scale:
            raise ValueError(f"{name}: 'scale' string must be non-empty")
    else:
        _check_numeric_tree(scale, f"{name}: scale")
    wall = payload["wall_s"]
    if wall is not None:
        _check_numeric_tree(wall, f"{name}: wall_s")
        if isinstance(wall, (int, float)) and wall < 0:
            raise ValueError(f"{name}: wall_s must be >= 0, got {wall}")
    metrics = payload["metrics"]
    if not isinstance(metrics, Mapping):
        raise ValueError(f"{name}: 'metrics' must be a mapping")
    _check_numeric_tree(metrics, f"{name}: metrics")
    return dict(payload)


#: The exact key set of every telemetry run manifest
#: (``<name>_manifest.json``, written by ``repro.telemetry.manifest``).
RUN_MANIFEST_KEYS = frozenset(
    {
        "manifest_version",
        "name",
        "git_sha",
        "config_hash",
        "run",
        "wall_s",
        "metrics",
        "events_file",
    }
)


def validate_run_manifest(payload: Any, name: str = "run manifest") -> dict:
    """Validate one telemetry run-manifest payload against its contract.

    The contract (README "Observability", enforced at write time by
    ``repro.telemetry.manifest.build_run_manifest`` and at read time by
    ``repro stats``):

    * exactly the keys ``{manifest_version, name, git_sha, config_hash,
      run, wall_s, metrics, events_file}``,
    * ``manifest_version`` is the integer ``1``,
    * ``name``, ``git_sha`` and ``config_hash`` are non-empty strings,
    * ``run`` is a string-keyed mapping of scalars (strings or finite
      numbers) — the engine/oracle/policy provenance block,
    * ``wall_s`` is a non-negative finite number,
    * ``metrics`` is a string-keyed mapping bottoming out in finite
      numbers (the aggregated registry snapshot),
    * ``events_file`` is ``null`` or a non-empty string naming the
      sibling JSONL event dump.

    Returns the payload for chaining; raises :class:`ValueError` with the
    offending path otherwise.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"{name} must be a JSON object, got {type(payload).__name__}")
    keys = set(payload)
    if keys != RUN_MANIFEST_KEYS:
        missing = sorted(RUN_MANIFEST_KEYS - keys)
        extra = sorted(keys - RUN_MANIFEST_KEYS)
        raise ValueError(
            f"{name} keys mismatch: missing {missing or 'none'},"
            f" unexpected {extra or 'none'}"
        )
    version = payload["manifest_version"]
    if isinstance(version, bool) or not isinstance(version, int) or version != 1:
        raise ValueError(
            f"{name}: 'manifest_version' must be the integer 1, got {version!r}"
        )
    for field in ("name", "git_sha", "config_hash"):
        if not isinstance(payload[field], str) or not payload[field]:
            raise ValueError(f"{name}: {field!r} must be a non-empty string")
    run = payload["run"]
    if not isinstance(run, Mapping):
        raise ValueError(f"{name}: 'run' must be a mapping")
    for key, value in run.items():
        if not isinstance(key, str):
            raise ValueError(f"{name}: run has a non-string key {key!r}")
        if isinstance(value, str):
            continue
        _check_numeric_tree(value, f"{name}: run[{key!r}]")
        if isinstance(value, Mapping):
            raise ValueError(f"{name}: run[{key!r}] must be a scalar")
    wall = payload["wall_s"]
    _check_numeric_tree(wall, f"{name}: wall_s")
    if not isinstance(wall, (int, float)) or wall < 0:
        raise ValueError(f"{name}: wall_s must be a number >= 0, got {wall!r}")
    metrics = payload["metrics"]
    if not isinstance(metrics, Mapping):
        raise ValueError(f"{name}: 'metrics' must be a mapping")
    _check_numeric_tree(metrics, f"{name}: metrics")
    events_file = payload["events_file"]
    if events_file is not None and (
        not isinstance(events_file, str) or not events_file
    ):
        raise ValueError(
            f"{name}: 'events_file' must be null or a non-empty string"
        )
    return dict(payload)


#: The exact key set of every checkpoint manifest
#: (``gen*.json``, written by ``repro.experiments.checkpoint``).
CHECKPOINT_KEYS = frozenset(
    {
        "checkpoint_version",
        "config_hash",
        "replication",
        "generation",
        "state_file",
        "state_sha256",
    }
)


def _check_exact_int(value: Any, name: str, minimum: int = 0) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def validate_checkpoint_manifest(payload: Any, name: str = "checkpoint") -> dict:
    """Validate one checkpoint-manifest payload against its contract.

    The contract (README "Fault tolerance", enforced at write time by
    ``repro.experiments.checkpoint.CheckpointStore.save`` and again at load
    time before the state blob is unpickled):

    * exactly the keys ``{checkpoint_version, config_hash, replication,
      generation, state_file, state_sha256}``,
    * ``checkpoint_version`` is the integer ``1``,
    * ``config_hash`` is a non-empty string (the content address — the same
      sha256 :func:`repro.telemetry.manifest.config_hash` produces),
    * ``replication`` and ``generation`` are integers >= 0,
    * ``state_file`` is a non-empty string naming the sibling pickle blob,
    * ``state_sha256`` is a 64-character lowercase hex digest of that blob.

    Returns the payload for chaining; raises :class:`ValueError` with the
    offending field otherwise.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"{name} must be a JSON object, got {type(payload).__name__}")
    keys = set(payload)
    if keys != CHECKPOINT_KEYS:
        missing = sorted(CHECKPOINT_KEYS - keys)
        extra = sorted(keys - CHECKPOINT_KEYS)
        raise ValueError(
            f"{name} keys mismatch: missing {missing or 'none'},"
            f" unexpected {extra or 'none'}"
        )
    version = payload["checkpoint_version"]
    if isinstance(version, bool) or not isinstance(version, int) or version != 1:
        raise ValueError(
            f"{name}: 'checkpoint_version' must be the integer 1, got {version!r}"
        )
    if not isinstance(payload["config_hash"], str) or not payload["config_hash"]:
        raise ValueError(f"{name}: 'config_hash' must be a non-empty string")
    _check_exact_int(payload["replication"], f"{name}: 'replication'")
    _check_exact_int(payload["generation"], f"{name}: 'generation'")
    if not isinstance(payload["state_file"], str) or not payload["state_file"]:
        raise ValueError(f"{name}: 'state_file' must be a non-empty string")
    digest = payload["state_sha256"]
    if (
        not isinstance(digest, str)
        or len(digest) != 64
        or any(c not in "0123456789abcdef" for c in digest)
    ):
        raise ValueError(
            f"{name}: 'state_sha256' must be a 64-char lowercase hex digest"
        )
    return dict(payload)


# -- scenario files ----------------------------------------------------------

#: The exact top-level key set of every scenario file (``scenarios/*.yaml``,
#: loaded by :mod:`repro.scenarios`).  All keys are required: a scenario is a
#: complete, explicit description of one experiment run.
SCENARIO_KEYS = frozenset(
    {
        "scenario_version",
        "name",
        "description",
        "case",
        "scale",
        "overrides",
        "run",
    }
)

#: Allowed keys of a scenario's ``overrides`` block — the same knobs the CLI
#: exposes as flags on ``run-case``.  Absent keys keep the case defaults.
SCENARIO_OVERRIDE_KEYS = frozenset(
    {
        "seed",
        "engine",
        "generations",
        "rounds",
        "replications",
        "mobility",
        "speed",
        "pause",
        "route_cache",
        "drift_budget",
        "telemetry",
        "kernel",
    }
)

#: Allowed keys of a scenario's ``run`` block — execution options that never
#: change simulation results (and therefore never enter the config hash).
#: ``stacked`` qualifies because stacked evaluation is bit-identical to the
#: per-replication path (``tests/test_sim_stacked.py``).
SCENARIO_RUN_KEYS = frozenset(
    {"processes", "shards", "checkpoint_dir", "resume", "stacked"}
)

#: Characters allowed in a scenario name (it names manifest/result files).
_NAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def _check_optional_int(value: Any, name: str, minimum: int) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")


def _check_nonempty_str(value: Any, name: str) -> None:
    if not isinstance(value, str) or not value:
        raise ValueError(f"{name} must be a non-empty string")


def validate_scenario(payload: Any, name: str = "scenario") -> dict:
    """Validate one scenario payload against the DSL contract.

    The contract (README "Serving layer", enforced at load time by
    :func:`repro.scenarios.load_scenario`, over the committed library by
    ``tests/test_scenarios.py`` and in CI by ``repro validate-scenarios``):

    * exactly the top-level keys ``{scenario_version, name, description,
      case, scale, overrides, run}``,
    * ``scenario_version`` is the integer ``1``,
    * ``name`` is a non-empty filename-safe string
      (``[A-Za-z0-9._-]+``), ``description`` a string,
    * ``case`` and ``scale`` are non-empty strings (membership in the case
      registry and scale table is checked at *resolve* time, which owns
      those imports),
    * ``overrides`` is a mapping whose keys are a subset of
      :data:`SCENARIO_OVERRIDE_KEYS` with type/range-checked values
      (``speed``/``pause`` require ``mobility``; ``drift_budget`` requires
      ``route_cache: approx``),
    * ``run`` is a mapping whose keys are a subset of
      :data:`SCENARIO_RUN_KEYS` (execution options; ``null`` means
      default).

    Returns a normalized deep copy (``overrides``/``run`` as plain dicts);
    raises :class:`ValueError` with the offending field otherwise.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"{name} must be a mapping, got {type(payload).__name__}")
    keys = set(payload)
    if keys != SCENARIO_KEYS:
        missing = sorted(SCENARIO_KEYS - keys)
        extra = sorted(keys - SCENARIO_KEYS)
        raise ValueError(
            f"{name} keys mismatch: missing {missing or 'none'},"
            f" unexpected {extra or 'none'}"
        )
    version = payload["scenario_version"]
    if isinstance(version, bool) or not isinstance(version, int) or version != 1:
        raise ValueError(
            f"{name}: 'scenario_version' must be the integer 1, got {version!r}"
        )
    _check_nonempty_str(payload["name"], f"{name}: 'name'")
    if not set(payload["name"]) <= _NAME_CHARS:
        raise ValueError(
            f"{name}: 'name' may only contain [A-Za-z0-9._-],"
            f" got {payload['name']!r}"
        )
    if not isinstance(payload["description"], str):
        raise ValueError(f"{name}: 'description' must be a string")
    _check_nonempty_str(payload["case"], f"{name}: 'case'")
    _check_nonempty_str(payload["scale"], f"{name}: 'scale'")

    overrides = payload["overrides"]
    if not isinstance(overrides, Mapping):
        raise ValueError(f"{name}: 'overrides' must be a mapping")
    unknown = sorted(set(overrides) - SCENARIO_OVERRIDE_KEYS)
    if unknown:
        raise ValueError(f"{name}: unknown override keys {unknown}")
    for key in ("seed",):
        if key in overrides:
            value = overrides[key]
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(
                    f"{name}: override {key!r} must be an integer, got {value!r}"
                )
    for key, minimum in (("generations", 1), ("rounds", 1), ("replications", 1)):
        if key in overrides:
            _check_optional_int(
                overrides[key], f"{name}: override {key!r}", minimum
            )
    for key in ("engine", "mobility", "route_cache", "kernel"):
        if key in overrides:
            _check_nonempty_str(overrides[key], f"{name}: override {key!r}")
    for key in ("speed", "pause"):
        if key in overrides:
            value = overrides[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"{name}: override {key!r} must be a number, got {value!r}"
                )
            if not math.isfinite(value) or value < 0:
                raise ValueError(
                    f"{name}: override {key!r} must be >= 0 and finite,"
                    f" got {value!r}"
                )
    if (
        "speed" in overrides or "pause" in overrides
    ) and "mobility" not in overrides:
        raise ValueError(
            f"{name}: overrides 'speed'/'pause' require 'mobility'"
        )
    if "drift_budget" in overrides:
        _check_optional_int(
            overrides["drift_budget"], f"{name}: override 'drift_budget'", 0
        )
    error = drift_budget_error(
        overrides.get("route_cache"),
        overrides.get("drift_budget"),
        route_cache_label="override 'route_cache':",
        budget_label="override 'drift_budget'",
    )
    if error is not None:
        raise ValueError(f"{name}: {error}")
    if "telemetry" in overrides and not isinstance(overrides["telemetry"], bool):
        raise ValueError(f"{name}: override 'telemetry' must be a boolean")

    run = payload["run"]
    if not isinstance(run, Mapping):
        raise ValueError(f"{name}: 'run' must be a mapping")
    unknown = sorted(set(run) - SCENARIO_RUN_KEYS)
    if unknown:
        raise ValueError(f"{name}: unknown run keys {unknown}")
    for key in ("processes", "shards"):
        if key in run and run[key] is not None:
            _check_optional_int(run[key], f"{name}: run {key!r}", 1)
    if "checkpoint_dir" in run and run["checkpoint_dir"] is not None:
        _check_nonempty_str(run["checkpoint_dir"], f"{name}: run 'checkpoint_dir'")
    if "resume" in run and not isinstance(run["resume"], bool):
        raise ValueError(f"{name}: run 'resume' must be a boolean")
    if (
        "stacked" in run
        and run["stacked"] is not None
        and not isinstance(run["stacked"], bool)
    ):
        raise ValueError(f"{name}: run 'stacked' must be a boolean or null")

    normalized = dict(payload)
    normalized["overrides"] = {k: overrides[k] for k in sorted(overrides)}
    normalized["run"] = {k: run[k] for k in sorted(run)}
    return normalized


# -- service job records -----------------------------------------------------

#: The lifecycle states of a service job (``queued`` -> ``running`` ->
#: ``done``/``failed``; a failed or orphaned job may be requeued).
JOB_STATES = ("queued", "running", "done", "failed")

#: The exact key set of every service job record (``job.json``, written by
#: ``repro.service.store.ResultStore``).
JOB_RECORD_KEYS = frozenset(
    {
        "job_version",
        "job_id",
        "name",
        "state",
        "scenario",
        "submitted_s",
        "started_s",
        "finished_s",
        "attempts",
        "error",
        "result_file",
        "manifest_file",
    }
)


def validate_job_record(payload: Any, name: str = "job record") -> dict:
    """Validate one service job record against its contract.

    The contract (README "Serving layer", enforced at write time by
    ``repro.service.store.ResultStore.save_record`` and at read time before
    a record is trusted):

    * exactly the keys :data:`JOB_RECORD_KEYS`,
    * ``job_version`` is the integer ``1``,
    * ``job_id`` is the run's full 64-char ``config_hash`` (the dedupe
      content address),
    * ``state`` is one of :data:`JOB_STATES`,
    * ``scenario`` is a valid scenario payload (re-resolved on recovery),
    * ``submitted_s`` is a finite number; ``started_s``/``finished_s`` are
      finite numbers or ``null``,
    * ``attempts`` is an integer >= 0 (execution starts so far),
    * ``error``, ``result_file`` and ``manifest_file`` are ``null`` or
      non-empty strings.

    Returns the payload for chaining; raises :class:`ValueError` otherwise.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"{name} must be a JSON object, got {type(payload).__name__}")
    keys = set(payload)
    if keys != JOB_RECORD_KEYS:
        missing = sorted(JOB_RECORD_KEYS - keys)
        extra = sorted(keys - JOB_RECORD_KEYS)
        raise ValueError(
            f"{name} keys mismatch: missing {missing or 'none'},"
            f" unexpected {extra or 'none'}"
        )
    version = payload["job_version"]
    if isinstance(version, bool) or not isinstance(version, int) or version != 1:
        raise ValueError(
            f"{name}: 'job_version' must be the integer 1, got {version!r}"
        )
    job_id = payload["job_id"]
    if (
        not isinstance(job_id, str)
        or len(job_id) != 64
        or any(c not in "0123456789abcdef" for c in job_id)
    ):
        raise ValueError(
            f"{name}: 'job_id' must be a 64-char lowercase hex config hash"
        )
    _check_nonempty_str(payload["name"], f"{name}: 'name'")
    if payload["state"] not in JOB_STATES:
        raise ValueError(
            f"{name}: 'state' must be one of {JOB_STATES}, got {payload['state']!r}"
        )
    validate_scenario(payload["scenario"], name=f"{name}: scenario")
    submitted = payload["submitted_s"]
    if (
        isinstance(submitted, bool)
        or not isinstance(submitted, (int, float))
        or not math.isfinite(submitted)
    ):
        raise ValueError(f"{name}: 'submitted_s' must be a finite number")
    for key in ("started_s", "finished_s"):
        value = payload[key]
        if value is None:
            continue
        if (
            isinstance(value, bool)
            or not isinstance(value, (int, float))
            or not math.isfinite(value)
        ):
            raise ValueError(f"{name}: {key!r} must be null or a finite number")
    _check_exact_int(payload["attempts"], f"{name}: 'attempts'")
    for key in ("error", "result_file", "manifest_file"):
        value = payload[key]
        if value is not None and (not isinstance(value, str) or not value):
            raise ValueError(f"{name}: {key!r} must be null or a non-empty string")
    return dict(payload)

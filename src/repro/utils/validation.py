"""Tiny argument-validation helpers shared by configuration dataclasses,
plus the machine-readable bench-report schema contract."""

from __future__ import annotations

import math
from typing import Any, Mapping

__all__ = [
    "check_probability",
    "check_fraction",
    "check_positive",
    "check_non_negative",
    "BENCH_REPORT_KEYS",
    "validate_bench_report",
]


def check_probability(value: float, name: str) -> float:
    """Validate ``value`` lies in [0, 1]; returns it for chaining."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Validate ``value`` lies in (0, 1]; returns it for chaining."""
    value = float(value)
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate ``value`` is strictly positive; returns it for chaining."""
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate ``value`` is >= 0; returns it for chaining."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


#: The exact key set of every machine-readable bench report
#: (``results/bench_reports/*.json`` and the repo-root ``BENCH_ENGINE.json``).
BENCH_REPORT_KEYS = frozenset({"bench", "scale", "wall_s", "metrics", "git_sha"})


def _check_numeric_tree(value: Any, path: str) -> None:
    """Finite numbers, or string-keyed mappings that bottom out in them."""
    if isinstance(value, bool):
        raise ValueError(f"{path} must be numeric, got a bool")
    if isinstance(value, (int, float)):
        # NaN poisons comparisons silently; +/-inf serializes as the
        # non-RFC-8259 token ``Infinity`` that strict JSON consumers reject
        if not math.isfinite(value):
            raise ValueError(f"{path} is not finite ({value!r})")
        return
    if isinstance(value, Mapping):
        for key, sub in value.items():
            if not isinstance(key, str):
                raise ValueError(f"{path} has a non-string key {key!r}")
            _check_numeric_tree(sub, f"{path}[{key!r}]")
        return
    raise ValueError(
        f"{path} must be a number or a nested mapping of numbers,"
        f" got {type(value).__name__}"
    )


def validate_bench_report(payload: Any, name: str = "bench report") -> dict:
    """Validate one bench-report JSON payload against the pipeline contract.

    The contract (README "Verifying", enforced at write time by
    ``benchmarks/conftest.emit_report`` and over the committed artefacts by
    ``tests/test_bench_report_schema.py``):

    * exactly the keys ``{bench, scale, wall_s, metrics, git_sha}``,
    * ``bench`` and ``git_sha`` are non-empty strings,
    * ``scale`` is a string or a string-keyed mapping of numbers,
    * ``wall_s`` is a non-negative number, ``null`` (a bench that did not
      time itself), or a nested mapping of numbers (the engine ledger's
      per-oracle/per-engine matrix),
    * ``metrics`` is a string-keyed mapping bottoming out in finite numbers.

    Returns the payload for chaining; raises :class:`ValueError` with the
    offending path otherwise.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"{name} must be a JSON object, got {type(payload).__name__}")
    keys = set(payload)
    if keys != BENCH_REPORT_KEYS:
        missing = sorted(BENCH_REPORT_KEYS - keys)
        extra = sorted(keys - BENCH_REPORT_KEYS)
        raise ValueError(
            f"{name} keys mismatch: missing {missing or 'none'},"
            f" unexpected {extra or 'none'}"
        )
    for field in ("bench", "git_sha"):
        if not isinstance(payload[field], str) or not payload[field]:
            raise ValueError(f"{name}: {field!r} must be a non-empty string")
    scale = payload["scale"]
    if isinstance(scale, str):
        if not scale:
            raise ValueError(f"{name}: 'scale' string must be non-empty")
    else:
        _check_numeric_tree(scale, f"{name}: scale")
    wall = payload["wall_s"]
    if wall is not None:
        _check_numeric_tree(wall, f"{name}: wall_s")
        if isinstance(wall, (int, float)) and wall < 0:
            raise ValueError(f"{name}: wall_s must be >= 0, got {wall}")
    metrics = payload["metrics"]
    if not isinstance(metrics, Mapping):
        raise ValueError(f"{name}: 'metrics' must be a mapping")
    _check_numeric_tree(metrics, f"{name}: metrics")
    return dict(payload)

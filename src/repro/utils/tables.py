"""ASCII rendering of tables and line plots.

The benchmark harnesses print paper-style tables and an ASCII rendering of
Fig. 4 so the reproduction output can be compared with the paper without any
plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "ascii_lineplot"]


def _cell(value: object, floatfmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    rows: Sequence[Sequence[object]],
    headers: Sequence[str] | None = None,
    title: str | None = None,
    floatfmt: str = ".2f",
) -> str:
    """Render ``rows`` as a boxed ASCII table.

    ``rows`` is a sequence of equal-length sequences; floats are formatted
    with ``floatfmt``.  Returns the table as a single string (no trailing
    newline) ready for ``print``.
    """
    text_rows = [[_cell(v, floatfmt) for v in row] for row in rows]
    ncols = max((len(r) for r in text_rows), default=0)
    if headers is not None:
        ncols = max(ncols, len(headers))
    header_row = list(headers) if headers is not None else None
    widths = [0] * ncols
    for row in ([header_row] if header_row else []) + text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(row: Sequence[str]) -> str:
        cells = list(row) + [""] * (ncols - len(row))
        return "| " + " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells)) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(sep)
    if header_row:
        lines.append(fmt_row(header_row))
        lines.append(sep)
    for row in text_rows:
        lines.append(fmt_row(row))
    lines.append(sep)
    return "\n".join(lines)


def ascii_lineplot(
    series: Mapping[str, Sequence[float]],
    width: int = 72,
    height: int = 18,
    title: str | None = None,
    ylabel: str = "",
    ymin: float | None = None,
    ymax: float | None = None,
) -> str:
    """Render one or more numeric series as an ASCII line plot.

    Each series gets a distinct marker; series are downsampled/stretched onto
    a ``width`` x ``height`` character canvas.  Used to display the Fig. 4
    cooperation curves in terminal output.
    """
    if not series:
        raise ValueError("ascii_lineplot requires at least one series")
    markers = "ox+*#@%&"
    all_vals = [v for vals in series.values() for v in vals]
    if not all_vals:
        raise ValueError("ascii_lineplot requires non-empty series")
    lo = min(all_vals) if ymin is None else ymin
    hi = max(all_vals) if ymax is None else ymax
    if hi <= lo:
        hi = lo + 1.0
    canvas = [[" "] * width for _ in range(height)]

    def x_of(i: int, n: int) -> int:
        if n <= 1:
            return 0
        return round(i * (width - 1) / (n - 1))

    def y_of(v: float) -> int:
        frac = (v - lo) / (hi - lo)
        frac = min(max(frac, 0.0), 1.0)
        return (height - 1) - round(frac * (height - 1))

    for k, (name, vals) in enumerate(series.items()):
        marker = markers[k % len(markers)]
        n = len(vals)
        for i, v in enumerate(vals):
            canvas[y_of(v)][x_of(i, n)] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = f"{hi:.3g}"
    bot_label = f"{lo:.3g}"
    label_w = max(len(top_label), len(bot_label), len(ylabel)) + 1
    for r, row in enumerate(canvas):
        if r == 0:
            label = top_label
        elif r == height - 1:
            label = bot_label
        elif r == height // 2 and ylabel:
            label = ylabel
        else:
            label = ""
        lines.append(label.rjust(label_w) + " |" + "".join(row))
    lines.append(" " * label_w + " +" + "-" * width)
    legend = "   ".join(
        f"{markers[k % len(markers)]}={name}" for k, name in enumerate(series)
    )
    lines.append(" " * label_w + "  " + legend)
    return "\n".join(lines)

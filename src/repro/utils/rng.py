"""Deterministic random-number plumbing.

Every stochastic component in :mod:`repro` takes a
:class:`numpy.random.Generator`.  Replications are made independent (and
results reproducible regardless of execution order or worker count) by
spawning child seeds from a single :class:`numpy.random.SeedSequence` — the
recommended pattern for parallel Monte-Carlo work.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["as_generator", "spawn_seeds", "spawn_generators", "derive_generator"]


def as_generator(seed: int | None | np.random.Generator) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (OS entropy).  Centralising this makes every public API accept
    the same flexible ``seed`` argument.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(master_seed: int | None, n: int) -> list[np.random.SeedSequence]:
    """Spawn ``n`` statistically independent child seed sequences.

    The children are a pure function of ``master_seed`` and the index, so a
    replication's stream does not depend on how many workers execute the batch
    or in which order.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of seeds: {n}")
    return np.random.SeedSequence(master_seed).spawn(n)


def spawn_generators(master_seed: int | None, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators (see :func:`spawn_seeds`)."""
    return [np.random.default_rng(s) for s in spawn_seeds(master_seed, n)]


def derive_generator(
    master_seed: int | None, key: Sequence[int]
) -> np.random.Generator:
    """Derive a generator from ``master_seed`` and a structured ``key``.

    ``key`` is a sequence of non-negative integers (e.g. ``(replication,
    stage)``) appended to the seed sequence's spawn key, giving a stable
    stream per logical task without pre-spawning whole lists.
    """
    seq = np.random.SeedSequence(master_seed, spawn_key=tuple(int(k) for k in key))
    return np.random.default_rng(seq)

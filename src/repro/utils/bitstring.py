"""Bit-string helpers used by strategy genomes.

Strategies in the paper are binary strings (length 13 for the ad hoc game,
length 5 for the IPDRP baseline).  These helpers convert between the three
representations used across the code base:

* ``tuple[int, ...]`` of 0/1 — canonical in-memory form (hashable, cheap),
* ``str`` such as ``"010 101 101 111 1"`` — the paper's display form,
* ``int`` — compact form for serialisation and counting (bit 0 first).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "bits_from_string",
    "bits_to_string",
    "bits_from_int",
    "bits_to_int",
    "hamming_distance",
    "validate_bits",
]


def validate_bits(bits: Sequence[int], length: int | None = None) -> tuple[int, ...]:
    """Return ``bits`` as a tuple, checking every element is 0 or 1.

    ``length``, when given, additionally pins the expected number of bits.
    """
    out = tuple(int(b) for b in bits)
    for b in out:
        if b not in (0, 1):
            raise ValueError(f"bit values must be 0 or 1, got {b!r}")
    if length is not None and len(out) != length:
        raise ValueError(f"expected {length} bits, got {len(out)}")
    return out


def bits_from_string(text: str, length: int | None = None) -> tuple[int, ...]:
    """Parse a bit string such as ``"010 101 101 111 1"``.

    Whitespace and underscores are ignored, so both the paper's grouped form
    and a plain ``"0101011011111"`` parse identically.
    """
    cleaned = [ch for ch in text if ch not in " \t\n_"]
    bad = [ch for ch in cleaned if ch not in "01"]
    if bad:
        raise ValueError(f"invalid characters in bit string: {bad!r}")
    return validate_bits([int(ch) for ch in cleaned], length)


def bits_to_string(bits: Sequence[int], group: int | Iterable[int] = 0) -> str:
    """Render bits as a string, optionally grouped.

    ``group`` may be a single group size (0 means no grouping) or an iterable
    of group sizes, e.g. ``(3, 3, 3, 3, 1)`` for the paper's strategy layout.
    """
    bits = validate_bits(bits)
    text = "".join(str(b) for b in bits)
    if not group:
        return text
    if isinstance(group, int):
        sizes = [group] * ((len(bits) + group - 1) // group)
    else:
        sizes = list(group)
        if sum(sizes) != len(bits):
            raise ValueError(
                f"group sizes {sizes} do not cover {len(bits)} bits"
            )
    chunks, pos = [], 0
    for size in sizes:
        chunks.append(text[pos : pos + size])
        pos += size
    return " ".join(chunk for chunk in chunks if chunk)


def bits_to_int(bits: Sequence[int]) -> int:
    """Pack bits into an integer, bit 0 in the lowest position."""
    bits = validate_bits(bits)
    value = 0
    for i, b in enumerate(bits):
        value |= b << i
    return value


def bits_from_int(value: int, length: int) -> tuple[int, ...]:
    """Unpack ``length`` bits from an integer (inverse of :func:`bits_to_int`)."""
    if value < 0:
        raise ValueError(f"bit-packed value must be non-negative, got {value}")
    if value >> length:
        raise ValueError(f"value {value} does not fit in {length} bits")
    return tuple((value >> i) & 1 for i in range(length))


def hamming_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Number of positions at which two equal-length bit strings differ."""
    a = validate_bits(a)
    b = validate_bits(b)
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return sum(x != y for x, y in zip(a, b))

"""The service's execution loop: dedupe, run, checkpoint, recover.

A :class:`JobRunner` owns a :class:`~repro.service.store.ResultStore` and
moves jobs through ``queued → running → done/failed``:

* **submit** resolves the scenario through :mod:`repro.scenarios` and
  content-addresses the job by the resolved config's telemetry-excluded
  ``config_hash`` — a second submission of the same experiment (whatever
  file, flags, or HTTP body it came from) returns the existing record
  without a second execution.  Only a ``failed`` job is requeued.
* **execution** forces telemetry on (hash-excluded, result-neutral), runs
  through :func:`repro.experiments.runner.run_experiment` with
  generation-boundary checkpoints in the store's shared checkpoint
  directory, then persists the canonical result payload and the
  schema-validated run manifest (the job's status payload — there is no
  second reporting path).
* **recover** requeues any job found ``queued`` or ``running`` on startup;
  because checkpoints are content-addressed by the same hash and
  ``resume`` is always on, a job killed mid-run completes bit-identically
  to an uninterrupted one (same guarantee the CI crash-injection gate
  pins for the CLI).

``run_pending()`` drains the queue synchronously (tests, benches, one-shot
batch use); ``start()``/``stop()`` run the same loop on a worker thread
for ``repro serve``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Mapping

from repro.scenarios import resolve_scenario
from repro.service.store import ResultStore

__all__ = ["JobRunner"]


class JobRunner:
    """Deduping, checkpoint-backed job execution over a result store."""

    def __init__(self, root: str | Path):
        self.store = ResultStore(root)
        #: submission/execution tallies (monotone within this process)
        self.counters: dict[str, int] = {
            "submitted": 0,
            "deduped": 0,
            "requeued": 0,
            "completed": 0,
            "failed": 0,
        }
        self._queue: deque[str] = deque()
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- submission -----------------------------------------------------------

    def submit(self, payload: Mapping[str, Any]) -> tuple[dict, bool]:
        """Submit a scenario payload; returns ``(record, created)``.

        ``created`` is ``True`` only when this submission enqueued new
        work (first sight of the hash, or a ``failed`` job requeued); a
        dedupe hit returns the existing record untouched.  Raises
        :class:`ValueError` for an invalid or unresolvable scenario.
        """
        resolved = resolve_scenario(payload)
        job_id = resolved.config_hash()
        with self._lock:
            self.counters["submitted"] += 1
            record = self.store.load_record(job_id)
            if record is not None:
                if record["state"] != "failed":
                    self.counters["deduped"] += 1
                    return record, False
                record = dict(
                    record, state="queued", error=None, finished_s=None
                )
                record = self.store.save_record(record)
                self.counters["requeued"] += 1
            else:
                record = self.store.save_record(
                    ResultStore.new_record(
                        job_id, resolved.name, resolved.to_payload()
                    )
                )
            self._queue.append(job_id)
        self._wake.set()
        return record, True

    def recover(self) -> int:
        """Requeue every job left ``queued``/``running`` by a dead runner.

        Returns the number requeued.  Re-execution resumes from the
        shared checkpoint store, so a recovered job finishes bit-identical
        to one that was never interrupted.
        """
        recovered = 0
        with self._lock:
            queued = set(self._queue)
            for record in self.store.list_records():
                if record["state"] not in ("queued", "running"):
                    continue
                if record["state"] == "running":
                    self.store.save_record(dict(record, state="queued"))
                if record["job_id"] not in queued:
                    self._queue.append(record["job_id"])
                    self.counters["requeued"] += 1
                    recovered += 1
        if recovered:
            self._wake.set()
        return recovered

    # -- execution ------------------------------------------------------------

    def _pop(self) -> str | None:
        with self._lock:
            return self._queue.popleft() if self._queue else None

    def run_pending(self) -> int:
        """Execute every queued job synchronously; returns the count."""
        done = 0
        while (job_id := self._pop()) is not None:
            self._execute(job_id)
            done += 1
        return done

    def _execute(self, job_id: str) -> None:
        from repro.experiments.runner import run_experiment
        from repro.telemetry.config import TelemetryConfig
        from repro.telemetry.manifest import write_run_manifest

        with self._lock:
            record = self.store.load_record(job_id)
            if record is None or record["state"] not in ("queued", "running"):
                return  # withdrawn or already served by another runner
            record = dict(
                record,
                state="running",
                started_s=time.time(),
                attempts=record["attempts"] + 1,
            )
            record = self.store.save_record(record)
        try:
            resolved = resolve_scenario(record["scenario"])
            config = resolved.config
            if not config.telemetry.enabled:
                # hash-excluded and result-neutral: every job gets a manifest
                config = config.with_(telemetry=TelemetryConfig(enabled=True))
            checkpoint_dir = resolved.checkpoint_dir or self.store.checkpoint_dir
            # stacked=resolved.stacked: an explicit stacked request fails
            # loudly here (service jobs always checkpoint + record telemetry,
            # which stacking forgoes) instead of being silently dropped
            result = run_experiment(
                config,
                processes=resolved.processes,
                shards=resolved.shards,
                checkpoint_dir=checkpoint_dir,
                resume=True,
                stacked=resolved.stacked,
            )
            result_path = self.store.save_result(job_id, result.to_dict())
            manifest_path = write_run_manifest(
                self.store.job_dir(job_id),
                record["name"],
                result.config,
                result.telemetry,
                run_extra={"checkpoint_dir": str(checkpoint_dir)},
            )
            record = dict(
                record,
                state="done",
                finished_s=time.time(),
                result_file=result_path.name,
                manifest_file=manifest_path.name,
            )
            outcome = "completed"
        except Exception as exc:  # a failed job must land in the store
            record = dict(
                record,
                state="failed",
                finished_s=time.time(),
                error=f"{type(exc).__name__}: {exc}",
            )
            outcome = "failed"
        with self._lock:
            self.store.save_record(record)
            self.counters[outcome] += 1

    # -- worker thread --------------------------------------------------------

    def start(self) -> None:
        """Run the execution loop on a daemon worker thread."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-job-runner", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            if (job_id := self._pop()) is not None:
                self._execute(job_id)
                continue
            self._wake.wait(timeout=0.1)
            self._wake.clear()

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the worker thread (lets an in-flight job finish)."""
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

"""Content-addressed job/result store for the service layer.

Layout (everything under one root, safe to tar up or resume from)::

    <root>/jobs/<config_hash>/job.json              # validated job record
    <root>/jobs/<config_hash>/result.json           # canonical result payload
    <root>/jobs/<config_hash>/<name>_manifest.json  # telemetry run manifest
    <root>/jobs/<config_hash>/<name>_metrics.jsonl  # telemetry event stream
    <root>/checkpoints/...                          # shared CheckpointStore

The job id *is* the run's full telemetry-excluded ``config_hash``
(:func:`repro.telemetry.manifest.config_hash`): two submissions that
resolve to the same experiment share one directory, one execution, one
result — dedupe is a filesystem property, not a bookkeeping table.  Job
records are exact-key validated
(:func:`repro.utils.validation.validate_job_record`) at write *and* read
time, and written atomically so a crash can never leave a torn record.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Mapping

from repro.utils.validation import validate_job_record

__all__ = ["ResultStore"]


class ResultStore:
    """Durable job records + results, content-addressed by config hash."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        #: shared checkpoint store root — every job checkpoints here, keyed
        #: by the same config hash, so a restarted runner resumes mid-run
        self.checkpoint_dir = self.root / "checkpoints"
        #: (mtime_ns, size)-keyed record cache: ``load_record`` (and through
        #: it ``list_records``) re-parses and re-validates a job.json only
        #: when the file actually changed, so ``GET /jobs`` stops costing
        #: O(total jobs) disk reads per request; ``save_record`` refreshes
        #: the entry it wrote.  Out-of-band writers are still picked up via
        #: the stat key (atomic replace always moves mtime_ns/size).
        self._record_cache: dict[str, tuple[tuple[int, int], dict]] = {}
        #: same-keyed verdicts of "does this job's result.json parse" for
        #: the done-state reconciliation below, so reads of a healthy done
        #: job don't re-parse a potentially large result payload every time
        self._result_ok_cache: dict[str, tuple[tuple[int, int], bool]] = {}

    # -- paths ----------------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def record_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "job.json"

    def result_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "result.json"

    # -- records --------------------------------------------------------------

    @staticmethod
    def new_record(job_id: str, name: str, scenario: Mapping[str, Any]) -> dict:
        """A fresh queued record for a first-time submission."""
        return validate_job_record(
            {
                "job_version": 1,
                "job_id": job_id,
                "name": name,
                "state": "queued",
                "scenario": dict(scenario),
                "submitted_s": time.time(),
                "started_s": None,
                "finished_s": None,
                "attempts": 0,
                "error": None,
                "result_file": None,
                "manifest_file": None,
            }
        )

    def save_record(self, record: Mapping[str, Any]) -> dict:
        """Validate and atomically persist a job record."""
        record = validate_job_record(record)
        path = self.record_path(record["job_id"])
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        try:
            stat = path.stat()
            self._record_cache[record["job_id"]] = (
                (stat.st_mtime_ns, stat.st_size),
                dict(record),
            )
        except OSError:
            self._record_cache.pop(record["job_id"], None)
        return record

    def load_record(self, job_id: str) -> dict | None:
        """The validated record for a job, or ``None`` if unknown.

        A record that cannot be parsed or validated is treated as absent
        (the submission path will recreate it) rather than poisoning the
        store.  A ``done`` record whose ``result.json`` is missing or
        corrupt is *reconciled* to ``failed`` on read (see
        :meth:`_reconcile`) — the same "surface the damage, let resubmit
        requeue" posture, one level up.
        """
        path = self.record_path(job_id)
        try:
            stat = path.stat()
        except OSError:
            self._record_cache.pop(job_id, None)
            return None
        key = (stat.st_mtime_ns, stat.st_size)
        cached = self._record_cache.get(job_id)
        if cached is not None and cached[0] == key:
            record = dict(cached[1])
        else:
            try:
                payload = json.loads(path.read_text())
                record = validate_job_record(payload, name=str(path))
            except (OSError, json.JSONDecodeError, ValueError):
                self._record_cache.pop(job_id, None)
                return None
            self._record_cache[job_id] = (key, dict(record))
        return self._reconcile(record)

    def _reconcile(self, record: dict) -> dict:
        """Demote a ``done`` record with no loadable result to ``failed``.

        Previously such a job served ``result: null`` forever: the runner
        only requeues ``failed`` jobs, so a crash between the record write
        and a later loss/corruption of ``result.json`` was unrecoverable.
        Surfacing it as ``failed`` (with a distinct error) makes resubmit
        requeue it through the normal path.  The demotion is persisted so
        every reader agrees; ``save_record`` is atomic and the transition
        is idempotent, so concurrent readers race benignly.
        """
        if record["state"] != "done" or self._result_ok(record["job_id"]):
            return record
        return self.save_record(
            dict(
                record,
                state="failed",
                error="result file missing or corrupt for a done job",
            )
        )

    def _result_ok(self, job_id: str) -> bool:
        """Whether the job's result.json exists and parses (stat-cached)."""
        path = self.result_path(job_id)
        try:
            stat = path.stat()
        except OSError:
            self._result_ok_cache.pop(job_id, None)
            return False
        key = (stat.st_mtime_ns, stat.st_size)
        cached = self._result_ok_cache.get(job_id)
        if cached is not None and cached[0] == key:
            return cached[1]
        try:
            json.loads(path.read_text())
            ok = True
        except (OSError, json.JSONDecodeError):
            ok = False
        self._result_ok_cache[job_id] = (key, ok)
        return ok

    def list_records(self) -> list[dict]:
        """Every valid job record, oldest submission first."""
        if not self.jobs_dir.is_dir():
            return []
        records = [
            record
            for path in sorted(self.jobs_dir.iterdir())
            if (record := self.load_record(path.name)) is not None
        ]
        records.sort(key=lambda r: r["submitted_s"])
        return records

    # -- results & manifests --------------------------------------------------

    def save_result(self, job_id: str, payload: Mapping[str, Any]) -> Path:
        """Write the canonical result payload; returns the path.

        Canonical means compact, key-sorted JSON with the per-replication
        ``checkpoint``/``telemetry`` provenance stripped (both are
        ``compare=False`` metadata) — so a resumed run and an
        uninterrupted one store byte-identical results.
        """
        data = dict(payload)
        data.pop("telemetry", None)
        data["replications"] = [
            {
                k: v
                for k, v in rep.items()
                if k not in ("checkpoint", "telemetry")
            }
            for rep in data.get("replications", [])
        ]
        path = self.result_path(job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(data, sort_keys=True, separators=(",", ":")))
        os.replace(tmp, path)
        return path

    def load_result(self, job_id: str) -> dict | None:
        try:
            return json.loads(self.result_path(job_id).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def load_manifest(self, record: Mapping[str, Any]) -> dict | None:
        """The job's validated telemetry run manifest, when one exists."""
        from repro.utils.validation import validate_run_manifest

        manifest_file = record.get("manifest_file")
        if manifest_file is None:
            return None
        path = self.job_dir(record["job_id"]) / manifest_file
        try:
            return validate_run_manifest(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError, ValueError):
            return None

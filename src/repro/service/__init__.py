"""Simulation-as-a-service: content-addressed job store, runner, and API.

The service is three thin layers over the experiment core, sharing the
scenario DSL (:mod:`repro.scenarios`) with the CLI:

* :class:`~repro.service.store.ResultStore` — a durable, content-addressed
  store: every job is keyed by the full telemetry-excluded ``config_hash``
  of its resolved scenario, so identical submissions dedupe into one run
  and one stored result, and job records survive process restarts.
* :class:`~repro.service.runner.JobRunner` — the execution loop: jobs move
  queued → running → done/failed; each run writes a canonical result
  payload plus a schema-validated telemetry run manifest (the status
  payload — there is no second reporting path), checkpoints into a shared
  store, and resumes from intact checkpoints after a crash bit-identically.
* :class:`~repro.service.endpoints.Service` — the framework-neutral HTTP
  surface (submit/status/result/stream/scenarios), wrapped either by the
  FastAPI app (``create_app``, OpenAPI docs at ``/docs``) when fastapi is
  installed, or by a stdlib ``http.server`` fallback — ``repro serve``
  picks whichever is available.
"""

from repro.service.endpoints import Service
from repro.service.runner import JobRunner
from repro.service.store import ResultStore

__all__ = ["ResultStore", "JobRunner", "Service"]

"""Framework-neutral service endpoints.

Every endpoint is a plain method returning ``(status_code, payload)`` —
the FastAPI app and the stdlib fallback server in
:mod:`repro.service.app` are interchangeable skins over this one class,
so the HTTP surface behaves identically whichever backend ``repro serve``
picks.

The status payload for a finished job embeds its schema-validated
telemetry run manifest (written by
:func:`repro.telemetry.manifest.write_run_manifest` during execution):
job reporting *is* the telemetry layer, not a second bookkeeping path.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.service.runner import JobRunner

__all__ = ["Service"]

Response = tuple[int, dict]


class Service:
    """The submit/status/result/stream surface over a :class:`JobRunner`."""

    def __init__(
        self,
        runner: JobRunner,
        scenarios_dir: str | Path | None = None,
    ):
        self.runner = runner
        #: committed scenario library served by ``GET /scenarios`` and
        #: accepted in submissions as ``{"library": "<file stem>"}``
        self.scenarios_dir = (
            Path(scenarios_dir) if scenarios_dir is not None else None
        )

    # -- helpers --------------------------------------------------------------

    def _status_payload(self, record: Mapping[str, Any]) -> dict:
        payload = dict(record)
        manifest = self.runner.store.load_manifest(record)
        if manifest is not None:
            payload["manifest"] = manifest
        return payload

    def _library_payload(self, name: str) -> dict:
        from repro.scenarios import list_scenarios, load_scenario

        if self.scenarios_dir is None:
            raise ValueError("this service has no scenario library configured")
        for path in list_scenarios(self.scenarios_dir):
            if path.stem == name:
                return load_scenario(path)
        raise ValueError(f"unknown library scenario {name!r}")

    # -- endpoints ------------------------------------------------------------

    def healthz(self) -> Response:
        return 200, {"status": "ok", "counters": dict(self.runner.counters)}

    def list_scenarios(self) -> Response:
        if self.scenarios_dir is None:
            return 200, {"scenarios": []}
        from repro.scenarios import list_scenarios, load_scenario

        entries = []
        for path in list_scenarios(self.scenarios_dir):
            try:
                payload = load_scenario(path)
            except ValueError:
                continue  # the schema gate owns rejecting bad library files
            entries.append(
                {
                    "library": path.stem,
                    "name": payload["name"],
                    "case": payload["case"],
                    "scale": payload["scale"],
                    "description": payload["description"],
                }
            )
        return 200, {"scenarios": entries}

    def list_jobs(self) -> Response:
        return 200, {"jobs": self.runner.store.list_records()}

    def submit(self, body: Any) -> Response:
        """``POST /jobs``: a full scenario payload, or ``{"library": name}``.

        201 when new work was enqueued, 200 for a dedupe hit — either way
        the body is the job record (its ``job_id`` is the config hash).
        """
        if not isinstance(body, Mapping):
            return 400, {"error": "submission body must be a JSON object"}
        try:
            if set(body) == {"library"}:
                payload: Mapping[str, Any] = self._library_payload(
                    str(body["library"])
                )
            else:
                payload = body
            record, created = self.runner.submit(payload)
        except ValueError as exc:
            return 400, {"error": str(exc)}
        return (201 if created else 200), dict(record)

    def status(self, job_id: str) -> Response:
        """``GET /jobs/{id}``: the record, plus the run manifest when done."""
        record = self.runner.store.load_record(job_id)
        if record is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        return 200, self._status_payload(record)

    def result(self, job_id: str) -> Response:
        """``GET /jobs/{id}/result``: the canonical result payload."""
        record = self.runner.store.load_record(job_id)
        if record is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        if record["state"] != "done":
            return 409, {
                "error": f"job is {record['state']}, result not available"
            }
        result = self.runner.store.load_result(job_id)
        if result is None:
            return 500, {"error": "result file missing or unreadable"}
        return 200, result

    def stream(
        self,
        job_id: str,
        poll_s: float = 0.2,
        timeout_s: float = 600.0,
    ) -> Iterator[dict]:
        """``GET /jobs/{id}/stream``: status snapshots until terminal.

        Yields the status payload whenever the state changes (and once
        immediately), ending after a ``done``/``failed`` snapshot or when
        ``timeout_s`` expires — ndjson framing is the HTTP layer's job.
        """
        deadline = time.monotonic() + timeout_s
        last_state = None
        while time.monotonic() < deadline:
            record = self.runner.store.load_record(job_id)
            if record is None:
                yield {"error": f"unknown job {job_id!r}"}
                return
            if record["state"] != last_state:
                last_state = record["state"]
                yield self._status_payload(record)
                if last_state in ("done", "failed"):
                    return
            time.sleep(poll_s)
        yield {"error": f"stream timed out after {timeout_s}s"}

"""HTTP skins over :class:`~repro.service.endpoints.Service`.

Two interchangeable backends serve the same endpoints:

* **fastapi** — ``create_app`` builds a FastAPI application with OpenAPI
  docs at ``/docs``; requires the ``service`` extra (``pip install
  .[service]``) and is what CI's service job exercises.
* **stdlib** — ``build_httpd`` wraps the service in a
  ``http.server.ThreadingHTTPServer`` with zero dependencies, so
  ``repro serve`` works in any environment the simulator itself runs in.

``repro serve`` picks fastapi when importable and falls back to stdlib
(``--backend`` pins one explicitly).  Neither backend holds state: jobs,
results, and manifests live in the runner's content-addressed store, so a
restarted server recovers mid-flight jobs via checkpoints.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro._version import __version__
from repro.service.endpoints import Service
from repro.service.runner import JobRunner

__all__ = [
    "fastapi_available",
    "create_app",
    "build_httpd",
    "build_service",
    "run_service",
]


def fastapi_available() -> bool:
    """Whether the fastapi backend can be imported in this environment."""
    try:
        import fastapi  # noqa: F401
        import uvicorn  # noqa: F401
    except ImportError:
        return False
    return True


def create_app(service: Service):
    """The FastAPI application for a service (requires the service extra)."""
    try:
        from fastapi import FastAPI, Request
        from fastapi.responses import JSONResponse, StreamingResponse
    except ImportError as exc:  # pragma: no cover - exercised without extra
        raise RuntimeError(
            "fastapi is not installed; install the service extra"
            " (pip install '.[service]') or use --backend stdlib"
        ) from exc

    app = FastAPI(
        title="repro simulation service",
        version=__version__,
        description=(
            "Submit declarative scenarios against the IPPS 2007 ad-hoc"
            " network reproduction. Jobs are content-addressed by the"
            " telemetry-excluded config hash: identical submissions dedupe"
            " into one run."
        ),
    )

    def _json(response: tuple[int, dict]) -> JSONResponse:
        status, payload = response
        return JSONResponse(payload, status_code=status)

    @app.get("/healthz")
    def healthz() -> JSONResponse:
        return _json(service.healthz())

    @app.get("/scenarios")
    def scenarios() -> JSONResponse:
        return _json(service.list_scenarios())

    @app.get("/jobs")
    def jobs() -> JSONResponse:
        return _json(service.list_jobs())

    @app.post("/jobs")
    async def submit(request: Request) -> JSONResponse:
        try:
            body = await request.json()
        except Exception:
            return JSONResponse(
                {"error": "submission body must be valid JSON"}, status_code=400
            )
        return _json(service.submit(body))

    @app.get("/jobs/{job_id}")
    def status(job_id: str) -> JSONResponse:
        return _json(service.status(job_id))

    @app.get("/jobs/{job_id}/result")
    def result(job_id: str) -> JSONResponse:
        return _json(service.result(job_id))

    @app.get("/jobs/{job_id}/stream")
    def stream(job_id: str) -> StreamingResponse:
        lines = (
            json.dumps(snapshot) + "\n" for snapshot in service.stream(job_id)
        )
        return StreamingResponse(lines, media_type="application/x-ndjson")

    return app


class _ServiceHandler(BaseHTTPRequestHandler):
    """Dependency-free request handler over a :class:`Service`."""

    service: Service  # bound by build_httpd

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # stay quiet; observability lives in the telemetry layer

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        parts = path.strip("/").split("/")
        if path == "/healthz":
            self._send_json(*self.service.healthz())
        elif path == "/scenarios":
            self._send_json(*self.service.list_scenarios())
        elif path == "/jobs":
            self._send_json(*self.service.list_jobs())
        elif len(parts) == 2 and parts[0] == "jobs":
            self._send_json(*self.service.status(parts[1]))
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            self._send_json(*self.service.result(parts[1]))
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "stream":
            self._stream(parts[1])
        else:
            self._send_json(404, {"error": f"no such endpoint {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/jobs":
            self._send_json(404, {"error": f"no such endpoint {path!r}"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        try:
            body = json.loads(self.rfile.read(length) or b"")
        except json.JSONDecodeError:
            self._send_json(400, {"error": "submission body must be valid JSON"})
            return
        self._send_json(*self.service.submit(body))

    def _stream(self, job_id: str) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        try:
            for snapshot in self.service.stream(job_id):
                self.wfile.write(json.dumps(snapshot).encode() + b"\n")
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream


def build_httpd(
    service: Service, host: str = "127.0.0.1", port: int = 8000
) -> ThreadingHTTPServer:
    """A ready-to-serve stdlib HTTP server bound to ``service``."""
    handler = type(
        "BoundServiceHandler", (_ServiceHandler,), {"service": service}
    )
    return ThreadingHTTPServer((host, port), handler)


def build_service(
    root: str | Path,
    scenarios_dir: str | Path | None = None,
) -> Service:
    """A recovered, running service over the store at ``root``."""
    runner = JobRunner(root)
    runner.recover()
    runner.start()
    return Service(runner, scenarios_dir=scenarios_dir)


def run_service(
    root: str | Path,
    host: str = "127.0.0.1",
    port: int = 8000,
    backend: str = "auto",
    scenarios_dir: str | Path | None = None,
) -> None:
    """Serve until interrupted (the blocking core of ``repro serve``)."""
    if backend not in ("auto", "fastapi", "stdlib"):
        raise ValueError(f"unknown backend {backend!r}")
    if backend == "auto":
        backend = "fastapi" if fastapi_available() else "stdlib"
    service = build_service(root, scenarios_dir=scenarios_dir)
    try:
        if backend == "fastapi":
            import uvicorn

            uvicorn.run(
                create_app(service), host=host, port=port, log_level="warning"
            )
        else:
            httpd = build_httpd(service, host=host, port=port)
            try:
                httpd.serve_forever()
            finally:
                httpd.server_close()
    finally:
        service.runner.stop()

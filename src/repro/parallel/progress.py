"""Minimal progress reporting for long experiment sweeps."""

from __future__ import annotations

import sys
import time
from typing import TextIO

__all__ = ["ProgressPrinter"]


class ProgressPrinter:
    """Prints ``label: done/total (elapsed)`` lines as tasks complete.

    Usable directly as the ``progress`` callback of
    :func:`repro.parallel.pool.parallel_map`.
    """

    def __init__(self, label: str, stream: TextIO | None = None):
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self._start = time.monotonic()

    def __call__(self, done: int, total: int) -> None:
        elapsed = time.monotonic() - self._start
        self.stream.write(
            f"{self.label}: {done}/{total} replications ({elapsed:.1f}s elapsed)\n"
        )
        self.stream.flush()

    def finish(self) -> float:
        """Return total elapsed seconds (for logging)."""
        return time.monotonic() - self._start

"""Parallel execution of independent replications.

The paper averages 60 independent evolutionary runs — an embarrassingly
parallel workload.  :func:`repro.parallel.pool.parallel_map` distributes any
indexed task set over a process pool; results are returned in index order and
are bit-identical to a serial run because every task derives its own random
stream from ``(master_seed, index)``.
"""

from repro.parallel.pool import parallel_map
from repro.parallel.progress import ProgressPrinter
from repro.parallel.shard import Shard, plan_shards, sharded_map

__all__ = [
    "parallel_map",
    "ProgressPrinter",
    "Shard",
    "plan_shards",
    "sharded_map",
]

"""Order-preserving process-pool map for independent simulation tasks.

Design notes (per the HPC guides: parallelise at the outermost independent
level, keep workers coarse-grained):

* one task = one full replication (minutes of work), so inter-process
  overhead is negligible;
* tasks are submitted to a ``ProcessPoolExecutor`` and collected
  as-completed, but returned **in index order** — determinism does not depend
  on scheduling;
* ``processes=1`` (or a single task) short-circuits to a plain loop in the
  current process, which keeps tests fast and stack traces readable;
* a failing task cancels the remaining futures and re-raises the original
  exception;
* a *dying worker* (OOM kill, segfault, SIGKILL) breaks the whole executor —
  with ``max_redispatch > 0`` the pool is rebuilt and the not-yet-completed
  tasks are resubmitted (results already collected are kept), up to that
  many recoveries, before the ``BrokenProcessPool`` is allowed to
  propagate.  Task results must be deterministic for this to be safe, which
  is the repo-wide contract (a replication is a pure function of
  ``(config, index)``).
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from time import perf_counter
from typing import Callable, Sequence, TypeVar

from repro.telemetry.runtime import get_telemetry

__all__ = ["parallel_map", "default_processes"]

T = TypeVar("T")
R = TypeVar("R")


def default_processes(n_tasks: int) -> int:
    """A sensible worker count: min(#tasks, #cores), at least 1."""
    return max(1, min(n_tasks, os.cpu_count() or 1))


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    processes: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    max_redispatch: int = 0,
) -> list[R]:
    """Apply ``fn`` to every item, optionally across processes.

    Parameters
    ----------
    fn:
        A picklable callable (module-level function or functools.partial of
        one).
    items:
        The task inputs; each must be picklable.
    processes:
        Worker processes; ``None`` chooses :func:`default_processes`,
        ``1`` forces serial execution in-process.
    progress:
        Optional callback ``(done, total)`` invoked after each completion.
    max_redispatch:
        How many times a run may survive a *worker death* (broken executor)
        by rebuilding the pool and resubmitting the unfinished tasks.  ``0``
        (the default) propagates the ``BrokenProcessPool``.  Ordinary task
        exceptions always propagate regardless.

    Returns results in the same order as ``items``.
    """
    items = list(items)
    total = len(items)
    if total == 0:
        return []
    if processes is None:
        processes = default_processes(total)
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    if max_redispatch < 0:
        raise ValueError(f"max_redispatch must be >= 0, got {max_redispatch}")

    # telemetry: capture the recorder at entry, so tasks that open their own
    # nested sessions (the serial path below) cannot steal the pool's records
    tel = get_telemetry()
    if not tel.enabled:
        tel = None
    t_start = perf_counter() if tel is not None else 0.0
    task_s: list[float] = []

    if processes == 1 or total == 1:
        results: list[R] = []
        for i, item in enumerate(items):
            if tel is None:
                results.append(fn(item))
            else:
                t0 = perf_counter()
                results.append(fn(item))
                task_s.append(perf_counter() - t0)
            if progress is not None:
                progress(i + 1, total)
        if tel is not None:
            _record_pool_metrics(tel, task_s, 1, perf_counter() - t_start)
        return results

    out: list[R | None] = [None] * total
    completed = [False] * total
    done_count = 0
    redispatches_left = max_redispatch
    while done_count < total:
        try:
            with ProcessPoolExecutor(max_workers=processes) as pool:
                if tel is None:
                    future_to_index = {
                        pool.submit(fn, items[i]): i
                        for i in range(total)
                        if not completed[i]
                    }
                else:
                    # the wrapper times the task inside the worker, so
                    # task_s holds true compute durations (queueing behind
                    # busy workers excluded)
                    future_to_index = {
                        pool.submit(_timed_call, fn, items[i]): i
                        for i in range(total)
                        if not completed[i]
                    }
                pending = set(future_to_index)
                while pending:
                    done, pending = wait(pending, return_when=FIRST_EXCEPTION)
                    for future in done:
                        exc = future.exception()
                        if isinstance(exc, BrokenProcessPool):
                            raise exc  # worker death: maybe re-dispatch
                        if exc is not None:
                            for f in pending:
                                f.cancel()
                            raise exc
                        if tel is None:
                            out[future_to_index[future]] = future.result()
                        else:
                            seconds, result = future.result()
                            task_s.append(seconds)
                            out[future_to_index[future]] = result
                        completed[future_to_index[future]] = True
                        done_count += 1
                        if progress is not None:
                            progress(done_count, total)
        except BrokenProcessPool:
            # a worker died mid-run and took the executor with it; results
            # already collected are kept, the rest are resubmitted on a
            # fresh pool (tasks are deterministic, so re-running is safe)
            if redispatches_left <= 0:
                raise
            redispatches_left -= 1
            if tel is not None:
                tel.count("parallel.redispatched", total - done_count)
                tel.count("parallel.pool_rebuilds")
    if tel is not None:
        _record_pool_metrics(tel, task_s, processes, perf_counter() - t_start)
    return out  # type: ignore[return-value]


def _timed_call(fn: Callable[[T], R], item: T) -> tuple[float, R]:
    """Run one task in the worker, returning (duration, result)."""
    t0 = perf_counter()
    result = fn(item)
    return perf_counter() - t0, result


def _record_pool_metrics(
    tel, task_s: list[float], workers: int, span_s: float
) -> None:
    """Fold one map's task timings into the telemetry registry."""
    for seconds in task_s:
        tel.observe("parallel.task_s", seconds)
    tel.count("parallel.maps")
    tel.count("parallel.tasks", len(task_s))
    tel.set_gauge("parallel.workers", workers)
    tel.set_gauge("parallel.span_s", span_s)
    if task_s and span_s > 0:
        busy = sum(task_s)
        tel.set_gauge("parallel.utilization", busy / (workers * span_s))
        low, high = min(task_s), max(task_s)
        tel.set_gauge(
            "parallel.straggler_spread", high / low if low > 0 else 0.0
        )

"""Order-preserving process-pool map for independent simulation tasks.

Design notes (per the HPC guides: parallelise at the outermost independent
level, keep workers coarse-grained):

* one task = one full replication (minutes of work), so inter-process
  overhead is negligible;
* tasks are submitted to a ``ProcessPoolExecutor`` and collected
  as-completed, but returned **in index order** — determinism does not depend
  on scheduling;
* ``processes=1`` (or a single task) short-circuits to a plain loop in the
  current process, which keeps tests fast and stack traces readable;
* a failing task cancels the remaining futures and re-raises the original
  exception.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from typing import Callable, Sequence, TypeVar

__all__ = ["parallel_map", "default_processes"]

T = TypeVar("T")
R = TypeVar("R")


def default_processes(n_tasks: int) -> int:
    """A sensible worker count: min(#tasks, #cores), at least 1."""
    return max(1, min(n_tasks, os.cpu_count() or 1))


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    processes: int | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, optionally across processes.

    Parameters
    ----------
    fn:
        A picklable callable (module-level function or functools.partial of
        one).
    items:
        The task inputs; each must be picklable.
    processes:
        Worker processes; ``None`` chooses :func:`default_processes`,
        ``1`` forces serial execution in-process.
    progress:
        Optional callback ``(done, total)`` invoked after each completion.

    Returns results in the same order as ``items``.
    """
    items = list(items)
    total = len(items)
    if total == 0:
        return []
    if processes is None:
        processes = default_processes(total)
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")

    if processes == 1 or total == 1:
        results: list[R] = []
        for i, item in enumerate(items):
            results.append(fn(item))
            if progress is not None:
                progress(i + 1, total)
        return results

    out: list[R | None] = [None] * total
    with ProcessPoolExecutor(max_workers=processes) as pool:
        future_to_index = {pool.submit(fn, item): i for i, item in enumerate(items)}
        pending = set(future_to_index)
        done_count = 0
        while pending:
            done, pending = wait(pending, return_when=FIRST_EXCEPTION)
            for future in done:
                exc = future.exception()
                if exc is not None:
                    for f in pending:
                        f.cancel()
                    raise exc
                out[future_to_index[future]] = future.result()
                done_count += 1
                if progress is not None:
                    progress(done_count, total)
    return out  # type: ignore[return-value]

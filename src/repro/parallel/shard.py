"""Deterministic shard scheduler with work-stealing re-dispatch.

A *shard* is a contiguous slice of an indexed task set that one worker
processes as a unit.  Sharding exists for the replication sets and parameter
sweeps of :mod:`repro.experiments`: grouping replications amortises per-task
dispatch overhead, while determinism is preserved because every task derives
its random stream from ``(master_seed, task_index)`` — the *shard* never
enters the seed tree (see :mod:`repro.utils.rng`).  The same task set
therefore produces bit-identical results under any shard count, pinned by
``tests/test_parallel_shard.py`` and the CI shard-invariance gate.

Fault tolerance, in two layers:

* **dead workers** — a broken executor (OOM kill, segfault) is rebuilt and
  every shard without a result is resubmitted, up to ``max_redispatch``
  times;
* **stragglers** — when completed-shard durations show a shard running more
  than ``straggler_factor`` times the median while workers sit idle, a
  speculative duplicate is submitted (the same idea the pool's
  ``parallel.straggler_spread`` gauge quantifies after the fact); the first
  finisher wins and the loser is discarded, which is safe because shard
  functions are deterministic.

Both events land in telemetry (``parallel.redispatched``,
``parallel.stolen``, ``parallel.pool_rebuilds``) next to the existing pool
metrics, so re-dispatch decisions and their frequency are observable per
run.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from statistics import median
from time import perf_counter
from typing import Callable, Sequence, TypeVar

from repro.parallel.pool import _record_pool_metrics, _timed_call, default_processes
from repro.telemetry.runtime import get_telemetry

__all__ = ["Shard", "plan_shards", "sharded_map"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class Shard:
    """One deterministic slice of an indexed task set."""

    index: int
    task_indices: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.task_indices)


def plan_shards(n_tasks: int, n_shards: int) -> list[Shard]:
    """Partition ``range(n_tasks)`` into at most ``n_shards`` contiguous
    shards.

    The plan is a pure function of its arguments: sizes differ by at most
    one (the first ``n_tasks % n_shards`` shards are one task larger) and
    indices stay in ascending order, so shard 0 of a 4-shard plan always
    holds the same tasks on every host.  Empty shards are never produced —
    asking for more shards than tasks yields one singleton shard per task.
    """
    if n_tasks < 0:
        raise ValueError(f"n_tasks must be >= 0, got {n_tasks}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    n_shards = min(n_shards, n_tasks)
    shards: list[Shard] = []
    start = 0
    for k in range(n_shards):
        size = n_tasks // n_shards + (1 if k < n_tasks % n_shards else 0)
        shards.append(Shard(index=k, task_indices=tuple(range(start, start + size))))
        start += size
    assert start == n_tasks
    return shards


def sharded_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    processes: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    max_redispatch: int = 1,
    straggler_factor: float = 4.0,
    poll_s: float = 0.05,
) -> list[R]:
    """Apply deterministic ``fn`` to every item with work-stealing recovery.

    Like :func:`repro.parallel.pool.parallel_map` but built for shard-sized
    tasks: on top of in-order results and dead-executor re-dispatch it adds
    speculative duplicates for stragglers (see module docstring).  ``fn``
    **must** be deterministic — a speculative duplicate's result is used
    interchangeably with the original's.

    ``straggler_factor`` is the multiple of the median completed-shard
    duration a running shard must exceed (while a worker is idle) before a
    duplicate is submitted; ``None`` disables speculation.  ``poll_s`` is
    the scheduler's wake-up interval for straggler checks.
    """
    items = list(items)
    total = len(items)
    if total == 0:
        return []
    if processes is None:
        processes = default_processes(total)
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    if max_redispatch < 0:
        raise ValueError(f"max_redispatch must be >= 0, got {max_redispatch}")
    if straggler_factor is not None and straggler_factor <= 1.0:
        raise ValueError(
            f"straggler_factor must be > 1 (or None), got {straggler_factor}"
        )

    tel = get_telemetry()
    if not tel.enabled:
        tel = None
    t_start = perf_counter() if tel is not None else 0.0
    task_s: list[float] = []

    if processes == 1 or total == 1:
        out_serial: list[R] = []
        for i, item in enumerate(items):
            t0 = perf_counter()
            out_serial.append(fn(item))
            task_s.append(perf_counter() - t0)
            if progress is not None:
                progress(i + 1, total)
        if tel is not None:
            _record_pool_metrics(tel, task_s, 1, perf_counter() - t_start)
        return out_serial

    out: list[R | None] = [None] * total
    completed = [False] * total
    done_count = 0
    redispatches_left = max_redispatch
    stolen = 0
    durations: list[float] = []

    while done_count < total:
        pool = ProcessPoolExecutor(max_workers=processes)
        future_to_index: dict[Future, int] = {}
        submitted_at: dict[Future, float] = {}
        in_flight: dict[int, list[Future]] = {}

        def submit(i: int) -> None:
            future = pool.submit(_timed_call, fn, items[i])
            future_to_index[future] = i
            submitted_at[future] = perf_counter()
            in_flight.setdefault(i, []).append(future)

        try:
            for i in range(total):
                if not completed[i]:
                    submit(i)
            while done_count < total:
                done, _pending = wait(
                    set(future_to_index),
                    timeout=poll_s,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    i = future_to_index.pop(future)
                    submitted_at.pop(future, None)
                    in_flight[i] = [f for f in in_flight[i] if f is not future]
                    exc = future.exception()
                    if isinstance(exc, BrokenProcessPool):
                        raise exc  # worker death: maybe re-dispatch
                    if completed[i]:
                        continue  # the speculative sibling already won
                    if exc is not None:
                        for f in future_to_index:
                            f.cancel()
                        raise exc
                    seconds, result = future.result()
                    task_s.append(seconds)
                    durations.append(seconds)
                    out[i] = result
                    completed[i] = True
                    done_count += 1
                    if progress is not None:
                        progress(done_count, total)
                if (
                    straggler_factor is not None
                    and durations
                    and len(future_to_index) < processes
                ):
                    # idle capacity while some shards are still running:
                    # duplicate any shard well past the median duration
                    # (only singly-in-flight ones — one backup per shard
                    # per executor generation)
                    cutoff = straggler_factor * median(durations)
                    now = perf_counter()
                    budget = processes - len(future_to_index)
                    for i in range(total):
                        if budget <= 0:
                            break
                        flights = in_flight.get(i, [])
                        if completed[i] or len(flights) != 1:
                            continue
                        if now - submitted_at.get(flights[0], now) > cutoff:
                            submit(i)
                            stolen += 1
                            budget -= 1
                            if tel is not None:
                                tel.count("parallel.stolen")
        except BrokenProcessPool:
            # results already collected survive; everything else gets a
            # fresh executor (deterministic fn makes re-running safe)
            if redispatches_left <= 0:
                raise
            redispatches_left -= 1
            if tel is not None:
                tel.count("parallel.redispatched", total - done_count)
                tel.count("parallel.pool_rebuilds")
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    if tel is not None:
        _record_pool_metrics(tel, task_s, processes, perf_counter() - t_start)
    return out  # type: ignore[return-value]

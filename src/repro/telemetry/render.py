"""Human-readable rendering of run manifests (``repro stats``)."""

from __future__ import annotations

__all__ = ["render_manifest"]


def _fmt(value: float) -> str:
    """Compact number formatting: integers plain, floats to 6 sig figs."""
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return f"{int(value):,}"
    return f"{value:.6g}"


def _section(title: str) -> list[str]:
    return ["", title, "-" * len(title)]


def render_manifest(manifest: dict) -> str:
    """Render a validated run manifest as an aligned plain-text report."""
    run = manifest.get("run", {})
    lines = [
        f"run manifest: {manifest.get('name', '?')}",
        f"  git sha      {manifest.get('git_sha', '?')}",
        f"  config hash  {str(manifest.get('config_hash', '?'))[:16]}",
        f"  wall time    {_fmt(manifest.get('wall_s', 0.0))} s",
    ]
    for key in sorted(run):
        lines.append(f"  {key:<12} {run[key]}")
    if manifest.get("events_file"):
        lines.append(f"  events       {manifest['events_file']}")

    metrics = manifest.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        lines += _section("counters")
        width = max(len(k) for k in counters)
        for name_, value in sorted(counters.items()):
            lines.append(f"  {name_:<{width}}  {_fmt(value)}")

    gauges = metrics.get("gauges", {})
    if gauges:
        lines += _section("gauges")
        width = max(len(k) for k in gauges)
        for name_, value in sorted(gauges.items()):
            lines.append(f"  {name_:<{width}}  {_fmt(value)}")

    timers = metrics.get("timers", {})
    if timers:
        lines += _section("timers")
        width = max(len(k) for k in timers)
        header = f"  {'name':<{width}}  {'count':>8}  {'total s':>10}  {'mean s':>10}"
        lines.append(header)
        for name_, snap in sorted(timers.items()):
            count = snap.get("count", 0)
            total = snap.get("total_s", 0.0)
            mean = total / count if count else 0.0
            lines.append(
                f"  {name_:<{width}}  {count:>8,}  {total:>10.4f}  {mean:>10.6f}"
            )

    histograms = metrics.get("histograms", {})
    if histograms:
        lines += _section("histograms")
        for name_, snap in sorted(histograms.items()):
            count = snap.get("count", 0)
            total = snap.get("sum", 0.0)
            mean = total / count if count else 0.0
            lines.append(
                f"  {name_}: count={_fmt(count)} mean={mean:.4g}"
                f" min={_fmt(snap.get('min', 0.0))}"
                f" max={_fmt(snap.get('max', 0.0))}"
            )
            buckets = [
                (key, n)
                for key, n in snap.items()
                if key.startswith("le_") or key == "overflow"
            ]
            populated = [(key, n) for key, n in buckets if n]
            if populated:
                lines.append(
                    "    "
                    + "  ".join(f"{key}:{_fmt(n)}" for key, n in populated)
                )
    return "\n".join(lines)

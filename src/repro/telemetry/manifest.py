"""Schema-validated run manifests: what a telemetry-enabled run leaves behind.

A run emits two files next to each other:

* ``<name>_manifest.json`` — the aggregated view: provenance (config hash,
  git sha, engine/oracle/policy), total wall seconds, and the full merged
  metric registry as a numeric tree.  Validated at write *and* read time by
  :func:`repro.utils.validation.validate_run_manifest` — the same exact-key
  contract the bench reports live under.
* ``<name>_metrics.jsonl`` — the event stream: one JSON object per line
  (span events per replication, then one ``metric`` line per aggregated
  counter/gauge/timer/histogram), for consumers that want the raw dump.

``repro stats <manifest.json>`` renders the manifest human-readably
(:mod:`repro.telemetry.render`).
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from pathlib import Path

from repro.utils.validation import validate_run_manifest

__all__ = ["config_hash", "git_sha", "build_run_manifest", "write_run_manifest"]

#: Manifest schema version (bump on any key-set change).
MANIFEST_VERSION = 1


def git_sha() -> str:
    """Short commit id for provenance (``unknown`` outside a checkout)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def config_hash(config_summary: dict) -> str:
    """Deterministic digest of an ``ExperimentConfig.describe()`` summary.

    Telemetry settings are excluded: they never change simulation results,
    so two runs differing only in instrumentation hash identically.
    """
    summary = {k: v for k, v in config_summary.items() if k != "telemetry"}
    blob = json.dumps(summary, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _run_summary(config_summary: dict) -> dict:
    """The scalar provenance block (engine/oracle/policy/scale)."""
    sim = config_summary.get("sim", {})
    mobility = sim.get("mobility", {})
    # the summary mirrors MobilityConfig.to_dict(), where model "none"
    # means the paper's random oracle (MobilityConfig.enabled)
    mobile = mobility.get("model", "none") != "none"
    return {
        "case": config_summary.get("case", "unknown"),
        "engine": config_summary.get("engine", "unknown"),
        "oracle": (
            f"mobile:{mobility.get('model', 'unknown')}" if mobile else "random"
        ),
        "route_cache": (
            str(mobility.get("route_cache", "exact")) if mobile else "none"
        ),
        "drift_budget": int(mobility.get("drift_budget", 0)) if mobile else 0,
        "generations": int(config_summary.get("generations", 0)),
        "rounds": int(sim.get("rounds", 0)),
        "replications": int(config_summary.get("replications", 0)),
        "seed": int(config_summary.get("seed", 0)),
    }


def build_run_manifest(
    name: str,
    config_summary: dict,
    metrics: dict,
    wall_s: float,
    events_file: str | None = None,
    run_extra: dict | None = None,
) -> dict:
    """Assemble (and validate) a run manifest payload.

    ``run_extra`` merges additional scalar provenance into the ``run``
    block — e.g. the resolved checkpoint store path, so a ``--resume``
    invocation can be traced to the store it actually read.
    """
    run = _run_summary(config_summary)
    if run_extra:
        run.update(run_extra)
    payload = {
        "manifest_version": MANIFEST_VERSION,
        "name": name,
        "git_sha": git_sha(),
        "config_hash": config_hash(config_summary),
        "run": run,
        "wall_s": round(float(wall_s), 6),
        "metrics": metrics,
        "events_file": events_file,
    }
    return validate_run_manifest(payload, name=f"{name} manifest")


def write_run_manifest(
    out_dir: str | Path,
    name: str,
    config_summary: dict,
    telemetry: dict,
    run_extra: dict | None = None,
) -> Path:
    """Write ``<name>_manifest.json`` + ``<name>_metrics.jsonl``; returns
    the manifest path.

    ``telemetry`` is the aggregated payload attached to an
    :class:`~repro.experiments.results.ExperimentResult` by a
    telemetry-enabled run: ``{"metrics": <registry snapshot>,
    "events": [...], "wall_s": ...}``.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    events = telemetry.get("events", [])
    metrics = telemetry.get("metrics", {})
    events_name = f"{name}_metrics.jsonl"
    lines = [json.dumps(event) for event in events]
    for kind in ("counters", "gauges", "timers", "histograms"):
        for metric_name, value in metrics.get(kind, {}).items():
            lines.append(
                json.dumps(
                    {"event": "metric", "kind": kind[:-1],
                     "name": metric_name, "value": value}
                )
            )
    (out_dir / events_name).write_text("\n".join(lines) + "\n")
    payload = build_run_manifest(
        name,
        config_summary,
        metrics,
        wall_s=telemetry.get("wall_s", 0.0),
        events_file=events_name,
        run_extra=run_extra,
    )
    path = out_dir / f"{name}_manifest.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path

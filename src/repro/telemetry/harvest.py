"""Fold the layers' native cumulative counters into a telemetry registry.

The oracle stack keeps tiny unconditional plain-int counters on its own
objects (``provider.cache_hits``, ``topology.boost_count``, ...): they
predate telemetry, cost nothing measurable, and keep the hot loops free of
telemetry calls.  Harvesting copies them into the registry **once per
replication**, after the run — so enabling telemetry changes nothing about
how the layers execute.

All reads are ``getattr``-defensive: every oracle flavour (random, static
topology, mobile) exposes a different subset, and scripted test oracles
expose none.  Harvested values land in *counters* (not gauges) so that
per-replication snapshots sum correctly when merged experiment-wide.
"""

from __future__ import annotations

__all__ = ["harvest_oracle"]

#: Bucket bounds for the drift-age histogram (ages are small epoch counts).
DRIFT_AGE_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def harvest_oracle(tel, oracle) -> None:
    """Copy an oracle stack's layer counters into the telemetry registry."""
    if oracle is None or not getattr(tel, "enabled", False):
        return
    provider = getattr(oracle, "provider", None)
    if provider is not None:
        _harvest_provider(tel, provider)
    topology = getattr(oracle, "topology", None)
    if topology is not None:
        _harvest_topology(tel, topology)
    step_s = getattr(oracle, "step_s", None)
    if step_s is not None:
        tel.count("mobility.step_s", float(step_s))
    cache = getattr(oracle, "_vector_cache", None)
    if cache is not None:
        _harvest_slot_cache(tel, cache)


def _harvest_provider(tel, provider) -> None:
    policy = getattr(provider, "policy", None)
    name = policy.name if policy is not None else "static"
    prefix = f"route.{name}"
    tel.count(f"{prefix}.cache_hits", provider.cache_hits)
    tel.count(f"{prefix}.cache_misses", provider.cache_misses)
    tel.count(f"{prefix}.route_computes", getattr(provider, "route_computes", 0))
    tel.count(f"{prefix}.empty_serves", getattr(provider, "empty_serves", 0))
    tel.count(f"{prefix}.search_s", float(provider.search_s))
    stale = getattr(provider, "stale_hits", None)
    if stale is not None:
        tel.count(f"{prefix}.stale_serves", stale)
        tel.count(f"{prefix}.revalidations", provider.revalidations)
    if policy is not None:
        tel.set_gauge("route.drift_budget", policy.budget)
    ages = getattr(provider, "drift_age_counts", None)
    if ages:
        for age, n in ages.items():
            tel.observe("route.drift_age", age, n, bounds=DRIFT_AGE_BUCKETS)


def _harvest_topology(tel, topology) -> None:
    epoch = getattr(topology, "epoch", None)
    if epoch is not None:
        tel.count("mobility.epoch_bumps", epoch)
    steps = getattr(topology, "steps", None)
    if steps is not None:
        tel.count("mobility.steps", steps)
    boosts = getattr(topology, "boost_count", None)
    if boosts is not None:
        tel.count("mobility.emergency_boosts", boosts)
    added = getattr(topology, "edges_added", None)
    if added is not None:
        tel.count("mobility.edges_added", added)
        tel.count("mobility.edges_removed", topology.edges_removed)
    _harvest_ksp(tel, topology)


def _harvest_ksp(tel, topology) -> None:
    """Route-search counters: live snapshot + counts retired on rebuild."""
    builds, queries, pruned = getattr(topology, "_ksp_retired", (0, 0, 0))
    search = getattr(topology, "_search", None)
    if search is not None:
        builds += getattr(search, "bfs_builds", 0)
        queries += getattr(search, "queries", 0)
        pruned += getattr(search, "deviations_pruned", 0)
    if builds or queries or pruned:
        tel.count("ksp.bfs_field_builds", builds)
        tel.count("ksp.queries", queries)
        tel.count("ksp.yen_deviations_pruned", pruned)


def _harvest_slot_cache(tel, cache) -> None:
    tel.count("paths.slot_resolves", getattr(cache, "resolves", 0))
    tel.count("paths.rejected_draws", getattr(cache, "rejects", 0))
    tel.count("paths.slot_invalidations", getattr(cache, "invalidations", 0))
    tel.set_gauge("paths.slot_count", len(cache.slots))

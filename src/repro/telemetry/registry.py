"""Process-local metrics registry: counters, gauges, histograms, timers.

Primitives are deliberately tiny (``__slots__``, plain attribute
arithmetic): they live on the hot side of the telemetry boundary and are
only ever touched when telemetry is enabled.  Every snapshot is a plain
string-keyed tree bottoming out in finite numbers, so the run-manifest
schema can reuse the bench-report numeric-tree validator
(:func:`repro.utils.validation._check_numeric_tree`).

Snapshots from different processes merge associatively
(:meth:`MetricsRegistry.merge`), which is how per-replication worker
registries fold into one experiment-wide view.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (geometric, covers sub-ms timings
#: through minutes as well as small integer counts like drift ages).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def add(self, n: float = 1) -> None:
        self.value += n

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A last-write-wins sampled value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Streaming summary (count/sum/min/max) plus cumulative-style buckets.

    ``bounds`` are inclusive upper bounds; one overflow bucket catches the
    rest.  Two histograms with the same bounds merge exactly.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float, n: int = 1) -> None:
        value = float(value)
        self.count += n
        self.total += value * n
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += n
                return
        self.bucket_counts[-1] += n

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        out: dict[str, float] = {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }
        for bound, n in zip(self.bounds, self.bucket_counts):
            out[f"le_{bound:g}"] = n
        out["overflow"] = self.bucket_counts[-1]
        return out

    def merge_snapshot(self, snap: Mapping) -> None:
        count = int(snap.get("count", 0))
        if count == 0:
            return
        self.count += count
        self.total += float(snap.get("sum", 0.0))
        self.min = min(self.min, float(snap.get("min", math.inf)))
        self.max = max(self.max, float(snap.get("max", -math.inf)))
        for i, bound in enumerate(self.bounds):
            self.bucket_counts[i] += int(snap.get(f"le_{bound:g}", 0))
        self.bucket_counts[-1] += int(snap.get("overflow", 0))


class Timer:
    """Aggregated monotonic-clock durations (count/total/min/max seconds)."""

    __slots__ = ("count", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = math.inf
        self.max_s = -math.inf

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @contextmanager
    def time(self) -> Iterator[None]:
        t0 = perf_counter()
        try:
            yield
        finally:
            self.add(perf_counter() - t0)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s if self.count else 0.0,
        }

    def merge_snapshot(self, snap: Mapping) -> None:
        count = int(snap.get("count", 0))
        if count == 0:
            return
        self.count += count
        self.total_s += float(snap.get("total_s", 0.0))
        self.min_s = min(self.min_s, float(snap.get("min_s", math.inf)))
        self.max_s = max(self.max_s, float(snap.get("max_s", -math.inf)))


class MetricsRegistry:
    """Create-on-first-use registry for the four metric kinds."""

    __slots__ = ("counters", "gauges", "histograms", "timers")

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.timers: dict[str, Timer] = {}

    # -- accessors (create on demand) -----------------------------------------

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(bounds)
        return h

    def timer(self, name: str) -> Timer:
        t = self.timers.get(name)
        if t is None:
            t = self.timers[name] = Timer()
        return t

    # -- one-shot conveniences -------------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        self.counter(name).add(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float, n: int = 1) -> None:
        self.histogram(name).observe(value, n)

    def timer_add(self, name: str, seconds: float) -> None:
        self.timer(name).add(seconds)

    # -- snapshot / merge ------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-friendly numeric tree of everything recorded so far."""
        return {
            "counters": {k: c.snapshot() for k, c in sorted(self.counters.items())},
            "gauges": {k: g.snapshot() for k, g in sorted(self.gauges.items())},
            "histograms": {
                k: h.snapshot() for k, h in sorted(self.histograms.items())
            },
            "timers": {k: t.snapshot() for k, t in sorted(self.timers.items())},
        }

    def merge(self, snapshot: Mapping) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters/histograms/timers add; gauges are last-write-wins (the
        merge order is the caller's replication order).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).add(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, snap in snapshot.get("histograms", {}).items():
            self.histogram(name).merge_snapshot(snap)
        for name, snap in snapshot.get("timers", {}).items():
            self.timer(name).merge_snapshot(snap)

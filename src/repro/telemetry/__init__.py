"""Engine-wide telemetry: metrics registry, span tracing, run manifests.

The package is organised around a strict zero-overhead-when-disabled
contract (see :mod:`repro.telemetry.runtime`): instrumented layers fetch
the process-global recorder once per tournament/replication and skip all
recording when it is the no-op singleton.  Enabling (``--telemetry`` on the
CLI, or :class:`TelemetryConfig` in an experiment config) swaps in a real
recorder whose registry snapshots merge across worker processes and land in
a schema-validated run manifest.
"""

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.harvest import harvest_oracle
from repro.telemetry.manifest import (
    build_run_manifest,
    config_hash,
    git_sha,
    write_run_manifest,
)
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.telemetry.render import render_manifest
from repro.telemetry.runtime import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    disable_telemetry,
    enable_telemetry,
    get_telemetry,
    telemetry_session,
)

__all__ = [
    "TelemetryConfig",
    "harvest_oracle",
    "build_run_manifest",
    "config_hash",
    "git_sha",
    "write_run_manifest",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "render_manifest",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "disable_telemetry",
    "enable_telemetry",
    "get_telemetry",
    "telemetry_session",
]

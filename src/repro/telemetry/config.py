"""Telemetry configuration.

A :class:`TelemetryConfig` travels inside
:class:`~repro.experiments.config.ExperimentConfig` so that a replication —
a pure function of ``(config, replication_index)`` — knows whether to record
metrics without any side channel.  Telemetry never changes simulation
results; it is excluded from the run-manifest config hash for that reason.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

__all__ = ["TelemetryConfig"]


@dataclass(frozen=True)
class TelemetryConfig:
    """Switches for the metrics/span recording layer.

    ``enabled``
        Master switch.  Off (the default) keeps the no-op singleton
        installed: the zero-overhead-when-disabled contract.
    ``events``
        Record individual span events (start/duration) in addition to the
        aggregated timers.  Aggregates are always kept when enabled.
    ``max_events``
        Cap on recorded events per replication; beyond it events are
        dropped (and counted) while aggregates keep accumulating.
    """

    enabled: bool = False
    events: bool = True
    max_events: int = 5000

    def __post_init__(self) -> None:
        if self.max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {self.max_events}")

    def with_(self, **changes: Any) -> "TelemetryConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "events": self.events,
            "max_events": self.max_events,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetryConfig":
        return cls(
            enabled=bool(data.get("enabled", False)),
            events=bool(data.get("events", True)),
            max_events=int(data.get("max_events", 5000)),
        )

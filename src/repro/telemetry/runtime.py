"""The telemetry runtime: a process-global recorder with a no-op default.

Zero-overhead-when-disabled contract
------------------------------------
``get_telemetry()`` returns a process-global singleton.  By default that is
:data:`NULL_TELEMETRY`, whose methods are empty and whose ``span`` returns a
shared inert context manager — no allocation, no branching beyond one
attribute check.  Instrumented code follows one pattern::

    tel = get_telemetry()
    if not tel.enabled:
        tel = None          # hot path: a single attribute read per seam
    ...
    if tel is not None:
        tel.count("engine.games", games)

Seams sit at tournament/generation boundaries, never inside per-game loops,
so a disabled run performs O(1) telemetry work per tournament and allocates
nothing (see ``tests/test_telemetry_overhead.py``).

Enabling installs a :class:`Telemetry` recorder for the current process —
worker processes each enable their own inside ``run_replication`` and ship
back a picklable snapshot.  :func:`telemetry_session` scopes a recorder and
restores whatever was active before, so sessions nest safely (e.g. the
serial ``processes=1`` path, where the pool's parent session surrounds each
replication's own).
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.registry import DEFAULT_BUCKETS, MetricsRegistry

__all__ = [
    "NullTelemetry",
    "Telemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "enable_telemetry",
    "disable_telemetry",
    "telemetry_session",
]


class _NullSpan:
    """Inert context manager shared by every disabled-span call."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled recorder: every operation is a no-op."""

    __slots__ = ()

    enabled = False

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, n: float = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float, n: int = 1) -> None:
        pass

    def timer_add(self, name: str, seconds: float) -> None:
        pass

    def event(self, name: str, **fields) -> None:
        pass


NULL_TELEMETRY = NullTelemetry()


class _Span:
    """Timed, optionally event-recorded scope.

    On exit the duration lands in the timer ``span.<path>`` where ``path``
    joins the enclosing span names (``generation/tournament/round``), and —
    capacity permitting — one event line is appended.
    """

    __slots__ = ("_tel", "_name", "_t0")

    def __init__(self, tel: "Telemetry", name: str) -> None:
        self._tel = tel
        self._name = name

    def __enter__(self) -> "_Span":
        tel = self._tel
        tel._stack.append(self._name)
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        t1 = perf_counter()
        tel = self._tel
        path = "/".join(tel._stack)
        tel._stack.pop()
        duration = t1 - self._t0
        tel.registry.timer_add(f"span.{path}", duration)
        tel.event("span", span=path, start_s=self._t0 - tel.t0, dur_s=duration)
        return False


class Telemetry:
    """The enabled recorder: registry + bounded event log + span stack."""

    enabled = True

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config if config is not None else TelemetryConfig(enabled=True)
        self.registry = MetricsRegistry()
        self.events: list[dict] = []
        self.dropped_events = 0
        self.t0 = perf_counter()
        self._stack: list[str] = []

    # -- recording -------------------------------------------------------------

    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def count(self, name: str, n: float = 1) -> None:
        self.registry.count(name, n)

    def set_gauge(self, name: str, value: float) -> None:
        self.registry.set_gauge(name, value)

    def observe(
        self, name: str, value: float, n: int = 1,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.registry.histogram(name, bounds).observe(value, n)

    def timer_add(self, name: str, seconds: float) -> None:
        self.registry.timer_add(name, seconds)

    def event(self, name: str, **fields) -> None:
        if not self.config.events:
            return
        if len(self.events) >= self.config.max_events:
            self.dropped_events += 1
            return
        record = {"event": name, "t_s": perf_counter() - self.t0}
        record.update(fields)
        self.events.append(record)

    # -- export ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """The registry as a picklable/JSON-friendly numeric tree."""
        return self.registry.snapshot()

    def export(self) -> dict:
        """Everything recorded, ready to attach to a replication result."""
        return {
            "metrics": self.snapshot(),
            "events": list(self.events),
            "dropped_events": self.dropped_events,
        }


_active: NullTelemetry | Telemetry = NULL_TELEMETRY


def get_telemetry() -> NullTelemetry | Telemetry:
    """The process-global recorder (the no-op singleton unless enabled)."""
    return _active


def enable_telemetry(config: TelemetryConfig | None = None) -> Telemetry:
    """Install (and return) a fresh enabled recorder for this process."""
    global _active
    _active = Telemetry(config)
    return _active


def disable_telemetry() -> None:
    """Restore the no-op singleton."""
    global _active
    _active = NULL_TELEMETRY


@contextmanager
def telemetry_session(
    config: TelemetryConfig | None = None,
) -> Iterator[Telemetry]:
    """Scope an enabled recorder; restores the previous one on exit."""
    global _active
    previous = _active
    tel = Telemetry(config)
    _active = tel
    try:
        yield tel
    finally:
        _active = previous

"""Declarative scenario layer: one file describes one experiment run.

A *scenario* is a small YAML/JSON document — schema-validated by
:func:`repro.utils.validation.validate_scenario` under the same exact-key
discipline as bench reports and checkpoint manifests — that names a paper
case, a scale preset, and the overrides/execution options the CLI exposes
as flags.  :func:`resolve_scenario` turns a validated payload into a
:class:`ResolvedScenario`: the fully-built
:class:`~repro.experiments.config.ExperimentConfig` (mobility preset,
engine, route-cache policy) plus the execution options (processes, shards,
checkpointing) that never enter the config hash.

The CLI (``repro run scenarios/<name>.yaml``, and ``run-case``/
``reproduce``, which build payloads from their flags), the Python API, and
the REST service (:mod:`repro.service`) all resolve through this one
layer, so a scenario file, the equivalent flag invocation, and a service
submission produce bit-identical results and share one ``config_hash``.

The committed ``scenarios/`` library at the repo root covers every paper
case and extension; ``repro validate-scenarios`` gates it in CI.
"""

from repro.scenarios.loader import (
    SCENARIO_SUFFIXES,
    apply_overrides,
    build_scenario_payload,
    dump_scenario,
    list_scenarios,
    load_scenario,
)
from repro.scenarios.resolve import ResolvedScenario, resolve_scenario

__all__ = [
    "SCENARIO_SUFFIXES",
    "load_scenario",
    "dump_scenario",
    "build_scenario_payload",
    "apply_overrides",
    "list_scenarios",
    "ResolvedScenario",
    "resolve_scenario",
]

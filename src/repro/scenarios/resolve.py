"""Resolve a validated scenario payload into a runnable configuration.

:func:`resolve_scenario` is the single translation from the declarative
contract to the experiment core, and it applies overrides in exactly the
order the CLI historically did (generations/replications at construction,
rounds, mobility + speed/pause, route-cache policy, telemetry) so a
scenario file, the equivalent ``run-case`` flags, and a service submission
build the *same* :class:`~repro.experiments.config.ExperimentConfig` —
same ``config_hash``, bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping

from repro.utils.validation import validate_scenario

__all__ = ["ResolvedScenario", "resolve_scenario"]


@dataclass(frozen=True)
class ResolvedScenario:
    """A scenario resolved against the experiment core, ready to run.

    ``config`` carries everything that determines results (and therefore
    the ``config_hash``); the remaining fields are execution options from
    the scenario's ``run`` block, which never affect results.
    """

    payload: dict
    config: Any  # ExperimentConfig (typed loosely to keep imports light)
    processes: int | None
    shards: int | None
    checkpoint_dir: Path | None
    resume: bool
    stacked: bool | None = None

    @property
    def name(self) -> str:
        return self.payload["name"]

    @property
    def case(self) -> str:
        return self.payload["case"]

    @property
    def scale(self) -> str:
        return self.payload["scale"]

    def config_hash(self) -> str:
        """The telemetry-excluded content address of this run."""
        from repro.telemetry.manifest import config_hash

        return config_hash(self.config.describe())

    def describe(self) -> dict:
        """The resolved config's JSON summary (what gets hashed)."""
        return self.config.describe()

    def to_payload(self) -> dict:
        """The normalized scenario payload (deep copy, re-serializable)."""
        payload = dict(self.payload)
        payload["overrides"] = dict(self.payload["overrides"])
        payload["run"] = dict(self.payload["run"])
        return payload


def resolve_scenario(payload: Mapping[str, Any]) -> ResolvedScenario:
    """Build the :class:`ResolvedScenario` for a scenario payload.

    Validates the payload first, then checks registry membership (case,
    scale, engine, mobility model, route-cache policy) by construction —
    the underlying config layer raises :class:`ValueError` with the list
    of valid names, so unknown vocabulary fails loudly, not at run time.
    """
    from repro.experiments.config import ExperimentConfig

    payload = validate_scenario(payload)
    overrides = payload["overrides"]
    run = payload["run"]

    config_overrides: dict[str, Any] = {}
    for key in ("seed", "engine", "kernel", "generations", "replications"):
        if key in overrides:
            config_overrides[key] = overrides[key]
    try:
        config = ExperimentConfig.for_case(
            payload["case"], scale=payload["scale"], **config_overrides
        )
    except KeyError as exc:  # get_case flags unknown names with KeyError
        raise ValueError(exc.args[0]) from None
    if "rounds" in overrides:
        config = config.with_(sim=config.sim.with_(rounds=overrides["rounds"]))
    if "mobility" in overrides:
        from repro.config.presets import mobility_preset

        try:
            mobility = mobility_preset(overrides["mobility"])
        except KeyError as exc:
            raise ValueError(exc.args[0]) from None
        if "speed" in overrides:
            speed = overrides["speed"]
            mobility = mobility.with_(
                speed_min=0.5 * speed,
                speed_max=1.5 * speed,
                mean_speed=speed,
            )
        if "pause" in overrides:
            mobility = mobility.with_(pause_time=overrides["pause"])
        # keep the case's preset name and the sim config in lockstep so the
        # override also turns mobility *off* for the mobile_* cases
        config = config.with_(
            case=replace(config.case, mobility=overrides["mobility"]),
            sim=config.sim.with_(mobility=mobility),
        )
    config = config.with_route_cache(
        overrides.get("route_cache"), overrides.get("drift_budget")
    )
    if overrides.get("telemetry"):
        from repro.telemetry.config import TelemetryConfig

        config = config.with_(telemetry=TelemetryConfig(enabled=True))

    checkpoint_dir = run.get("checkpoint_dir")
    return ResolvedScenario(
        payload=payload,
        config=config,
        processes=run.get("processes"),
        shards=run.get("shards"),
        checkpoint_dir=Path(checkpoint_dir) if checkpoint_dir is not None else None,
        resume=bool(run.get("resume", False)),
        stacked=run.get("stacked"),
    )

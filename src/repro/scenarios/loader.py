"""Scenario file I/O: load, build, override, and re-serialize payloads.

Everything returned here is a *validated* scenario payload (see
:func:`repro.utils.validation.validate_scenario`); resolution into an
:class:`~repro.experiments.config.ExperimentConfig` lives in
:mod:`repro.scenarios.resolve` so this module stays import-light.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

import yaml

from repro.utils.validation import validate_scenario

__all__ = [
    "SCENARIO_SUFFIXES",
    "load_scenario",
    "dump_scenario",
    "build_scenario_payload",
    "apply_overrides",
    "list_scenarios",
]

#: File suffixes a scenario may use (YAML preferred; JSON for machines).
SCENARIO_SUFFIXES = (".yaml", ".yml", ".json")


def load_scenario(path: str | Path) -> dict:
    """Load and validate one scenario file (YAML or JSON).

    Raises :class:`ValueError` for an unknown suffix, unparseable text, or
    a schema violation — always naming the offending file.
    """
    path = Path(path)
    if path.suffix not in SCENARIO_SUFFIXES:
        raise ValueError(
            f"{path}: scenario files must end in one of {SCENARIO_SUFFIXES}"
        )
    try:
        text = path.read_text()
    except OSError as exc:
        raise ValueError(f"{path}: cannot read scenario file: {exc}") from exc
    try:
        if path.suffix == ".json":
            payload = json.loads(text)
        else:
            payload = yaml.safe_load(text)
    except (json.JSONDecodeError, yaml.YAMLError) as exc:
        raise ValueError(f"{path}: not a valid scenario document: {exc}") from exc
    return validate_scenario(payload, name=str(path))


def dump_scenario(payload: Mapping[str, Any], path: str | Path | None = None) -> str:
    """Serialize a scenario payload as stable, sorted YAML.

    Validates first, so nothing unschematic ever reaches disk; the output
    round-trips through :func:`load_scenario` unchanged (pinned by
    ``tests/test_scenarios.py`` for every committed library file).
    """
    payload = validate_scenario(payload)
    text = yaml.safe_dump(payload, sort_keys=True, default_flow_style=False)
    if path is not None:
        Path(path).write_text(text)
    return text


def build_scenario_payload(
    case: str,
    scale: str = "default",
    *,
    name: str | None = None,
    description: str = "",
    overrides: Mapping[str, Any] | None = None,
    run: Mapping[str, Any] | None = None,
) -> dict:
    """Assemble a validated scenario payload from parts.

    ``None``-valued entries in ``overrides``/``run`` are dropped — this is
    how the CLI's flag namespaces (where an unset flag is ``None``) map
    onto the scenario contract, where an absent key means "case default".
    """
    payload = {
        "scenario_version": 1,
        "name": name if name is not None else f"{case}_{scale}",
        "description": description,
        "case": case,
        "scale": scale,
        "overrides": {
            k: v for k, v in (overrides or {}).items() if v is not None
        },
        "run": {k: v for k, v in (run or {}).items() if v is not None},
    }
    return validate_scenario(payload)


def apply_overrides(
    payload: Mapping[str, Any],
    overrides: Mapping[str, Any] | None = None,
    run: Mapping[str, Any] | None = None,
    name: str | None = None,
) -> dict:
    """A copy of ``payload`` with flag-style overrides merged on top.

    This is ``repro run scenarios/x.yaml --seed 5`` semantics: the file is
    the base, explicit flags win key-by-key, ``None`` values (unset flags)
    leave the file's values alone.  The merged payload is re-validated, so
    an override can never push a scenario outside the contract.
    """
    merged = dict(validate_scenario(payload))
    merged["overrides"] = dict(merged["overrides"])
    merged["run"] = dict(merged["run"])
    for key, value in (overrides or {}).items():
        if value is not None:
            merged["overrides"][key] = value
    for key, value in (run or {}).items():
        if value is not None:
            merged["run"][key] = value
    if name is not None:
        merged["name"] = name
    return validate_scenario(merged)


def list_scenarios(directory: str | Path) -> list[Path]:
    """Every scenario file under ``directory``, sorted by name.

    Only the suffix is checked here — validity is the caller's business
    (``repro validate-scenarios`` loads each one).
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        p
        for p in directory.iterdir()
        if p.is_file() and p.suffix in SCENARIO_SUFFIXES
    )

"""IPDRP baseline: the Iterated Prisoner's Dilemma under Random Pairing.

The paper's game model "has some similarities with the Iterated Prisoner's
Dilemma under the Random Pairing (IPDRP) game" of Namikawa & Ishibuchi
(CEC'05, the paper's ref [12]) and borrows its evolutionary setup (§5).  This
package implements that baseline from scratch: 5-bit single-round-memory
strategies, random pairing each round, and GA evolution — used to sanity-check
the GA machinery on a known system and as a comparison bench.
"""

from repro.ipdrp.game import PDPayoffs, play_random_pairing_tournament
from repro.ipdrp.strategy import IPDRP_STRATEGY_LENGTH, IpdrpStrategy
from repro.ipdrp.evolution import evolve_ipdrp, IpdrpHistory

__all__ = [
    "IpdrpStrategy",
    "IPDRP_STRATEGY_LENGTH",
    "PDPayoffs",
    "play_random_pairing_tournament",
    "evolve_ipdrp",
    "IpdrpHistory",
]

"""GA evolution of IPDRP strategies (baseline validation of the GA stack).

Reuses the exact GA machinery of :mod:`repro.ga` (the paper states its
evolutionary technique follows the IPDRP work, with tournament selection
substituted for roulette — both are available here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config.parameters import GAConfig
from repro.ga.evolution import GeneticAlgorithm
from repro.ipdrp.game import PDPayoffs, play_random_pairing_tournament
from repro.ipdrp.strategy import IPDRP_STRATEGY_LENGTH, IpdrpStrategy
from repro.utils.rng import as_generator

__all__ = ["IpdrpHistory", "evolve_ipdrp"]


@dataclass
class IpdrpHistory:
    """Per-generation cooperation and fitness of an IPDRP run."""

    cooperation: list[float] = field(default_factory=list)
    mean_fitness: list[float] = field(default_factory=list)
    final_population: list[IpdrpStrategy] = field(default_factory=list)

    @property
    def n_generations(self) -> int:
        return len(self.cooperation)


def evolve_ipdrp(
    generations: int,
    rounds: int = 100,
    ga_config: GAConfig | None = None,
    payoffs: PDPayoffs | None = None,
    seed: int | np.random.Generator | None = None,
) -> IpdrpHistory:
    """Evolve an IPDRP population; returns the evolution history."""
    if generations < 1:
        raise ValueError(f"generations must be >= 1, got {generations}")
    rng = as_generator(seed)
    ga_config = ga_config or GAConfig(population_size=50, selection="roulette")
    ga = GeneticAlgorithm(ga_config)
    population = ga.initial_population(IPDRP_STRATEGY_LENGTH, rng)

    history = IpdrpHistory()
    for generation in range(generations):
        strategies = [IpdrpStrategy(bits) for bits in population]
        fitness, cooperation = play_random_pairing_tournament(
            strategies, rounds, rng, payoffs
        )
        history.cooperation.append(cooperation)
        history.mean_fitness.append(float(fitness.mean()))
        if generation < generations - 1:
            population = ga.next_generation(population, fitness, rng)
    history.final_population = [IpdrpStrategy(bits) for bits in population]
    return history

"""Random-pairing PD tournament (paper §2, ref [12]).

Every round the population is randomly paired; each pair plays one Prisoner's
Dilemma move, with each player conditioning on the outcome of its *own*
previous encounter (against a likely different opponent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ipdrp.strategy import IpdrpStrategy

__all__ = ["PDPayoffs", "play_random_pairing_tournament"]


@dataclass(frozen=True)
class PDPayoffs:
    """Prisoner's Dilemma payoff parameters (row player's view).

    Defaults are the classic T=5 > R=3 > P=1 > S=0 with 2R > T + S.
    """

    temptation: float = 5.0  # I defect, opponent cooperates
    reward: float = 3.0  # both cooperate
    punishment: float = 1.0  # both defect
    sucker: float = 0.0  # I cooperate, opponent defects

    def __post_init__(self) -> None:
        if not (
            self.temptation > self.reward > self.punishment > self.sucker
        ):
            raise ValueError(
                "payoffs must satisfy T > R > P > S for a Prisoner's Dilemma"
            )
        if not 2 * self.reward > self.temptation + self.sucker:
            raise ValueError("payoffs must satisfy 2R > T + S")

    def payoff(self, mine: bool, theirs: bool) -> float:
        """My payoff given both moves (True = cooperate)."""
        if mine and theirs:
            return self.reward
        if mine and not theirs:
            return self.sucker
        if not mine and theirs:
            return self.temptation
        return self.punishment


def play_random_pairing_tournament(
    strategies: Sequence[IpdrpStrategy],
    rounds: int,
    rng: np.random.Generator,
    payoffs: PDPayoffs | None = None,
) -> tuple[np.ndarray, float]:
    """Play ``rounds`` of random pairing; return (mean payoffs, cooperation).

    Returns the per-player average payoff per round and the overall fraction
    of cooperative moves.  Requires an even number of players (the paper's
    populations are even).
    """
    n = len(strategies)
    if n < 2 or n % 2:
        raise ValueError(f"need an even number (>= 2) of players, got {n}")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    payoffs = payoffs or PDPayoffs()

    totals = np.zeros(n, dtype=float)
    # per-player memory of the previous encounter: (my move, opponent's move)
    my_last = np.zeros(n, dtype=bool)
    opp_last = np.zeros(n, dtype=bool)
    played = False
    coop_moves = 0

    for _ in range(rounds):
        order = rng.permutation(n)
        for k in range(0, n, 2):
            i, j = int(order[k]), int(order[k + 1])
            if not played:
                move_i = strategies[i].first_move()
                move_j = strategies[j].first_move()
            else:
                move_i = strategies[i].move(bool(my_last[i]), bool(opp_last[i]))
                move_j = strategies[j].move(bool(my_last[j]), bool(opp_last[j]))
            totals[i] += payoffs.payoff(move_i, move_j)
            totals[j] += payoffs.payoff(move_j, move_i)
            my_last[i], opp_last[i] = move_i, move_j
            my_last[j], opp_last[j] = move_j, move_i
            coop_moves += int(move_i) + int(move_j)
        played = True

    mean_payoffs = totals / rounds
    cooperation = coop_moves / (rounds * n)
    return mean_payoffs, cooperation

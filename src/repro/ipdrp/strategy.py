"""5-bit single-round-memory IPDRP strategies (paper §2, ref [12]).

"Each player has a single round memory strategy represented by a binary
string of the length five.  The first bit of the strategy determines the
first move of the player, while bits [1-4] define the moves for all possible
scenarios in the previous round."

Bit layout::

    bit 0 : first move of the tournament
    bit 1 : move after (my C, opponent C)
    bit 2 : move after (my C, opponent D)
    bit 3 : move after (my D, opponent C)
    bit 4 : move after (my D, opponent D)

Bit value 1 = cooperate, 0 = defect.  Note the memory is of the player's own
previous encounter, even though the next opponent is a different random
player — that is what distinguishes IPDRP from the classic IPD.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.bitstring import bits_from_string, bits_to_string, validate_bits

__all__ = ["IpdrpStrategy", "IPDRP_STRATEGY_LENGTH"]

IPDRP_STRATEGY_LENGTH = 5


class IpdrpStrategy:
    """Immutable 5-bit memory-one strategy for the IPDRP."""

    __slots__ = ("_bits",)

    def __init__(self, bits: Sequence[int]):
        self._bits = validate_bits(bits, IPDRP_STRATEGY_LENGTH)

    @classmethod
    def from_string(cls, text: str) -> "IpdrpStrategy":
        return cls(bits_from_string(text, IPDRP_STRATEGY_LENGTH))

    @classmethod
    def random(cls, rng: np.random.Generator) -> "IpdrpStrategy":
        return cls(
            tuple(int(b) for b in rng.integers(0, 2, size=IPDRP_STRATEGY_LENGTH))
        )

    @classmethod
    def always_cooperate(cls) -> "IpdrpStrategy":
        return cls((1, 1, 1, 1, 1))

    @classmethod
    def always_defect(cls) -> "IpdrpStrategy":
        return cls((0, 0, 0, 0, 0))

    @classmethod
    def tit_for_tat_like(cls) -> "IpdrpStrategy":
        """Cooperate first; repeat what the *previous opponent* did.

        (A TFT analogue under random pairing: bits 1,3 react to opponent C;
        bits 2,4 to opponent D.)
        """
        return cls((1, 1, 0, 1, 0))

    @property
    def bits(self) -> tuple[int, ...]:
        return self._bits

    def first_move(self) -> bool:
        """Cooperate on the first round?"""
        return bool(self._bits[0])

    def move(self, my_last: bool, opponent_last: bool) -> bool:
        """Next move given my own previous move and my previous opponent's."""
        index = 1 + (0 if my_last else 2) + (0 if opponent_last else 1)
        return bool(self._bits[index])

    def to_string(self) -> str:
        return bits_to_string(self._bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IpdrpStrategy):
            return NotImplemented
        return self._bits == other._bits

    def __hash__(self) -> int:
        return hash(("ipdrp", self._bits))

    def __repr__(self) -> str:
        return f"IpdrpStrategy('{self.to_string()}')"

"""Command-line interface.

Examples
--------
List the reproducible artefacts and paper cases::

    python -m repro list

Run a committed scenario file (the front door — CLI flags override it)::

    python -m repro run scenarios/fig4_smoke.yaml --out results/fig4.json

Reproduce a single artefact (reduced default scale)::

    python -m repro reproduce fig4 --scale default --out results/

Run one evaluation case with custom parameters and save raw results::

    python -m repro run-case case3 --generations 80 --rounds 150 \
        --replications 8 --out results/case3.json

Serve the experiment core over HTTP (content-addressed job dedupe)::

    python -m repro serve --root results/service --port 8000

``run``, ``run-case``, ``reproduce``, and the service all resolve through
the same scenario layer (:mod:`repro.scenarios`), so a scenario file, the
equivalent flag invocation, and a REST submission share one
``config_hash`` and produce bit-identical results.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro._version import __version__

__all__ = ["main", "build_parser", "EXIT_NO_CHECKPOINT"]

#: Exit code for ``--resume`` against a store with no matching checkpoint —
#: distinct from 2 (bad usage) so orchestration can tell the cases apart.
EXIT_NO_CHECKPOINT = 4

#: Default checkpoint store applied when ``--resume`` is given bare.
DEFAULT_CHECKPOINT_DIR = Path("results/checkpoints")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Evolution of Strategy Driven Behavior in Ad Hoc"
            " Networks Using a Genetic Algorithm' (IPPS 2007)."
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list artefacts and evaluation cases")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser(
        "run", help="run a scenario file (flags override the file)"
    )
    p_run.add_argument(
        "scenario", type=Path, help="path to a scenarios/*.yaml (or .json) file"
    )
    _add_case_override_flags(p_run)
    _add_run_flags(p_run, defaults=False)
    p_run.add_argument("--out", type=Path, default=None, help="JSON output path")
    p_run.set_defaults(func=_cmd_run)

    p_rep = sub.add_parser("reproduce", help="reproduce paper artefacts")
    p_rep.add_argument(
        "artefact",
        help="artefact id (fig4, table5, ... ) or 'all'",
    )
    p_rep.add_argument("--scale", default="default", help="paper|default|smoke")
    _add_run_flags(p_rep)
    p_rep.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for raw JSON results and rendered reports",
    )
    p_rep.set_defaults(func=_cmd_reproduce)

    p_case = sub.add_parser("run-case", help="run one evaluation case")
    p_case.add_argument("case", help="case1 .. case4, or an extension case")
    p_case.add_argument("--scale", default="default")
    _add_case_override_flags(p_case)
    _add_run_flags(p_case)
    p_case.add_argument("--out", type=Path, default=None, help="JSON output path")
    p_case.set_defaults(func=_cmd_run_case)

    p_serve = sub.add_parser(
        "serve", help="serve scenario submissions over HTTP (REST + dedupe)"
    )
    p_serve.add_argument(
        "--root",
        type=Path,
        default=Path("results/service"),
        help="job/result/checkpoint store root (default results/service)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8000)
    p_serve.add_argument(
        "--backend",
        default="auto",
        choices=("auto", "fastapi", "stdlib"),
        help=(
            "HTTP backend: fastapi (OpenAPI docs, needs the service extra)"
            " or the dependency-free stdlib server; auto picks fastapi when"
            " installed"
        ),
    )
    p_serve.add_argument(
        "--scenarios",
        type=Path,
        default=Path("scenarios"),
        help="scenario library served at GET /scenarios (default scenarios/)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_val = sub.add_parser(
        "validate-scenarios",
        help="schema-validate and resolve scenario files (the CI gate)",
    )
    p_val.add_argument(
        "paths",
        type=Path,
        nargs="*",
        default=[Path("scenarios")],
        help="scenario files or directories (default: scenarios/)",
    )
    p_val.set_defaults(func=_cmd_validate_scenarios)

    p_stats = sub.add_parser(
        "stats", help="render a telemetry run manifest human-readably"
    )
    p_stats.add_argument(
        "report", type=Path, help="path to a *_manifest.json written with --telemetry"
    )
    p_stats.set_defaults(func=_cmd_stats)

    return parser


def _add_run_flags(parser: argparse.ArgumentParser, defaults: bool = True) -> None:
    """The engine/seed/route-cache/telemetry/fault-tolerance flags shared
    by ``run``, ``run-case`` and ``reproduce``.

    With ``defaults=False`` every flag defaults to ``None`` so that only
    explicitly-given flags override a scenario file's values.
    """
    # deferred so `import repro.cli` stays light; the registries are the
    # single sources of engine and cache-policy names shared with
    # make_engine / make_cache_policy and the config layer
    from repro.config.mobility import ROUTE_CACHE_POLICIES
    from repro.sim import ENGINES
    from repro.sim.kernels import KERNEL_NAMES

    parser.add_argument("--seed", type=int, default=2007 if defaults else None)
    parser.add_argument(
        "--engine",
        default="fast" if defaults else None,
        choices=tuple(ENGINES),
        help=(
            "simulation engine; reference/fast/batch are bit-identical,"
            " turbo and fused are statistically equivalent (different"
            " trajectories under the same seed; fused stacks a whole"
            " generation per pass and is fastest)"
        ),
    )
    parser.add_argument(
        "--kernel",
        default="auto" if defaults else None,
        choices=tuple(KERNEL_NAMES),
        help=(
            "compute-kernel backend for turbo/fused engines: 'numpy' is the"
            " always-available bit-pinned reference, 'numba' the optional"
            " compiled backend (pip install .[kernels]; statistical"
            " equivalence contract), 'auto' picks numba when installed"
        ),
    )
    parser.add_argument("--processes", type=int, default=None)
    parser.add_argument(
        "--route-cache",
        default=None,
        choices=ROUTE_CACHE_POLICIES,
        help=(
            "route-cache policy for mobile topologies: 'exact' (default,"
            " bit-identical) or 'approx' (drift-budgeted stale routes,"
            " statistically equivalent)"
        ),
    )
    parser.add_argument(
        "--drift-budget",
        type=int,
        default=None,
        help=(
            "epochs a cached route may be served stale under --route-cache"
            " approx before lazy revalidation (default 8)"
        ),
    )
    parser.add_argument(
        "--telemetry",
        action="store_const",
        const=True,
        default=None,
        help=(
            "record engine-wide metrics/spans and write a schema-validated"
            " run manifest (see 'repro stats')"
        ),
    )
    parser.add_argument(
        "--telemetry-dir",
        type=Path,
        default=None,
        help="directory for manifests and metric dumps"
        " (default results/telemetry, or --out when given)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "group replications into at most N deterministic shards run"
            " through the work-stealing scheduler; any shard count yields"
            " bit-identical results (default: one pool task per replication)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help=(
            "write generation-boundary checkpoints under this directory,"
            " content-addressed by config hash (default: none)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_const",
        const=True,
        default=None,
        help=(
            "continue each replication from its newest intact checkpoint"
            " (bit-identical to an uninterrupted run); implies"
            f" --checkpoint-dir {DEFAULT_CHECKPOINT_DIR} when not given,"
            " and fails with exit code 4 when no matching checkpoint exists"
        ),
    )
    parser.add_argument(
        "--stacked",
        action="store_const",
        const=True,
        default=None,
        help=(
            "evaluate all replications as one stacked slate (requires a"
            " fusing engine, no sharding/checkpointing, telemetry off);"
            " bit-identical to the per-replication path.  Default: auto"
            " when eligible and --processes 1"
        ),
    )
    parser.add_argument(
        "--no-stacked",
        action="store_const",
        const=False,
        dest="stacked",
        help="never stack replications (force the per-replication path)",
    )


def _add_case_override_flags(parser: argparse.ArgumentParser) -> None:
    """The per-case override flags shared by ``run`` and ``run-case``."""
    parser.add_argument("--generations", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--replications", type=int, default=None)
    parser.add_argument(
        "--mobility",
        default=None,
        choices=("waypoint", "gauss-markov", "none"),
        help="run the case on a mobile topology (overrides the case's preset)",
    )
    parser.add_argument(
        "--speed",
        type=float,
        default=None,
        help=(
            "mean node speed in unit-square lengths per topology step"
            " (waypoint legs span 0.5x-1.5x of it; requires --mobility)"
        ),
    )
    parser.add_argument(
        "--pause",
        type=float,
        default=None,
        help="waypoint pause time in steps on arrival (requires --mobility)",
    )


def _flag_error(args: argparse.Namespace) -> str | None:
    """Validate the flag namespace before it becomes a scenario payload
    (None when fine) — same messages the flags have always produced."""
    from repro.utils.validation import drift_budget_error, shards_error

    speed = getattr(args, "speed", None)
    pause = getattr(args, "pause", None)
    if (speed is not None or pause is not None) and getattr(
        args, "mobility", None
    ) is None:
        return "--speed/--pause require --mobility"
    if speed is not None and speed < 0:
        return f"--speed must be >= 0, got {speed}"
    if pause is not None and pause < 0:
        return f"--pause must be >= 0, got {pause}"
    return drift_budget_error(args.route_cache, args.drift_budget) or shards_error(
        args.shards
    )


def _overrides_from_args(args: argparse.Namespace) -> dict:
    """The scenario ``overrides`` block for a flag namespace (``None``
    values are dropped downstream, so unset flags defer to the scenario)."""
    return {
        "seed": args.seed,
        "engine": args.engine,
        "generations": getattr(args, "generations", None),
        "rounds": getattr(args, "rounds", None),
        "replications": getattr(args, "replications", None),
        "mobility": getattr(args, "mobility", None),
        "speed": getattr(args, "speed", None),
        "pause": getattr(args, "pause", None),
        "route_cache": args.route_cache,
        "drift_budget": args.drift_budget,
        "telemetry": args.telemetry,
        "kernel": args.kernel,
    }


def _run_block_from_args(args: argparse.Namespace) -> dict:
    """The scenario ``run`` block (execution options) for a flag namespace."""
    return {
        "processes": args.processes,
        "shards": args.shards,
        "checkpoint_dir": (
            str(args.checkpoint_dir) if args.checkpoint_dir is not None else None
        ),
        "resume": args.resume,
        "stacked": args.stacked,
    }


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments.cases import CASES, EXTENSION_CASES
    from repro.experiments.registry import ARTEFACTS

    print("Artefacts:")
    for spec in ARTEFACTS.values():
        print(f"  {spec}")
    print("\nEvaluation cases (Table 4):")
    for case in CASES.values():
        envs = ", ".join(f"{e.name}({e.n_selfish} CSN)" for e in case.environments)
        print(f"  {case.name}: {case.description}")
        print(f"      environments: {envs}; paths: {case.path_mode}")
    print("\nExtension cases (mobile topologies, reputation exchange):")
    for case in EXTENSION_CASES.values():
        print(f"  {case.name}: {case.description}")
        presets = []
        if case.mobility != "none":
            presets.append(f"mobility preset: {case.mobility}")
        if case.exchange != "none":
            presets.append(f"exchange preset: {case.exchange}")
        print(f"      {'; '.join(presets) or 'paper substrate'}")
    return 0


def _execute_resolved(
    resolved,
    out: Path | None,
    telemetry_dir: Path | None,
) -> int:
    """Run a resolved scenario and report — the shared back half of
    ``run`` and ``run-case``."""
    from repro.experiments.runner import run_experiment
    from repro.parallel.progress import ProgressPrinter

    if resolved.config.kernel == "numba":
        # fail before any replication runs, with the install hint intact
        from repro.sim.kernels import resolve_kernel

        try:
            resolve_kernel("numba")
        except RuntimeError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    checkpoint_dir = resolved.checkpoint_dir
    if resolved.resume and checkpoint_dir is None:
        checkpoint_dir = DEFAULT_CHECKPOINT_DIR
    if resolved.resume:
        from repro.experiments.checkpoint import CheckpointStore

        if not CheckpointStore(checkpoint_dir).has_checkpoints(resolved.config):
            print(
                f"--resume: no checkpoints matching config hash"
                f" {resolved.config_hash()[:16]} under {checkpoint_dir}",
                file=sys.stderr,
            )
            return EXIT_NO_CHECKPOINT
    result = run_experiment(
        resolved.config,
        processes=resolved.processes,
        progress=ProgressPrinter(resolved.case),
        shards=resolved.shards,
        checkpoint_dir=checkpoint_dir,
        resume=resolved.resume,
        stacked=resolved.stacked,
    )
    mean, std = result.final_cooperation()
    print(
        f"{resolved.case}: final cooperation {mean * 100:.1f}%"
        f" (std {std * 100:.1f}%)"
    )
    for env, coop in result.per_env_cooperation().items():
        print(f"  {env}: {coop * 100:.1f}% cooperation")
    if out is not None:
        path = result.save(out)
        print(f"raw results written to {path}")
    if result.telemetry is not None:
        from repro.telemetry import write_run_manifest

        manifest = write_run_manifest(
            telemetry_dir if telemetry_dir is not None else Path("results/telemetry"),
            resolved.name,
            result.config,
            result.telemetry,
            run_extra={
                "checkpoint_dir": (
                    str(checkpoint_dir) if checkpoint_dir is not None else "none"
                )
            },
        )
        print(f"telemetry manifest: {manifest}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.scenarios import apply_overrides, load_scenario, resolve_scenario
    from repro.utils.validation import shards_error

    error = shards_error(args.shards)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    try:
        payload = load_scenario(args.scenario)
        payload = apply_overrides(
            payload,
            overrides=_overrides_from_args(args),
            run=_run_block_from_args(args),
        )
        resolved = resolve_scenario(payload)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return _execute_resolved(resolved, out=args.out, telemetry_dir=args.telemetry_dir)


def _cmd_run_case(args: argparse.Namespace) -> int:
    from repro.scenarios import build_scenario_payload, resolve_scenario

    error = _flag_error(args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    try:
        payload = build_scenario_payload(
            args.case,
            args.scale,
            overrides=_overrides_from_args(args),
            run=_run_block_from_args(args),
        )
        resolved = resolve_scenario(payload)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return _execute_resolved(resolved, out=args.out, telemetry_dir=args.telemetry_dir)


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.registry import ARTEFACTS, ReproductionSession

    ids = list(ARTEFACTS) if args.artefact == "all" else [args.artefact]
    unknown = [a for a in ids if a not in ARTEFACTS]
    if unknown:
        print(f"unknown artefact(s): {unknown}; try 'repro list'", file=sys.stderr)
        return 2
    error = _flag_error(args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    telemetry_dir = args.telemetry_dir
    if telemetry_dir is None and args.out is not None:
        telemetry_dir = args.out / "telemetry"
    checkpoint_dir = args.checkpoint_dir
    if args.resume and checkpoint_dir is None:
        checkpoint_dir = DEFAULT_CHECKPOINT_DIR
    session = ReproductionSession(
        scale=args.scale,
        seed=args.seed,
        engine=args.engine,
        kernel=args.kernel,
        processes=args.processes,
        cache_dir=args.out,
        verbose=True,
        route_cache=args.route_cache,
        drift_budget=args.drift_budget,
        telemetry=bool(args.telemetry),
        telemetry_dir=telemetry_dir,
        shards=args.shards,
        checkpoint_dir=checkpoint_dir,
        resume=bool(args.resume),
    )
    if args.resume:
        from repro.experiments.checkpoint import CheckpointStore

        store = CheckpointStore(checkpoint_dir)
        cases = sorted({c for aid in ids for c in ARTEFACTS[aid].cases})
        if not any(store.has_checkpoints(session.config_for(c)) for c in cases):
            print(
                f"--resume: no checkpoints for any of {cases}"
                f" under {checkpoint_dir}",
                file=sys.stderr,
            )
            return EXIT_NO_CHECKPOINT
    for artefact_id in ids:
        report = session.render(artefact_id)
        print(f"\n===== {artefact_id} =====")
        print(report)
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{artefact_id}_{args.scale}.txt").write_text(report + "\n")
    for case_name, manifest in session.manifests.items():
        print(f"telemetry manifest for {case_name}: {manifest}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.app import fastapi_available, run_service

    backend = args.backend
    if backend == "auto":
        backend = "fastapi" if fastapi_available() else "stdlib"
    scenarios = args.scenarios if args.scenarios.is_dir() else None
    print(
        f"serving on http://{args.host}:{args.port}"
        f" (backend: {backend}, store: {args.root})"
    )
    if backend == "fastapi":
        print(f"OpenAPI docs: http://{args.host}:{args.port}/docs")
    try:
        run_service(
            args.root,
            host=args.host,
            port=args.port,
            backend=backend,
            scenarios_dir=scenarios,
        )
    except KeyboardInterrupt:
        pass
    except RuntimeError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _cmd_validate_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import list_scenarios, load_scenario, resolve_scenario

    paths: list[Path] = []
    for target in args.paths:
        if target.is_dir():
            paths.extend(list_scenarios(target))
        else:
            paths.append(target)
    if not paths:
        print("no scenario files found", file=sys.stderr)
        return 2
    failures = 0
    for path in paths:
        try:
            resolved = resolve_scenario(load_scenario(path))
        except ValueError as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            failures += 1
            continue
        print(
            f"ok   {path} -> {resolved.name}"
            f" [{resolved.case} @ {resolved.scale}]"
            f" {resolved.config_hash()[:16]}"
        )
    if failures:
        print(f"{failures} invalid scenario file(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry import render_manifest
    from repro.utils.validation import validate_run_manifest

    try:
        payload = json.loads(args.report.read_text())
    except FileNotFoundError:
        print(f"no such manifest: {args.report}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"{args.report} is not valid JSON: {exc}", file=sys.stderr)
        return 2
    try:
        manifest = validate_run_manifest(payload, name=str(args.report))
    except ValueError as exc:
        print(f"invalid run manifest: {exc}", file=sys.stderr)
        return 2
    print(render_manifest(manifest))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface.

Examples
--------
List the reproducible artefacts and paper cases::

    python -m repro list

Reproduce a single artefact (reduced default scale)::

    python -m repro reproduce fig4 --scale default --out results/

Reproduce everything the paper reports::

    python -m repro reproduce all --out results/

Run one evaluation case with custom parameters and save raw results::

    python -m repro run-case case3 --generations 80 --rounds 150 \
        --replications 8 --out results/case3.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    # deferred so `import repro.cli` stays light; the registries are the
    # single sources of engine and cache-policy names shared with
    # make_engine / make_cache_policy and the config layer
    from repro.config.mobility import ROUTE_CACHE_POLICIES
    from repro.sim import ENGINES

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Evolution of Strategy Driven Behavior in Ad Hoc"
            " Networks Using a Genetic Algorithm' (IPPS 2007)."
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list artefacts and evaluation cases")
    p_list.set_defaults(func=_cmd_list)

    p_rep = sub.add_parser("reproduce", help="reproduce paper artefacts")
    p_rep.add_argument(
        "artefact",
        help="artefact id (fig4, table5, ... ) or 'all'",
    )
    p_rep.add_argument("--scale", default="default", help="paper|default|smoke")
    p_rep.add_argument("--seed", type=int, default=2007)
    p_rep.add_argument(
        "--engine",
        default="fast",
        choices=tuple(ENGINES),
        help=(
            "simulation engine; reference/fast/batch are bit-identical,"
            " turbo is statistically equivalent (fastest, different"
            " trajectories under the same seed)"
        ),
    )
    p_rep.add_argument("--processes", type=int, default=None)
    p_rep.add_argument(
        "--route-cache",
        default=None,
        choices=ROUTE_CACHE_POLICIES,
        help=(
            "route-cache policy for mobile topologies: 'exact' (default,"
            " bit-identical) or 'approx' (drift-budgeted stale routes,"
            " statistically equivalent)"
        ),
    )
    p_rep.add_argument(
        "--drift-budget",
        type=int,
        default=None,
        help=(
            "epochs a cached route may be served stale under --route-cache"
            " approx before lazy revalidation (default 8)"
        ),
    )
    p_rep.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for raw JSON results and rendered reports",
    )
    p_rep.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "record engine-wide metrics/spans and write a schema-validated"
            " run manifest per case (see 'repro stats')"
        ),
    )
    p_rep.add_argument(
        "--telemetry-dir",
        type=Path,
        default=None,
        help="directory for manifests and metric dumps"
        " (default results/telemetry, or --out when given)",
    )
    _add_fault_tolerance_flags(p_rep)
    p_rep.set_defaults(func=_cmd_reproduce)

    p_case = sub.add_parser("run-case", help="run one evaluation case")
    p_case.add_argument("case", help="case1 .. case4, or an extension case")
    p_case.add_argument("--generations", type=int, default=None)
    p_case.add_argument("--rounds", type=int, default=None)
    p_case.add_argument("--replications", type=int, default=None)
    p_case.add_argument("--scale", default="default")
    p_case.add_argument("--seed", type=int, default=2007)
    p_case.add_argument(
        "--engine",
        default="fast",
        choices=tuple(ENGINES),
        help=(
            "simulation engine; reference/fast/batch are bit-identical,"
            " turbo is statistically equivalent (fastest, different"
            " trajectories under the same seed)"
        ),
    )
    p_case.add_argument("--processes", type=int, default=None)
    p_case.add_argument("--out", type=Path, default=None, help="JSON output path")
    p_case.add_argument(
        "--mobility",
        default=None,
        choices=("waypoint", "gauss-markov", "none"),
        help="run the case on a mobile topology (overrides the case's preset)",
    )
    p_case.add_argument(
        "--speed",
        type=float,
        default=None,
        help=(
            "mean node speed in unit-square lengths per topology step"
            " (waypoint legs span 0.5x-1.5x of it; requires --mobility)"
        ),
    )
    p_case.add_argument(
        "--pause",
        type=float,
        default=None,
        help="waypoint pause time in steps on arrival (requires --mobility)",
    )
    p_case.add_argument(
        "--route-cache",
        default=None,
        choices=ROUTE_CACHE_POLICIES,
        help=(
            "route-cache policy for mobile topologies: 'exact' (default,"
            " bit-identical) or 'approx' (drift-budgeted stale routes,"
            " statistically equivalent)"
        ),
    )
    p_case.add_argument(
        "--drift-budget",
        type=int,
        default=None,
        help=(
            "epochs a cached route may be served stale under --route-cache"
            " approx before lazy revalidation (default 8)"
        ),
    )
    p_case.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "record engine-wide metrics/spans and write a schema-validated"
            " run manifest (see 'repro stats')"
        ),
    )
    p_case.add_argument(
        "--telemetry-dir",
        type=Path,
        default=None,
        help="directory for the manifest and metric dump"
        " (default results/telemetry)",
    )
    _add_fault_tolerance_flags(p_case)
    p_case.set_defaults(func=_cmd_run_case)

    p_stats = sub.add_parser(
        "stats", help="render a telemetry run manifest human-readably"
    )
    p_stats.add_argument(
        "report", type=Path, help="path to a *_manifest.json written with --telemetry"
    )
    p_stats.set_defaults(func=_cmd_stats)

    return parser


def _add_fault_tolerance_flags(parser: argparse.ArgumentParser) -> None:
    """The checkpoint/resume + shard-scheduler flags (shared by reproduce
    and run-case)."""
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "group replications into at most N deterministic shards run"
            " through the work-stealing scheduler; any shard count yields"
            " bit-identical results (default: one pool task per replication)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help=(
            "write generation-boundary checkpoints under this directory,"
            " content-addressed by config hash (default: none)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "continue each replication from its newest intact checkpoint"
            " (bit-identical to an uninterrupted run); implies"
            " --checkpoint-dir results/checkpoints when not given"
        ),
    )


def _fault_tolerance_error(args: argparse.Namespace) -> str | None:
    """Validate the shard/checkpoint flags and apply the --resume default
    checkpoint directory (None when fine)."""
    if args.shards is not None and args.shards < 1:
        return f"--shards must be >= 1, got {args.shards}"
    if args.resume and args.checkpoint_dir is None:
        args.checkpoint_dir = Path("results/checkpoints")
    return None


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments.cases import CASES, EXTENSION_CASES
    from repro.experiments.registry import ARTEFACTS

    print("Artefacts:")
    for spec in ARTEFACTS.values():
        print(f"  {spec}")
    print("\nEvaluation cases (Table 4):")
    for case in CASES.values():
        envs = ", ".join(f"{e.name}({e.n_selfish} CSN)" for e in case.environments)
        print(f"  {case.name}: {case.description}")
        print(f"      environments: {envs}; paths: {case.path_mode}")
    print("\nExtension cases (mobile topologies, reputation exchange):")
    for case in EXTENSION_CASES.values():
        print(f"  {case.name}: {case.description}")
        presets = []
        if case.mobility != "none":
            presets.append(f"mobility preset: {case.mobility}")
        if case.exchange != "none":
            presets.append(f"exchange preset: {case.exchange}")
        print(f"      {'; '.join(presets) or 'paper substrate'}")
    return 0


def _drift_budget_error(args: argparse.Namespace) -> str | None:
    """Validate the --route-cache/--drift-budget pair (None when fine).

    A budget without the approx policy would be range-checked and then
    silently ignored (the exact policy hardcodes budget 0) — reject it so
    a misconfigured benchmark cannot masquerade as a drift-budgeted run.
    """
    if args.drift_budget is None:
        return None
    if args.drift_budget < 0:
        return f"--drift-budget must be >= 0, got {args.drift_budget}"
    if args.route_cache != "approx":
        return "--drift-budget requires --route-cache approx"
    return None


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.registry import ARTEFACTS, ReproductionSession

    ids = list(ARTEFACTS) if args.artefact == "all" else [args.artefact]
    unknown = [a for a in ids if a not in ARTEFACTS]
    if unknown:
        print(f"unknown artefact(s): {unknown}; try 'repro list'", file=sys.stderr)
        return 2
    error = _drift_budget_error(args) or _fault_tolerance_error(args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    telemetry_dir = args.telemetry_dir
    if telemetry_dir is None and args.out is not None:
        telemetry_dir = args.out / "telemetry"
    session = ReproductionSession(
        scale=args.scale,
        seed=args.seed,
        engine=args.engine,
        processes=args.processes,
        cache_dir=args.out,
        verbose=True,
        route_cache=args.route_cache,
        drift_budget=args.drift_budget,
        telemetry=args.telemetry,
        telemetry_dir=telemetry_dir,
        shards=args.shards,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
    for artefact_id in ids:
        report = session.render(artefact_id)
        print(f"\n===== {artefact_id} =====")
        print(report)
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{artefact_id}_{args.scale}.txt").write_text(report + "\n")
    for case_name, manifest in session.manifests.items():
        print(f"telemetry manifest for {case_name}: {manifest}")
    return 0


def _cmd_run_case(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentConfig, run_experiment
    from repro.parallel.progress import ProgressPrinter

    overrides: dict = {"seed": args.seed, "engine": args.engine}
    if args.generations is not None:
        overrides["generations"] = args.generations
    if args.replications is not None:
        overrides["replications"] = args.replications
    config = ExperimentConfig.for_case(args.case, scale=args.scale, **overrides)
    if args.rounds is not None:
        config = config.with_(sim=config.sim.with_(rounds=args.rounds))
    if (args.speed is not None or args.pause is not None) and args.mobility is None:
        print("--speed/--pause require --mobility", file=sys.stderr)
        return 2
    if args.speed is not None and args.speed < 0:
        print(f"--speed must be >= 0, got {args.speed}", file=sys.stderr)
        return 2
    if args.pause is not None and args.pause < 0:
        print(f"--pause must be >= 0, got {args.pause}", file=sys.stderr)
        return 2
    error = _drift_budget_error(args) or _fault_tolerance_error(args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    if args.mobility is not None:
        from dataclasses import replace

        from repro.config.presets import mobility_preset

        mobility = mobility_preset(args.mobility)
        if args.speed is not None:
            mobility = mobility.with_(
                speed_min=0.5 * args.speed,
                speed_max=1.5 * args.speed,
                mean_speed=args.speed,
            )
        if args.pause is not None:
            mobility = mobility.with_(pause_time=args.pause)
        # keep the case's preset name and the sim config in lockstep so the
        # flag also turns mobility *off* for the mobile_* extension cases
        config = config.with_(
            case=replace(config.case, mobility=args.mobility),
            sim=config.sim.with_(mobility=mobility),
        )
    config = config.with_route_cache(args.route_cache, args.drift_budget)
    if args.telemetry:
        from repro.telemetry import TelemetryConfig

        config = config.with_(telemetry=TelemetryConfig(enabled=True))
    result = run_experiment(
        config,
        processes=args.processes,
        progress=ProgressPrinter(args.case),
        shards=args.shards,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
    mean, std = result.final_cooperation()
    print(f"{args.case}: final cooperation {mean * 100:.1f}% (std {std * 100:.1f}%)")
    for env, coop in result.per_env_cooperation().items():
        print(f"  {env}: {coop * 100:.1f}% cooperation")
    if args.out is not None:
        path = result.save(args.out)
        print(f"raw results written to {path}")
    if result.telemetry is not None:
        from repro.telemetry import write_run_manifest

        telemetry_dir = (
            args.telemetry_dir
            if args.telemetry_dir is not None
            else Path("results/telemetry")
        )
        manifest = write_run_manifest(
            telemetry_dir,
            f"{args.case}_{args.scale}",
            result.config,
            result.telemetry,
        )
        print(f"telemetry manifest: {manifest}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry import render_manifest
    from repro.utils.validation import validate_run_manifest

    try:
        payload = json.loads(args.report.read_text())
    except FileNotFoundError:
        print(f"no such manifest: {args.report}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"{args.report} is not valid JSON: {exc}", file=sys.stderr)
        return 2
    try:
        manifest = validate_run_manifest(payload, name=str(args.report))
    except ValueError as exc:
        print(f"invalid run manifest: {exc}", file=sys.stderr)
        return 2
    print(render_manifest(manifest))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

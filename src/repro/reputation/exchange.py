"""Second-hand reputation exchange — optional extension.

The paper collects reputation **first-hand only** (plus in-path alerts).  Its
related-work section discusses systems that additionally exchange reputation
between nodes: CORE [10] exchanges *positive* observations only (to prevent
bad-mouthing), CONFIDANT [2]/[1] also uses negative second-hand reports.

This module implements a configurable gossip step that can be enabled in the
tournament runner (``TournamentConfig.exchange``): every ``interval`` rounds
each player shares its counters with ``fanout`` random peers, which fold them
in scaled by ``weight``.  ``positive_only=True`` reproduces CORE's rule by
sharing only the forwarded counts (``ps = pf``), so a gossip message can never
worsen a subject's rate.

This is an *extension* (ablated in ``benchmarks/bench_exchange_extension.py``);
the paper's own experiments all run with the exchange disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.reputation.records import ReputationTable

__all__ = ["ExchangeConfig", "exchange_reputation", "exchange_reputation_flat"]


@dataclass(frozen=True)
class ExchangeConfig:
    """Parameters of the second-hand reputation exchange."""

    enabled: bool = False
    interval: int = 10  # rounds between gossip steps
    fanout: int = 2  # peers each player shares with per step
    weight: float = 0.5  # scale applied to received counts
    positive_only: bool = True  # CORE-style: share only positive observations

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(f"interval must be >= 1, got {self.interval}")
        if self.fanout < 0:
            raise ValueError(f"fanout must be >= 0, got {self.fanout}")
        if not 0.0 <= self.weight <= 1.0:
            raise ValueError(f"weight must be in [0, 1], got {self.weight}")


def _scaled(count: int, weight: float) -> int:
    return int(round(count * weight))


def _message_counts(
    ps: int, pf: int, weight: float, positive_only: bool
) -> tuple[int, int]:
    """The ``(add_ps, add_pf)`` a receiver folds in for one gossiped subject.

    The single definition of the exchange's scaling/clamping rule, shared by
    the table-backed and flat implementations so they cannot drift apart:
    CORE-style positive-only gossip transmits the forwarded count as both
    counters (a message can never worsen a subject's rate); full gossip
    scales both and clamps ``pf <= ps`` against rounding skew.
    """
    if positive_only:
        add_pf = _scaled(pf, weight)
        return add_pf, add_pf  # only positive evidence is transmitted
    add_ps = _scaled(ps, weight)
    return add_ps, min(_scaled(pf, weight), add_ps)


def exchange_reputation(
    tables: Mapping[int, ReputationTable],
    participants: Sequence[int],
    config: ExchangeConfig,
    rng: np.random.Generator,
) -> int:
    """Run one gossip step among ``participants``.

    Each participant picks ``fanout`` distinct peers (uniformly, without
    replacement) and *sends* its snapshot to them; receivers merge scaled
    counts about subjects other than themselves and the sender.  Returns the
    number of (sender, receiver) messages delivered — useful for tests and
    instrumentation.

    Snapshots are taken up-front so a message reflects the sender's state at
    the start of the step, not gossip received within the same step (no
    same-step amplification).
    """
    if not config.enabled or config.fanout == 0:
        return 0
    ids = list(participants)
    if len(ids) < 2:
        return 0
    snapshots = {pid: tables[pid].snapshot() for pid in ids}
    messages = 0
    for sender in ids:
        peers_pool = [p for p in ids if p != sender]
        k = min(config.fanout, len(peers_pool))
        chosen = rng.choice(len(peers_pool), size=k, replace=False)
        for idx in chosen:
            receiver = peers_pool[int(idx)]
            table = tables[receiver]
            for subject, (ps, pf) in snapshots[sender].items():
                if subject == receiver or subject == sender:
                    continue
                add_ps, add_pf = _message_counts(
                    ps, pf, config.weight, config.positive_only
                )
                if add_ps:
                    table.merge_counts(subject, add_ps, add_pf)
            messages += 1
    return messages


def exchange_reputation_flat(
    ps: Sequence[list[int]],
    pf: Sequence[list[int]],
    known: list[int],
    pf_sum: list[int],
    participants: Sequence[int],
    config: ExchangeConfig,
    rng: np.random.Generator,
) -> int:
    """One gossip step over flat reputation state (fast/batch engines).

    Semantically and stream-identically equivalent to
    :func:`exchange_reputation` over :class:`ReputationTable` objects: the
    same ``rng.choice`` calls in the same order, the same scaling/clamping
    per message, and the same receiver-side folding — only the storage
    differs (row-per-observer count lists plus the running ``known`` /
    ``pf_sum`` aggregates the flat engines maintain for O(1) activity
    averages).  The engine-equivalence suite pins the two implementations
    together.
    """
    if not config.enabled or config.fanout == 0:
        return 0
    ids = list(participants)
    if len(ids) < 2:
        return 0
    weight = config.weight
    positive_only = config.positive_only
    # Snapshots up-front, as in the reference: a message reflects the
    # sender's state at the start of the step.
    snapshots: dict[int, list[tuple[int, int, int]]] = {}
    for pid in ids:
        ps_row, pf_row = ps[pid], pf[pid]
        snapshots[pid] = [
            (subject, ps_row[subject], pf_row[subject])
            for subject in range(len(ps_row))
            if ps_row[subject] > 0
        ]
    messages = 0
    for sender in ids:
        peers_pool = [p for p in ids if p != sender]
        k = min(config.fanout, len(peers_pool))
        chosen = rng.choice(len(peers_pool), size=k, replace=False)
        snapshot = snapshots[sender]
        for idx in chosen:
            receiver = peers_pool[int(idx)]
            ps_row, pf_row = ps[receiver], pf[receiver]
            for subject, s_ps, s_pf in snapshot:
                if subject == receiver or subject == sender:
                    continue
                add_ps, add_pf = _message_counts(s_ps, s_pf, weight, positive_only)
                if add_ps:
                    if ps_row[subject] == 0:
                        known[receiver] += 1
                    ps_row[subject] += add_ps
                    pf_row[subject] += add_pf
                    pf_sum[receiver] += add_pf
            messages += 1
    return messages

"""Second-hand reputation exchange — optional extension.

The paper collects reputation **first-hand only** (plus in-path alerts).  Its
related-work section discusses systems that additionally exchange reputation
between nodes: CORE [10] exchanges *positive* observations only (to prevent
bad-mouthing), CONFIDANT [2]/[1] also uses negative second-hand reports.

This module implements a configurable gossip step that can be enabled in the
tournament runner (``TournamentConfig.exchange``): every ``interval`` rounds
each player shares its counters with ``fanout`` random peers, which fold them
in scaled by ``weight``.  ``positive_only=True`` reproduces CORE's rule by
sharing only the forwarded counts (``ps = pf``), so a gossip message can never
worsen a subject's rate.

This is an *extension* (ablated in ``benchmarks/bench_exchange_extension.py``);
the paper's own experiments all run with the exchange disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.reputation.records import ReputationTable

__all__ = ["ExchangeConfig", "exchange_reputation"]


@dataclass(frozen=True)
class ExchangeConfig:
    """Parameters of the second-hand reputation exchange."""

    enabled: bool = False
    interval: int = 10  # rounds between gossip steps
    fanout: int = 2  # peers each player shares with per step
    weight: float = 0.5  # scale applied to received counts
    positive_only: bool = True  # CORE-style: share only positive observations

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(f"interval must be >= 1, got {self.interval}")
        if self.fanout < 0:
            raise ValueError(f"fanout must be >= 0, got {self.fanout}")
        if not 0.0 <= self.weight <= 1.0:
            raise ValueError(f"weight must be in [0, 1], got {self.weight}")


def _scaled(count: int, weight: float) -> int:
    return int(round(count * weight))


def exchange_reputation(
    tables: Mapping[int, ReputationTable],
    participants: Sequence[int],
    config: ExchangeConfig,
    rng: np.random.Generator,
) -> int:
    """Run one gossip step among ``participants``.

    Each participant picks ``fanout`` distinct peers (uniformly, without
    replacement) and *sends* its snapshot to them; receivers merge scaled
    counts about subjects other than themselves and the sender.  Returns the
    number of (sender, receiver) messages delivered — useful for tests and
    instrumentation.

    Snapshots are taken up-front so a message reflects the sender's state at
    the start of the step, not gossip received within the same step (no
    same-step amplification).
    """
    if not config.enabled or config.fanout == 0:
        return 0
    ids = list(participants)
    if len(ids) < 2:
        return 0
    snapshots = {pid: tables[pid].snapshot() for pid in ids}
    messages = 0
    for sender in ids:
        peers_pool = [p for p in ids if p != sender]
        k = min(config.fanout, len(peers_pool))
        chosen = rng.choice(len(peers_pool), size=k, replace=False)
        for idx in chosen:
            receiver = peers_pool[int(idx)]
            table = tables[receiver]
            for subject, (ps, pf) in snapshots[sender].items():
                if subject == receiver or subject == sender:
                    continue
                if config.positive_only:
                    add_pf = _scaled(pf, config.weight)
                    add_ps = add_pf  # only positive evidence is transmitted
                else:
                    add_ps = _scaled(ps, config.weight)
                    add_pf = min(_scaled(pf, config.weight), add_ps)
                if add_ps:
                    table.merge_counts(subject, add_ps, add_pf)
            messages += 1
    return messages

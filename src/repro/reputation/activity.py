"""Activity-level classification (§3.2).

An intermediate node classifies the *activity* of a packet's source by
comparing the source's forwarded-packet count (as recorded in the observer's
own reputation table) against ``av``, the observer's mean forwarded count over
all known nodes:

* within ``[av - band*av, av + band*av]``  ->  medium (MI)
* below that range                          ->  low (LO)
* above that range                          ->  high (HI)

with ``band = 0.2`` in the paper.  Rewarding activity matters because a node
sitting in sleep mode is indistinguishable from one that left the network, so
sleeping never costs reputation directly — only the activity mechanism makes
idle listening pay (§1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.activity import Activity
from repro.reputation.records import ReputationTable

__all__ = ["ActivityClassifier"]


@dataclass(frozen=True)
class ActivityClassifier:
    """Classifies a known source node's activity from an observer's table."""

    band: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.band:
            raise ValueError(f"band must be non-negative, got {self.band}")

    def classify_value(self, forwarded: float, average: float) -> Activity:
        """Classify a raw forwarded count against an average.

        The medium band is inclusive at both ends; with ``average == 0`` a
        count of 0 is medium and any positive count is high.
        """
        lo = average - self.band * average
        hi = average + self.band * average
        if forwarded < lo:
            return Activity.LO
        if forwarded > hi:
            return Activity.HI
        return Activity.MI

    def classify(self, table: ReputationTable, source: int) -> Activity:
        """Classify ``source``'s activity as seen by the owner of ``table``.

        ``source`` must be known to the observer; unknown sources never reach
        the activity classifier (the strategy's unknown bit decides first).
        """
        if not table.knows(source):
            raise KeyError(
                f"activity undefined: node {source} unknown to this observer"
            )
        return self.classify_value(
            table.forwarded_count(source), table.average_forwarded()
        )

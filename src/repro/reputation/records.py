"""First-hand reputation records (§3.1).

Each node keeps, for every other node it has observed, a pair of counters:

* ``ps`` — packets it knows were *sent to* that node for forwarding,
* ``pf`` — of those, how many that node actually *forwarded*.

The forwarding rate ``fr = pf / ps`` feeds the trust lookup table
(:mod:`repro.reputation.trust`); the raw ``pf`` count feeds the activity
classifier (:mod:`repro.reputation.activity`).

The table additionally maintains two running aggregates — the number of known
nodes and the total forwarded count — so the activity average ``av`` is O(1)
per query instead of O(#known).  This matters: activity is queried once per
forwarding decision in the simulation hot loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

__all__ = ["ReputationRecord", "ReputationTable", "DEFAULT_UNKNOWN_RATE"]

#: Forwarding rate assumed for a node with no reputation data (§3.1:
#: "An unknown node has a forwarding rate set to 0.5").  Used by path rating.
DEFAULT_UNKNOWN_RATE = 0.5


@dataclass
class ReputationRecord:
    """Counters one observer keeps about one subject node."""

    ps: int = 0  # packets sent to the subject (observed forwarding requests)
    pf: int = 0  # packets the subject forwarded

    @property
    def rate(self) -> float:
        """Forwarding rate ``pf / ps``; raises if no observation exists."""
        if self.ps == 0:
            raise ValueError("forwarding rate undefined: no observations")
        return self.pf / self.ps


class ReputationTable:
    """All first-hand records held by a single observer node."""

    __slots__ = ("_records", "_pf_total")

    def __init__(self) -> None:
        self._records: Dict[int, ReputationRecord] = {}
        self._pf_total = 0

    # -- updates -----------------------------------------------------------

    def record(self, subject: int, forwarded: bool) -> None:
        """Record one observed decision (``forwarded`` or dropped) by ``subject``."""
        rec = self._records.get(subject)
        if rec is None:
            rec = ReputationRecord()
            self._records[subject] = rec
        rec.ps += 1
        if forwarded:
            rec.pf += 1
            self._pf_total += 1

    def merge_counts(self, subject: int, ps: int, pf: int) -> None:
        """Fold external counts into the record for ``subject``.

        Used by the second-hand exchange extension.  ``pf`` may not exceed
        ``ps`` and both must be non-negative.
        """
        if ps < 0 or pf < 0 or pf > ps:
            raise ValueError(f"invalid counts ps={ps} pf={pf}")
        if ps == 0:
            return
        rec = self._records.get(subject)
        if rec is None:
            rec = ReputationRecord()
            self._records[subject] = rec
        rec.ps += ps
        rec.pf += pf
        self._pf_total += pf

    def clear(self) -> None:
        """Forget everything (start of a new evaluation, §4.4 Step 1)."""
        self._records.clear()
        self._pf_total = 0

    # -- queries -----------------------------------------------------------

    def knows(self, subject: int) -> bool:
        """True if at least one observation about ``subject`` exists."""
        rec = self._records.get(subject)
        return rec is not None and rec.ps > 0

    def get(self, subject: int) -> ReputationRecord | None:
        """The record about ``subject`` or ``None`` if unknown."""
        return self._records.get(subject)

    def forwarding_rate(self, subject: int, default: float | None = None) -> float:
        """``fr(subject)`` or ``default`` when unknown.

        With ``default=None`` an unknown subject raises ``KeyError`` — callers
        that *must* distinguish unknown nodes should use :meth:`knows`.
        """
        rec = self._records.get(subject)
        if rec is None or rec.ps == 0:
            if default is None:
                raise KeyError(f"no reputation data about node {subject}")
            return default
        return rec.pf / rec.ps

    def forwarded_count(self, subject: int) -> int:
        """Raw ``pf`` count for ``subject`` (0 if unknown)."""
        rec = self._records.get(subject)
        return 0 if rec is None else rec.pf

    @property
    def n_known(self) -> int:
        """Number of nodes with at least one observation."""
        return len(self._records)

    @property
    def pf_total(self) -> int:
        """Sum of forwarded counts over all known nodes."""
        return self._pf_total

    def average_forwarded(self) -> float:
        """``av`` of §3.2: mean forwarded count over all known nodes.

        Returns 0.0 when no node is known (callers guard on :meth:`knows`
        for the source anyway, so this is only reachable in degenerate
        configurations).
        """
        if not self._records:
            return 0.0
        return self._pf_total / len(self._records)

    def subjects(self) -> Iterator[int]:
        """Iterate over the ids of all known nodes."""
        return iter(self._records)

    def snapshot(self) -> dict[int, tuple[int, int]]:
        """A ``{subject: (ps, pf)}`` copy — used by tests and the exchange."""
        return {s: (r.ps, r.pf) for s, r in self._records.items()}

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return f"ReputationTable(known={len(self._records)}, pf_total={self._pf_total})"

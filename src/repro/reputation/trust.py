"""Trust lookup table (§3.1, Fig. 1b).

The forwarding rate is mapped onto four discrete trust levels::

    rate in (0.9, 1.0]  ->  trust 3   (highest)
    rate in (0.6, 0.9]  ->  trust 2
    rate in (0.3, 0.6]  ->  trust 1
    rate in [0.0, 0.3]  ->  trust 0   (lowest)

The paper's worked example — a forwarding rate of 0.95 yields trust level 3 —
is asserted in the test suite.  The bin edges are configurable; the number of
levels is ``len(bounds) + 1``.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = ["TrustTable"]


def _default_bounds() -> tuple[float, ...]:
    return (0.3, 0.6, 0.9)


@dataclass(frozen=True)
class TrustTable:
    """Maps forwarding rate in [0, 1] to a discrete trust level.

    ``bounds`` are the *upper-inclusive* bin edges: a rate equal to a bound
    falls in the lower bin (0.9 -> level 2, 0.90001 -> level 3), matching the
    figure's half-open ranges read top-down.
    """

    bounds: tuple[float, ...] = field(default_factory=_default_bounds)

    def __post_init__(self) -> None:
        bounds = tuple(float(b) for b in self.bounds)
        if not bounds:
            raise ValueError("TrustTable needs at least one bound")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"bounds must be increasing, got {bounds}")
        if bounds[0] <= 0.0 or bounds[-1] >= 1.0:
            raise ValueError(f"bounds must lie strictly inside (0, 1), got {bounds}")
        object.__setattr__(self, "bounds", bounds)

    @property
    def n_levels(self) -> int:
        """Number of trust levels (paper: 4)."""
        return len(self.bounds) + 1

    @property
    def max_level(self) -> int:
        """The highest trust level (paper: 3)."""
        return len(self.bounds)

    def level(self, rate: float) -> int:
        """Trust level for a forwarding rate in [0, 1]."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"forwarding rate must be in [0, 1], got {rate}")
        # bisect_left counts the bounds strictly below `rate`; with
        # upper-inclusive bins that count is exactly the trust level.
        return bisect_left(self.bounds, rate)

    def __repr__(self) -> str:
        return f"TrustTable(bounds={self.bounds})"

"""Reputation substrate: first-hand records, trust levels, activity levels.

Implements §3.1 (reputation collection and trust evaluation) and §3.2
(activity evaluation) plus the optional second-hand exchange extension
(inspired by the paper's refs [1] CONFIDANT-rumours and [10] CORE).
"""

from repro.reputation.activity import ActivityClassifier
from repro.reputation.exchange import ExchangeConfig, exchange_reputation
from repro.reputation.records import (
    DEFAULT_UNKNOWN_RATE,
    ReputationRecord,
    ReputationTable,
)
from repro.reputation.trust import TrustTable

__all__ = [
    "ReputationRecord",
    "ReputationTable",
    "DEFAULT_UNKNOWN_RATE",
    "TrustTable",
    "ActivityClassifier",
    "ExchangeConfig",
    "exchange_reputation",
]

"""Reference simulation engine: the auditable object-oriented implementation.

Wraps :class:`~repro.core.node.Player` objects behind the
:class:`~repro.tournament.evaluation.SimulationEngine` protocol so the
generic evaluation loop can drive it.  This engine favours clarity over raw
speed; use :class:`repro.sim.fast.FastEngine` for large sweeps.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.node import ConstantlySelfishPlayer, NormalPlayer, Player
from repro.core.payoff import PayoffConfig
from repro.core.strategy import Strategy
from repro.game.stats import TournamentStats
from repro.paths.oracle import PathOracle
from repro.reputation.activity import ActivityClassifier
from repro.reputation.exchange import ExchangeConfig
from repro.reputation.trust import TrustTable
from repro.telemetry.runtime import get_telemetry
from repro.tournament.runner import run_tournament

__all__ = ["ReferenceEngine"]


class ReferenceEngine:
    """Simulation engine over :class:`Player` objects."""

    name = "reference"

    def __init__(
        self,
        n_population: int,
        max_selfish: int,
        trust_table: TrustTable | None = None,
        activity: ActivityClassifier | None = None,
        payoffs: PayoffConfig | None = None,
    ):
        if n_population < 1:
            raise ValueError(f"population must be >= 1, got {n_population}")
        if max_selfish < 0:
            raise ValueError(f"max_selfish must be >= 0, got {max_selfish}")
        self.n_population = n_population
        self.max_selfish = max_selfish
        self.trust_table = trust_table or TrustTable()
        self.activity = activity or ActivityClassifier()
        self.payoffs = payoffs or PayoffConfig()
        # Normal players get a placeholder strategy until set_strategies();
        # CSN ids follow the population block: N .. N + max_selfish - 1.
        self.players: dict[int, Player] = {
            pid: NormalPlayer(pid, Strategy.all_forward())
            for pid in range(n_population)
        }
        for k in range(max_selfish):
            pid = n_population + k
            self.players[pid] = ConstantlySelfishPlayer(pid)

    # -- SimulationEngine protocol ------------------------------------------

    @property
    def population_ids(self) -> Sequence[int]:
        return range(self.n_population)

    def selfish_ids(self, n: int) -> list[int]:
        if n > self.max_selfish:
            raise ValueError(
                f"environment needs {n} CSN, engine allocated {self.max_selfish}"
            )
        return [self.n_population + k for k in range(n)]

    def set_strategies(self, strategies: Sequence[Strategy]) -> None:
        """Install the generation's strategies into the normal players."""
        if len(strategies) != self.n_population:
            raise ValueError(
                f"expected {self.n_population} strategies, got {len(strategies)}"
            )
        for pid, strategy in enumerate(strategies):
            player = self.players[pid]
            assert isinstance(player, NormalPlayer)
            player.strategy = strategy

    def reset_generation(self) -> None:
        for player in self.players.values():
            player.reset_memory()
            player.reset_payoffs()

    def run_tournament(
        self,
        participants: Sequence[int],
        rounds: int,
        oracle: PathOracle,
        stats: TournamentStats,
        exchange: ExchangeConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        run_tournament(
            self.players,
            participants,
            rounds,
            oracle,
            self.trust_table,
            self.activity,
            self.payoffs,
            stats=stats,
            exchange=exchange,
            rng=rng,
        )
        # telemetry seam: the object-model runner stays untouched; counts
        # are derivable from the call signature alone
        tel = get_telemetry()
        if tel.enabled:
            tel.count("engine.tournaments")
            tel.count("engine.rounds", rounds)
            tel.count("engine.games", rounds * len(participants))

    def fitness(self) -> np.ndarray:
        return np.array(
            [self.players[pid].payoffs.fitness for pid in range(self.n_population)],
            dtype=float,
        )

    # -- introspection (tests, analysis) --------------------------------------

    def player(self, pid: int) -> Player:
        """Access a player object by id."""
        return self.players[pid]

    def payoff_matrix(self) -> np.ndarray:
        """(ps, pf) reputation state as a dense ``(M, M, 2)`` array.

        Row = observer, column = subject.  Used by the engine-equivalence
        tests to compare against the fast engine's native matrices.
        """
        m = self.n_population + self.max_selfish
        out = np.zeros((m, m, 2), dtype=np.int64)
        for pid, player in self.players.items():
            for subject, (ps, pf) in player.reputation.snapshot().items():
                out[pid, subject, 0] = ps
                out[pid, subject, 1] = pf
        return out

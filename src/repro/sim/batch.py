"""Batched struct-of-arrays simulation engine.

The third engine implementation: canonical state lives in dense numpy arrays
(struct-of-arrays instead of the reference engine's array-of-objects) —

* the trust/watchdog reputation counters as dense ``(M, M)`` ``int64``
  matrices (row = observer, column = subject) with ``known``/``pf_sum``
  aggregate vectors,
* payoff accounting as flat ``float64``/``int64`` vectors,
* strategies as row-per-player bit tuples, exported on demand as one
  ``(pop, STRATEGY_LENGTH)`` ``int8`` matrix (:attr:`strategy_matrix`),

and every tournament's game *setups* are pre-drawn in one batch through
:func:`repro.paths.oracle.plan_games` before a single packet moves.  Fitness
extraction, statistics folding and state export are single vectorized numpy
expressions over those arrays.

What is (and is not) batched
----------------------------
Profiling the fast engine at table-5 scale shows ~3/4 of the wall time goes
to drawing game setups and their per-call overhead, not to playing games.
Batching therefore concentrates there: the whole tournament schedule is drawn
up front via :meth:`RandomPathOracle.draw_tournament` (stream-identical to
per-game draws — see that method's contract) into raw struct-of-arrays
friendly tuples, skipping per-game ``GameSetup`` construction entirely.

The decision/watchdog recurrence itself is applied game-sequentially on
purpose: within a round, game ``g``'s watchdog updates feed game ``g+1``'s
path ratings and forwarding decisions (sources and deciders recur across the
round), so a bit-identical engine cannot reorder or speculate across games.
The per-game kernel instead strips everything the equivalence contract does
not require: statistics become eight integer counters folded into
:class:`TournamentStats` once per tournament, constantly selfish deciders
skip the trust/activity computation (their decision is fixed and their
intermediate payoff accumulators are dead state — fitness only reads the
evolving population), and all state access runs on plain-Python mirrors of
the canonical matrices, synchronised at tournament boundaries.

Invariants shared with the other engines (enforced by
``tests/test_engine_equivalence.py``):

* identical floating-point expression order in ratings, payoffs and fitness,
* identical tie-breaking in best-path selection (first index wins),
* identical consumption of the shared random stream: none in the game loop;
  pre-drawing only moves draw timing, never values (games consume no
  randomness), and the second-hand exchange consumes the caller's ``rng``
  exactly as the reference does.  With the exchange enabled the plan is
  built one round at a time, because the exchange and the oracle may share
  one generator and gossip draws interleave at round boundaries.

Works with all path oracles, and every production oracle supplies a native
batched fast path: ``RandomPathOracle.draw_tournament`` (inverse-CDF tables),
``TopologyPathOracle.draw_tournament`` (scope-filtered route table over the
native K-shortest-paths engine) and ``MobilePathOracle.draw_tournament``
(stream-identical stepping + route cache) — each pinned stream-identical to
its per-game ``draw``.  Oracles without one (e.g. scripted test oracles) are
pre-drawn per game in the same order through the :func:`plan_games` fallback
(their draws depend only on their own state, never on game outcomes).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.payoff import PayoffConfig
from repro.core.strategy import STRATEGY_LENGTH, UNKNOWN_BIT, Strategy
from repro.game.stats import TournamentStats
from repro.paths.oracle import PathOracle, plan_games
from repro.reputation.activity import ActivityClassifier
from repro.reputation.exchange import ExchangeConfig, exchange_reputation_flat
from repro.reputation.trust import TrustTable
from repro.telemetry.runtime import get_telemetry

__all__ = ["BatchEngine"]


class BatchEngine:
    """Struct-of-arrays implementation of the tournament semantics."""

    name = "batch"

    def __init__(
        self,
        n_population: int,
        max_selfish: int,
        trust_table: TrustTable | None = None,
        activity: ActivityClassifier | None = None,
        payoffs: PayoffConfig | None = None,
    ):
        if n_population < 1:
            raise ValueError(f"population must be >= 1, got {n_population}")
        if max_selfish < 0:
            raise ValueError(f"max_selfish must be >= 0, got {max_selfish}")
        self.n_population = n_population
        self.max_selfish = max_selfish
        self.trust_table = trust_table or TrustTable()
        self.activity = activity or ActivityClassifier()
        self.payoffs = payoffs or PayoffConfig()
        if self.trust_table.n_levels != 4:
            raise ValueError("BatchEngine is specialised to 4 trust levels")
        self.m = n_population + max_selfish
        # plain-Python parameters for the hot loop
        self._b0, self._b1, self._b2 = self.trust_table.bounds
        self._band = self.activity.band
        self._fwd_pay = tuple(self.payoffs.forward_by_trust)
        self._disc_pay = tuple(self.payoffs.discard_by_trust)
        self._default_trust = self.payoffs.default_trust
        self._src_success = self.payoffs.source_success
        self._src_failure = self.payoffs.source_failure
        # canonical struct-of-arrays state
        self._strategies: list[tuple[int, ...]] = [
            (1,) * STRATEGY_LENGTH for _ in range(n_population)
        ]
        self._alloc()

    def _alloc(self) -> None:
        m = self.m
        # reputation counters: row = observer, column = subject
        self.ps = np.zeros((m, m), dtype=np.int64)
        self.pf = np.zeros((m, m), dtype=np.int64)
        self.known = np.zeros(m, dtype=np.int64)
        self.pf_sum = np.zeros(m, dtype=np.int64)
        # payoff accounting, per player id
        self.send_pay = np.zeros(m, dtype=np.float64)
        self.fwd_pay_acc = np.zeros(m, dtype=np.float64)
        self.disc_pay_acc = np.zeros(m, dtype=np.float64)
        self.n_sent = np.zeros(m, dtype=np.int64)
        self.n_fwd = np.zeros(m, dtype=np.int64)
        self.n_disc = np.zeros(m, dtype=np.int64)

    # -- SimulationEngine protocol ------------------------------------------

    @property
    def population_ids(self) -> Sequence[int]:
        return range(self.n_population)

    def selfish_ids(self, n: int) -> list[int]:
        if n > self.max_selfish:
            raise ValueError(
                f"environment needs {n} CSN, engine allocated {self.max_selfish}"
            )
        return [self.n_population + k for k in range(n)]

    def set_strategies(self, strategies: Sequence[Strategy]) -> None:
        if len(strategies) != self.n_population:
            raise ValueError(
                f"expected {self.n_population} strategies, got {len(strategies)}"
            )
        self._strategies = [tuple(s.bits) for s in strategies]

    @property
    def strategy_matrix(self) -> np.ndarray:
        """The population's strategies as a ``(pop, STRATEGY_LENGTH)`` int8
        matrix — a derived view of the kernel's bit tuples, so the two can
        never drift apart."""
        return np.array(self._strategies, dtype=np.int8)

    def reset_generation(self) -> None:
        self._alloc()

    def run_tournament(
        self,
        participants: Sequence[int],
        rounds: int,
        oracle: PathOracle,
        stats: TournamentStats,
        exchange: ExchangeConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        do_exchange = exchange is not None and exchange.enabled
        if do_exchange and rng is None:
            raise ValueError("reputation exchange requires an rng")
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        participants = list(participants)

        # pull canonical arrays into plain-Python mirrors for the scalar
        # kernel (single-element list access beats numpy scalar boxing ~3x)
        ps = self.ps.tolist()
        pf = self.pf.tolist()
        known = self.known.tolist()
        pf_sum = self.pf_sum.tolist()
        send_pay = self.send_pay.tolist()
        fwd_acc = self.fwd_pay_acc.tolist()
        disc_acc = self.disc_pay_acc.tolist()
        n_sent = self.n_sent.tolist()
        n_fwd = self.n_fwd.tolist()
        n_disc = self.n_disc.tolist()

        strategies = self._strategies
        n_pop = self.n_population
        b0, b1, b2 = self._b0, self._b1, self._b2
        band = self._band
        fwd_table, disc_table = self._fwd_pay, self._disc_pay
        default_trust = self._default_trust
        src_success, src_failure = self._src_success, self._src_failure

        # tournament-level statistics, folded into ``stats`` at the end
        nn_orig = nn_del = csn_orig = csn_del = 0
        nn_chosen = nn_free = csn_chosen = csn_free = 0
        # forwarding requests: index = source_selfish*4 + responder_selfish*2
        # + forwarded
        req = [0] * 8

        # telemetry seam: one enabled check per tournament; the per-game hot
        # loop below never touches the recorder (zero-overhead contract)
        tel = get_telemetry()
        if not tel.enabled:
            tel = None

        if do_exchange:
            # gossip draws interleave with oracle draws at round boundaries
            # when both share a generator: plan one round at a time.
            n_passes = rounds
            whole_plan = None
        else:
            # nothing else consumes the oracle's generator mid-tournament:
            # draw the full schedule in one batch and play it as one pass
            n_passes = 1
            if tel is None:
                whole_plan = plan_games(oracle, participants * rounds, participants)
            else:
                with tel.registry.timer("engine.plan_s").time():
                    whole_plan = plan_games(
                        oracle, participants * rounds, participants
                    )

        for round_no in range(n_passes):
            pass_span = tel.span("round") if tel is not None else None
            if pass_span is not None:
                pass_span.__enter__()
            if whole_plan is not None:
                round_plan = whole_plan
            elif tel is None:
                round_plan = plan_games(oracle, participants, participants)
            else:
                with tel.registry.timer("engine.plan_s").time():
                    round_plan = plan_games(oracle, participants, participants)

            for source, destination, paths in round_plan:
                source_selfish = source >= n_pop

                # -- best-path selection (mirrors paths.rating exactly;
                #    ratings are >= 0.0, so the -1.0 sentinel makes path 0
                #    win the first comparison and ties keep the first index)
                ps_s, pf_s = ps[source], pf[source]
                best_i = 0
                best_r = -1.0
                for i, candidate in enumerate(paths):
                    r = 1.0
                    for node in candidate:
                        c = ps_s[node]
                        r *= (pf_s[node] / c) if c else 0.5
                    if r > best_r:
                        best_i, best_r = i, r
                path = paths[best_i]

                contains_csn = False
                for node in path:
                    if node >= n_pop:
                        contains_csn = True
                        break
                if source_selfish:
                    csn_chosen += 1
                    if not contains_csn:
                        csn_free += 1
                else:
                    nn_chosen += 1
                    if not contains_csn:
                        nn_free += 1

                # -- sequential decisions -----------------------------------
                deciders: list[int] = []
                flags: list[bool] = []
                trusts: list[int | None] = []
                success = True
                req_base = 4 if source_selfish else 0
                for j in path:
                    c = ps[j][source]
                    if j >= n_pop:
                        # CSN: decision fixed, trust/activity never needed —
                        # its intermediate payoff accumulators are dead state
                        forward = False
                        trust: int | None = None
                        req[req_base + 2] += 1
                    else:
                        if c == 0:
                            trust = None
                            forward = strategies[j][UNKNOWN_BIT] == 1
                        else:
                            fj = pf[j][source]
                            rate = fj / c
                            trust = (
                                3
                                if rate > b2
                                else 2
                                if rate > b1
                                else 1
                                if rate > b0
                                else 0
                            )
                            av = pf_sum[j] / known[j]
                            act = (
                                0
                                if fj < av - band * av
                                else 2
                                if fj > av + band * av
                                else 1
                            )
                            forward = strategies[j][trust * 3 + act] == 1
                        req[req_base + (1 if forward else 0)] += 1
                    deciders.append(j)
                    flags.append(forward)
                    trusts.append(trust)
                    if not forward:
                        success = False
                        break

                # -- payoffs (same accumulation order as the reference) -----
                send_pay[source] += src_success if success else src_failure
                n_sent[source] += 1
                n_decided = len(deciders)
                for idx in range(n_decided):
                    j = deciders[idx]
                    if j >= n_pop:
                        continue  # dead state, see above
                    t = trusts[idx]
                    level = default_trust if t is None else t
                    if flags[idx]:
                        fwd_acc[j] += fwd_table[level]
                        n_fwd[j] += 1
                    else:
                        disc_acc[j] += disc_table[level]
                        n_disc[j] += 1

                # -- watchdog reputation updates ----------------------------
                updaters = deciders if success else deciders[: n_decided - 1]
                for u in (source, *updaters):
                    ps_u, pf_u = ps[u], pf[u]
                    ku, su = known[u], pf_sum[u]
                    for idx in range(n_decided):
                        j = deciders[idx]
                        if j != u:
                            if ps_u[j] == 0:
                                ku += 1
                            ps_u[j] += 1
                            if flags[idx]:
                                pf_u[j] += 1
                                su += 1
                    known[u], pf_sum[u] = ku, su

                if source_selfish:
                    csn_orig += 1
                    if success:
                        csn_del += 1
                else:
                    nn_orig += 1
                    if success:
                        nn_del += 1

            if pass_span is not None:
                pass_span.__exit__(None, None, None)
            if do_exchange and (round_no + 1) % exchange.interval == 0:
                if tel is None:
                    exchange_reputation_flat(
                        ps, pf, known, pf_sum, participants, exchange, rng
                    )
                else:
                    with tel.registry.timer("engine.exchange_s").time():
                        exchange_reputation_flat(
                            ps, pf, known, pf_sum, participants, exchange, rng
                        )

        if tel is not None:
            tel.count("engine.tournaments")
            tel.count("engine.rounds", rounds)
            tel.count("engine.games", rounds * len(participants))

        # -- fold statistics and push mirrors back to the canonical arrays --
        stats.nn_originated += nn_orig
        stats.nn_delivered += nn_del
        stats.csn_originated += csn_orig
        stats.csn_delivered += csn_del
        stats.nn_paths_chosen += nn_chosen
        stats.nn_csn_free_paths += nn_free
        stats.csn_paths_chosen += csn_chosen
        stats.csn_csn_free_paths += csn_free
        from_nn, from_csn = stats.requests_from_nn, stats.requests_from_csn
        from_nn.rejected_by_nn += req[0]
        from_nn.accepted_by_nn += req[1]
        from_nn.rejected_by_csn += req[2]
        from_nn.accepted_by_csn += req[3]
        from_csn.rejected_by_nn += req[4]
        from_csn.accepted_by_nn += req[5]
        from_csn.rejected_by_csn += req[6]
        from_csn.accepted_by_csn += req[7]

        self.ps = np.asarray(ps, dtype=np.int64)
        self.pf = np.asarray(pf, dtype=np.int64)
        self.known = np.asarray(known, dtype=np.int64)
        self.pf_sum = np.asarray(pf_sum, dtype=np.int64)
        self.send_pay = np.asarray(send_pay, dtype=np.float64)
        self.fwd_pay_acc = np.asarray(fwd_acc, dtype=np.float64)
        self.disc_pay_acc = np.asarray(disc_acc, dtype=np.float64)
        self.n_sent = np.asarray(n_sent, dtype=np.int64)
        self.n_fwd = np.asarray(n_fwd, dtype=np.int64)
        self.n_disc = np.asarray(n_disc, dtype=np.int64)

    def fitness(self) -> np.ndarray:
        """Eq. (1) fitness, vectorized over the payoff arrays.

        Same expression order as the scalar engines: ``(send + fwd + disc)``
        summed left-to-right, divided by the event count; players with no
        events score 0.0.
        """
        pop = slice(0, self.n_population)
        events = self.n_sent[pop] + self.n_fwd[pop] + self.n_disc[pop]
        totals = self.send_pay[pop] + self.fwd_pay_acc[pop] + self.disc_pay_acc[pop]
        out = np.zeros(self.n_population, dtype=np.float64)
        np.divide(totals, events, out=out, where=events > 0)
        return out

    # -- introspection (tests, analysis) --------------------------------------

    def payoff_matrix(self) -> np.ndarray:
        """Reputation state as ``(M, M, 2)`` — same layout as the reference."""
        out = np.empty((self.m, self.m, 2), dtype=np.int64)
        out[:, :, 0] = self.ps
        out[:, :, 1] = self.pf
        return out

"""Simulation engines.

Five interchangeable implementations of the tournament semantics:

* :class:`repro.sim.reference.ReferenceEngine` — object-oriented, built from
  the auditable :mod:`repro.game` / :mod:`repro.core` pieces, supports event
  observation;
* :class:`repro.sim.fast.FastEngine` — flat-array hot loop for large
  reproduction sweeps;
* :class:`repro.sim.batch.BatchEngine` — struct-of-arrays numpy state with
  batched tournament-schedule drawing, the fastest *bit-identical* engine;
* :class:`repro.sim.turbo.TurboEngine` — speculative round-vectorized engine
  under a **statistical** (distributional) equivalence contract: vectorized
  tournament draws and per-round game slates with conflict replay, validated
  by ``tests/test_engine_statistical.py`` rather than the bit-identity suite;
* :class:`repro.sim.fused.FusedEngine` — turbo's slate kernel widened to a
  whole generation: all tournaments of a generation are planned and executed
  as one stacked round-major pass (same statistical contract, one more
  tolerated relaxation: cross-tournament round lockstep).
  :func:`repro.tournament.evaluation.evaluate_generation` dispatches to its
  ``run_generation`` entry point via ``supports_generation_fusion``.

All engines support every path oracle (random/topology/mobile) and the
second-hand reputation-exchange extension.  The engines named in
:data:`BIT_IDENTICAL_ENGINES` consume randomness through the shared path
oracle and scheduler only and produce bit-identical trajectories under
identical seeds (see ``tests/test_engine_equivalence.py``); ``turbo``
reproduces the same outcome *distributions* (cooperation, fitness, Tables
5-9 aggregates) without replaying the same trajectories.
"""

from repro.sim.batch import BatchEngine
from repro.sim.fast import FastEngine
from repro.sim.fused import FusedEngine
from repro.sim.reference import ReferenceEngine
from repro.sim.stacked import StackedFusedEngine
from repro.sim.turbo import TurboEngine

__all__ = [
    "ReferenceEngine",
    "FastEngine",
    "BatchEngine",
    "TurboEngine",
    "FusedEngine",
    "StackedFusedEngine",
    "ENGINES",
    "BIT_IDENTICAL_ENGINES",
    "make_engine",
]

#: Engine registry, keyed by the ``--engine`` selector name.
ENGINES = {
    "reference": ReferenceEngine,
    "fast": FastEngine,
    "batch": BatchEngine,
    "turbo": TurboEngine,
    "fused": FusedEngine,
}

#: Engines guaranteed to produce identical trajectories under identical
#: seeds.  ``turbo`` is deliberately absent: its contract is statistical
#: equivalence (same outcome distributions, different trajectories).
BIT_IDENTICAL_ENGINES = ("reference", "fast", "batch")


def make_engine(
    name: str,
    n_population: int,
    max_selfish: int,
    trust_table=None,
    activity=None,
    payoffs=None,
    kernel: str = "auto",
):
    """Factory: build an engine by name (``"reference"``, ``"fast"``,
    ``"batch"``, ``"turbo"`` or ``"fused"``).

    ``kernel`` selects the compute backend for engines that route their hot
    ops through :mod:`repro.sim.kernels` (``supports_kernel_backends``).
    Engines with a fixed implementation ignore ``"auto"``/``"numpy"``
    (their native code *is* the numpy reference) but reject an explicit
    ``"numba"`` request they cannot honour.
    """
    from repro.core.payoff import PayoffConfig
    from repro.reputation.activity import ActivityClassifier
    from repro.reputation.trust import TrustTable

    trust_table = trust_table if trust_table is not None else TrustTable()
    activity = activity if activity is not None else ActivityClassifier()
    payoffs = payoffs if payoffs is not None else PayoffConfig()
    cls = ENGINES.get(name)
    if cls is None:
        raise ValueError(
            f"unknown engine {name!r} (expected one of {sorted(ENGINES)})"
        )
    if getattr(cls, "supports_kernel_backends", False):
        return cls(
            n_population, max_selfish, trust_table, activity, payoffs,
            kernel=kernel,
        )
    if kernel == "numba":
        raise ValueError(
            f"engine {name!r} does not support kernel backends;"
            " --kernel numba requires --engine turbo or fused"
        )
    return cls(n_population, max_selfish, trust_table, activity, payoffs)

"""Simulation engines.

Two interchangeable implementations of the tournament semantics:

* :class:`repro.sim.reference.ReferenceEngine` — object-oriented, built from
  the auditable :mod:`repro.game` / :mod:`repro.core` pieces, supports event
  observation and the reputation-exchange extension;
* :class:`repro.sim.fast.FastEngine` — flat-array hot loop for large
  reproduction sweeps.

Both consume randomness through the shared path oracle and scheduler only, so
identical seeds give bit-identical trajectories (see
``tests/test_engine_equivalence.py``).
"""

from repro.sim.fast import FastEngine
from repro.sim.reference import ReferenceEngine

__all__ = ["ReferenceEngine", "FastEngine", "make_engine"]


def make_engine(
    name: str,
    n_population: int,
    max_selfish: int,
    trust_table=None,
    activity=None,
    payoffs=None,
):
    """Factory: build an engine by name (``"reference"`` or ``"fast"``)."""
    from repro.core.payoff import PayoffConfig
    from repro.reputation.activity import ActivityClassifier
    from repro.reputation.trust import TrustTable

    trust_table = trust_table if trust_table is not None else TrustTable()
    activity = activity if activity is not None else ActivityClassifier()
    payoffs = payoffs if payoffs is not None else PayoffConfig()
    if name == "reference":
        return ReferenceEngine(n_population, max_selfish, trust_table, activity, payoffs)
    if name == "fast":
        return FastEngine(n_population, max_selfish, trust_table, activity, payoffs)
    raise ValueError(f"unknown engine {name!r} (expected 'reference' or 'fast')")

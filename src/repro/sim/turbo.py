"""Speculative round-vectorized "turbo" simulation engine.

The fourth engine, and the first to relax the equivalence contract: turbo is
**statistically equivalent** to the reference trajectory distribution, not
bit-identical to any single trajectory.  The relaxation buys back the two
costs that bound the bit-identical engines:

* **Game setups** are drawn for the whole tournament in a handful of numpy
  operations (:func:`repro.paths.vector.plan_tournament_arrays`) instead of
  per-game RNG calls — distributionally identical to the sequential sampler,
  but consuming the generator in a different order, so trajectories diverge.
* **The game loop** is vectorized per round.  The bit-identical engines must
  play a round's games sequentially because game ``g``'s watchdog updates
  feed game ``g + 1``'s path ratings and forwarding decisions.  Turbo instead
  *speculates*: every game of a round is decided in one vectorized pass from
  the round-start reputation matrices, then a **conflict pass** walks the
  round in game order and flags games whose decision-relevant reputation
  pairs — ``(intermediate, source)`` and ``(source, intermediate)`` for the
  speculatively chosen path — were written by an earlier game of the same
  round.  Non-conflicting games commit their speculative outcome in one
  batched scatter; conflicting games are **replayed** through the exact
  per-game scalar kernel against the live matrices.

What the speculation changes, precisely
---------------------------------------
A non-conflicting game's decision inputs are untouched by the round's earlier
writes, so its speculative decisions equal the sequential ones *except* for
three tolerated staleness/ordering effects, which are the entire statistical
relaxation:

* activity averages (``pf_sum / known``) are aggregates over a whole observer
  row; they may lag intra-round writes that the pair-granular conflict pass
  does not track,
* ratings of *non-chosen* candidate paths may be stale (only the chosen
  path's pairs are checked), which can flip near-tie path choices,
* batched commits land before the round's replays, a reordering of writes
  within the round,
* the conflict pass records each game's *speculative* write pairs — a
  replayed game's actual writes (it may choose a different path against
  live state) are not re-checked against later games of the round, so a
  later game can consume a pair a replay touched without itself replaying.

All four perturb *which* of two near-equivalent micro-outcomes occurs, never
the distributions the paper reports (cooperation level, fitness, Tables 5-9
aggregates).  ``tests/test_engine_statistical.py`` holds turbo to that claim
with two-sample KS / Mann-Whitney gates against a bit-identical engine over
seeded replication ensembles, and ``tests/test_properties_simulation.py`` /
``tests/test_sim_turbo.py`` pin the invariants that must stay *exact*
(counter consistency, conservation, ``pf <= ps``).

Implementation shape
--------------------
Per-op numpy dispatch dominates at round granularity (a table-5 round is 50
games), so the engine splits work by *when its inputs bind*:

* bound at plan time — decision/rating gather indices, CSN masks, strategy
  row bases — is precomputed once per tournament (:class:`_PlanContext`);
* bound at round start — reputation-dependent ratings, decisions, watchdog
  writes — runs in the per-round vectorized pass;
* bound at nothing (payoff accumulators, statistics counters: dead state
  until the tournament ends) is buffered per round and folded in one
  vectorized pass per tournament.

Like every engine, turbo supports all path oracles and the second-hand
exchange; non-random oracles (topology, mobile, scripted) are planned through
the sequential :func:`plan_games` path and only the game loop is speculated.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.payoff import PayoffConfig
from repro.core.strategy import STRATEGY_LENGTH, UNKNOWN_BIT, Strategy
from repro.game.stats import TournamentStats
from repro.paths.oracle import PathOracle
from repro.paths.vector import GamePlanArrays, plan_tournament_arrays
from repro.reputation.activity import ActivityClassifier
from repro.reputation.exchange import ExchangeConfig, exchange_reputation_flat
from repro.reputation.trust import TrustTable
from repro.telemetry.runtime import get_telemetry

__all__ = ["TurboEngine"]


class _PlanContext:
    """Everything about a tournament plan that does not depend on reputation
    state, precomputed once so the per-round pass is pure gathers and ufuncs.
    """

    __slots__ = (
        "plan",
        "games_per_round",
        "pg_rel",
        "cells_rate",
        "pad_path",
        "jc",
        "valid",
        "is_csn",
        "has_csn",
        "src_sel",
        "src_round_m",
        "src_list",
        "hrange",
        "grange",
        "writer_buf",
        "ratings_buf",
        "obs_buf",
        "decided_b",
        "fwd_b",
        "unknown_b",
        "trust_b",
        "chosen_b",
        "success_b",
        "keep_b",
    )

    def __init__(self, plan: GamePlanArrays, games_per_round: int, m: int, n_pop: int):
        self.plan = plan
        self.games_per_round = games_per_round
        src_of_path = plan.src[plan.path_game]
        nodes = plan.path_nodes
        valid = nodes >= 0
        self.pad_path = ~valid
        node0 = np.where(valid, nodes, 0)
        # rating reads: the source's opinion of each candidate-path node
        self.cells_rate = src_of_path[:, None] * m + node0
        # the game's path rows, relative to its round (for the ratings
        # scatter; games per round is constant, so a modulo does it)
        self.pg_rel = plan.path_game % games_per_round
        # decision reads: each node's opinion of the source.  The per-cell
        # index and strategy-base tables ((j * m + src), (j * STRATEGY_LEN))
        # are *not* precomputed per path row — only the chosen path's row is
        # ever read, so the round pass derives them from its (games, hmax)
        # gather of ``jc``, which is cheaper than materialising (P, H).
        self.jc = node0
        self.valid = valid
        self.is_csn = nodes >= n_pop
        self.has_csn = self.is_csn.any(axis=1)
        self.src_sel = plan.src >= n_pop
        # every round's source order is the participants list, so the
        # round-constant pieces are hoisted once
        src_round = plan.src[:games_per_round]
        self.src_round_m = src_round * m
        self.src_list = plan.src.tolist()
        n_games = plan.n_games
        h = nodes.shape[1]
        self.hrange = np.arange(h)
        self.grange = np.arange(games_per_round, dtype=np.int64)
        self.writer_buf = np.empty(m * m + 1, dtype=np.int64)
        self.ratings_buf = np.empty(
            (games_per_round, max(plan.max_paths, 1)), dtype=np.float64
        )
        self.obs_buf = np.empty((games_per_round, h + 1), dtype=np.int64)
        self.obs_buf[:, 0] = src_round
        # per-game speculative outcomes, buffered for the tournament-end
        # fold; the round pass computes straight into slices of these
        self.decided_b = np.zeros((n_games, h), dtype=bool)
        self.fwd_b = np.zeros((n_games, h), dtype=bool)
        self.unknown_b = np.zeros((n_games, h), dtype=bool)
        self.trust_b = np.zeros((n_games, h), dtype=np.int64)
        self.chosen_b = np.zeros(n_games, dtype=np.int64)
        self.success_b = np.zeros(n_games, dtype=bool)
        self.keep_b = np.ones(n_games, dtype=bool)


class TurboEngine:
    """Round-vectorized speculative implementation of the tournament
    semantics (statistical-equivalence contract)."""

    name = "turbo"

    def __init__(
        self,
        n_population: int,
        max_selfish: int,
        trust_table: TrustTable | None = None,
        activity: ActivityClassifier | None = None,
        payoffs: PayoffConfig | None = None,
    ):
        if n_population < 1:
            raise ValueError(f"population must be >= 1, got {n_population}")
        if max_selfish < 0:
            raise ValueError(f"max_selfish must be >= 0, got {max_selfish}")
        self.n_population = n_population
        self.max_selfish = max_selfish
        self.trust_table = trust_table or TrustTable()
        self.activity = activity or ActivityClassifier()
        self.payoffs = payoffs or PayoffConfig()
        if self.trust_table.n_levels != 4:
            raise ValueError("TurboEngine is specialised to 4 trust levels")
        self.m = n_population + max_selfish
        self._bounds = np.asarray(self.trust_table.bounds, dtype=np.float64)
        self._b0, self._b1, self._b2 = self.trust_table.bounds
        self._band = self.activity.band
        self._fwd_pay = np.asarray(self.payoffs.forward_by_trust, dtype=np.float64)
        self._disc_pay = np.asarray(self.payoffs.discard_by_trust, dtype=np.float64)
        self._default_trust = self.payoffs.default_trust
        self._src_success = self.payoffs.source_success
        self._src_failure = self.payoffs.source_failure
        self._strategies: list[tuple[int, ...]] = [
            (1,) * STRATEGY_LENGTH for _ in range(n_population)
        ]
        self._rebuild_strategy_table()
        #: games replayed through the exact kernel in the last tournament —
        #: instrumentation for tests and the perf bench
        self._replayed_games = 0
        self._alloc()

    def _rebuild_strategy_table(self) -> None:
        # (m * STRATEGY_LENGTH,) int8: population strategies then zeros, so
        # CSN gather rows read as "never forward" without masking
        table = np.zeros(self.m * STRATEGY_LENGTH, dtype=np.int8)
        flat = np.array(self._strategies, dtype=np.int8).reshape(-1)
        table[: flat.size] = flat
        self._strat_flat = table

    def _alloc(self) -> None:
        m = self.m
        # canonical state: same layout as the batch engine, always numpy
        self.ps = np.zeros((m, m), dtype=np.int64)
        self.pf = np.zeros((m, m), dtype=np.int64)
        self.known = np.zeros(m, dtype=np.int64)
        self.pf_sum = np.zeros(m, dtype=np.int64)
        self.send_pay = np.zeros(m, dtype=np.float64)
        self.fwd_pay_acc = np.zeros(m, dtype=np.float64)
        self.disc_pay_acc = np.zeros(m, dtype=np.float64)
        self.n_sent = np.zeros(m, dtype=np.int64)
        self.n_fwd = np.zeros(m, dtype=np.int64)
        self.n_disc = np.zeros(m, dtype=np.int64)

    # -- SimulationEngine protocol ------------------------------------------

    @property
    def population_ids(self) -> Sequence[int]:
        return range(self.n_population)

    def selfish_ids(self, n: int) -> list[int]:
        if n > self.max_selfish:
            raise ValueError(
                f"environment needs {n} CSN, engine allocated {self.max_selfish}"
            )
        return [self.n_population + k for k in range(n)]

    def set_strategies(self, strategies: Sequence[Strategy]) -> None:
        if len(strategies) != self.n_population:
            raise ValueError(
                f"expected {self.n_population} strategies, got {len(strategies)}"
            )
        self._strategies = [tuple(s.bits) for s in strategies]
        self._rebuild_strategy_table()

    @property
    def strategy_matrix(self) -> np.ndarray:
        """The population's strategies as a ``(pop, STRATEGY_LENGTH)`` int8
        matrix — derived from the kernel's bit tuples, so the two can never
        drift apart."""
        return np.array(self._strategies, dtype=np.int8)

    def reset_generation(self) -> None:
        self._alloc()

    # -- tournament ---------------------------------------------------------

    def run_tournament(
        self,
        participants: Sequence[int],
        rounds: int,
        oracle: PathOracle,
        stats: TournamentStats,
        exchange: ExchangeConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        do_exchange = exchange is not None and exchange.enabled
        if do_exchange and rng is None:
            raise ValueError("reputation exchange requires an rng")
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        participants = list(participants)
        games_per_round = len(participants)
        # telemetry seam: one enabled check per tournament; the speculative
        # round kernel below never touches the recorder (zero-overhead
        # contract)
        tel = get_telemetry()
        if not tel.enabled:
            tel = None
        # The whole tournament is pre-drawn even with the exchange enabled:
        # gossip draws then trail the oracle draws on a shared generator
        # instead of interleaving at round boundaries — a stream reordering
        # the statistical contract tolerates (the bit-identical engines must
        # plan per round here).
        if tel is None:
            plan = plan_tournament_arrays(
                oracle, participants * rounds, participants
            )
            ctx = _PlanContext(plan, games_per_round, self.m, self.n_population)
        else:
            with tel.registry.timer("engine.plan_s").time():
                plan = plan_tournament_arrays(
                    oracle, participants * rounds, participants
                )
                ctx = _PlanContext(
                    plan, games_per_round, self.m, self.n_population
                )
        # replay contributions accumulate here; speculative outcomes are
        # folded vectorized at the end (dead state during the tournament)
        req = np.zeros(9, dtype=np.int64)
        delivered = np.zeros(4, dtype=np.int64)
        csn_free = np.zeros(4, dtype=np.int64)
        self._replayed_games = 0

        for round_no in range(rounds):
            round_span = tel.span("round") if tel is not None else None
            if round_span is not None:
                round_span.__enter__()
            self._process_round(ctx, round_no, req, delivered, csn_free)
            if round_span is not None:
                round_span.__exit__(None, None, None)
            if do_exchange and (round_no + 1) % exchange.interval == 0:
                if tel is None:
                    self._run_exchange(participants, exchange, rng)
                else:
                    with tel.registry.timer("engine.exchange_s").time():
                        self._run_exchange(participants, exchange, rng)

        if tel is None:
            self._fold_tournament(ctx, req, delivered, csn_free)
        else:
            with tel.registry.timer("engine.fold_s").time():
                self._fold_tournament(ctx, req, delivered, csn_free)
            tel.count("engine.tournaments")
            tel.count("engine.rounds", rounds)
            tel.count("engine.games", rounds * games_per_round)
            tel.count("engine.turbo.replayed_games", self._replayed_games)

        self._merge_stats(stats, req, delivered, csn_free)

    @staticmethod
    def _merge_stats(
        stats: TournamentStats,
        req: np.ndarray,
        delivered: np.ndarray,
        csn_free: np.ndarray,
    ) -> None:
        """Fold the accumulator arrays into the caller's stats object."""
        stats.nn_originated += int(delivered[0] + delivered[1])
        stats.nn_delivered += int(delivered[1])
        stats.csn_originated += int(delivered[2] + delivered[3])
        stats.csn_delivered += int(delivered[3])
        stats.nn_paths_chosen += int(csn_free[0] + csn_free[1])
        stats.nn_csn_free_paths += int(csn_free[0])
        stats.csn_paths_chosen += int(csn_free[2] + csn_free[3])
        stats.csn_csn_free_paths += int(csn_free[2])
        from_nn, from_csn = stats.requests_from_nn, stats.requests_from_csn
        from_nn.rejected_by_nn += int(req[0])
        from_nn.accepted_by_nn += int(req[1])
        from_nn.rejected_by_csn += int(req[2])
        from_nn.accepted_by_csn += int(req[3])
        from_csn.rejected_by_nn += int(req[4])
        from_csn.accepted_by_nn += int(req[5])
        from_csn.rejected_by_csn += int(req[6])
        from_csn.accepted_by_csn += int(req[7])

    def _process_round(
        self,
        ctx: _PlanContext,
        round_no: int,
        req: np.ndarray,
        delivered: np.ndarray,
        csn_free: np.ndarray,
    ) -> None:
        m = self.m
        plan = ctx.plan
        ps_flat = self.ps.reshape(-1)
        pf_flat = self.pf.reshape(-1)
        g0 = round_no * ctx.games_per_round
        g1 = g0 + ctx.games_per_round
        p0 = int(plan.game_path_start[g0])
        p1 = int(plan.game_path_start[g1])
        n_games = g1 - g0

        # -- speculative path ratings from round-start state ----------------
        # every pass below is sliced to the round's real maximum path width
        # (hmax columns) — the plan arrays are padded to the *tournament's*
        # longest path, which the route-table oracles can push to 2-3x the
        # typical game's, and the padding columns are pure dead work
        hmax_r = int(plan.path_len[p0:p1].max()) if p1 > p0 else 1
        cells = ctx.cells_rate[p0:p1, :hmax_r]
        c = ps_flat.take(cells)
        zero = c == 0
        np.maximum(c, 1, out=c)
        d = pf_flat.take(cells) / c
        d[zero] = 0.5
        d[ctx.pad_path[p0:p1, :hmax_r]] = 1.0
        ratings = d.prod(axis=1)

        # -- best path per game (first index wins ties, as the trio does) ---
        buf = ctx.ratings_buf
        buf.fill(-1.0)
        buf[ctx.pg_rel[p0:p1], plan.path_col[p0:p1]] = ratings
        chosen = ctx.chosen_b[g0:g1]
        np.add(plan.game_path_start[g0:g1], buf.argmax(axis=1), out=chosen)

        # -- speculative sequential decisions, vectorized over games --------
        # computed straight into the tournament-fold buffers where possible;
        # the fold buffers beyond this round's hmax stay zero-initialised,
        # which reads as "not decided / not forwarded" — exactly right
        hmax = int(plan.path_len[chosen].max())
        valid = ctx.valid[chosen, :hmax]
        jc = ctx.jc[chosen, :hmax]
        src_round = ctx.obs_buf[:, 0]
        cells_dec = jc * m
        cells_dec += src_round[:, None]
        c2 = ps_flat.take(cells_dec)
        f2 = pf_flat.take(cells_dec)
        unknown = ctx.unknown_b[g0:g1, :hmax]
        np.equal(c2, 0, out=unknown)
        np.maximum(c2, 1, out=c2)
        rate = f2 / c2
        trust = ctx.trust_b[g0:g1, :hmax]
        trust[:] = np.searchsorted(
            self._bounds, rate.ravel(), side="left"
        ).reshape(rate.shape)
        kn = self.known.take(jc)
        np.maximum(kn, 1, out=kn)
        av = self.pf_sum.take(jc) / kn
        delta = self._band * av
        bit = trust * 3
        bit += 1
        bit += f2 > av + delta
        bit -= f2 < av - delta
        np.copyto(bit, UNKNOWN_BIT, where=unknown)
        # strategy row base derived in place: CSN rows resolve into the
        # zero-padded tail of the strategy table, so no masking is needed
        bit += jc * STRATEGY_LENGTH
        fwd = ctx.fwd_b[g0:g1, :hmax]
        np.equal(self._strat_flat.take(bit), 1, out=fwd)
        fwd &= valid
        prefix = np.logical_and.accumulate(fwd | ~valid, axis=1)
        decided = ctx.decided_b[g0:g1, :hmax]
        np.copyto(decided, valid)
        decided[:, 1:] &= prefix[:, :-1]
        success = ctx.success_b[g0:g1]
        success[:] = prefix[:, -1]
        n_dec = decided.sum(axis=1)

        # -- conflict pass: pair-granular reads vs earlier writes ------------
        # watchdog write pairs (observer, subject) with out-of-range
        # sentinels: invalid entries land at >= m*m and are filtered out.
        # The observer sentinel is m (pair = m*m + subj >= m*m); the subject
        # sentinel must be m*m itself — a subject sentinel of m would fold
        # into the valid pair (obs + 1, 0).
        upd_ok = decided & (
            success[:, None] | (ctx.hrange[:hmax] < (n_dec - 1)[:, None])
        )
        obs = ctx.obs_buf[:, : hmax + 1]  # column 0 is the source id
        np.copyto(obs[:, 1:], jc)
        np.copyto(obs[:, 1:], m, where=~upd_ok)
        subj = np.where(decided, jc, m * m)
        pair = obs[:, :, None] * m + subj[:, None, :]
        pair[obs[:, :, None] == subj[:, None, :]] = m * m
        pair2 = pair.reshape(n_games, -1)
        w_ok = pair2 < m * m
        w_counts = w_ok.sum(axis=1)
        w_vals = pair2[w_ok]
        # decision reads (j, s) are exactly the decided cells; rating reads
        # (s, j) cover the decided prefix of the chosen path (staleness on
        # nodes past a drop only perturbs already-tolerated path ratings)
        r1 = cells_dec[decided]
        r2 = (ctx.src_round_m[:, None] + jc)[decided]

        # -- vectorized walk: a game conflicts iff one of its read pairs was
        # (speculatively) written by a strictly earlier game of the round.
        # first_writer[pair] = earliest game writing it; every game's writes
        # count, kept or not — exactly the sequential walk's written-set.
        first_writer = ctx.writer_buf
        first_writer.fill(n_games)
        np.minimum.at(first_writer, w_vals, np.repeat(ctx.grange, w_counts))
        r_game = np.repeat(ctx.grange, n_dec)
        conflict = first_writer[r1] < r_game
        conflict |= first_writer[r2] < r_game
        keep = ctx.keep_b[g0:g1]
        keep[r_game[conflict]] = False

        # -- commit the non-conflicting games' watchdog writes in one batch --
        k_pairs = keep.repeat(w_counts)
        pairs = w_vals[k_pairs]
        ps_flat += np.bincount(pairs, minlength=m * m)
        w_fwd = np.broadcast_to(
            fwd[:, None, :], pair.shape
        ).reshape(n_games, -1)[w_ok]
        pf_pairs = pairs[w_fwd[k_pairs]]
        pf_flat += np.bincount(pf_pairs, minlength=m * m)
        # the aggregates are cheapest recomputed wholesale at this scale
        self.known[:] = np.count_nonzero(self.ps, axis=1)
        self.pf_sum[:] = self.pf.sum(axis=1)

        # -- replay conflicting games through the exact scalar kernel --------
        if not keep.all():
            replay_ids = np.flatnonzero(~keep)
            self._replayed_games += len(replay_ids)
            for g in replay_ids.tolist():
                self._replay_game(
                    ctx.src_list[g0 + g],
                    plan.paths_of(g0 + g),
                    req,
                    delivered,
                    csn_free,
                )

    def _fold_tournament(
        self,
        ctx: _PlanContext,
        req: np.ndarray,
        delivered: np.ndarray,
        csn_free: np.ndarray,
    ) -> None:
        """Fold the buffered speculative outcomes of all kept games into the
        payoff accumulators and statistics counters (dead state during the
        tournament, so one vectorized pass suffices)."""
        m = self.m
        keep = ctx.keep_b
        chosen = ctx.chosen_b
        decided = ctx.decided_b
        fwd = ctx.fwd_b
        success = ctx.success_b
        src = ctx.plan.src
        src_sel = ctx.src_sel
        is_csn = ctx.is_csn[chosen]

        delivered += np.bincount((src_sel * 2 + success)[keep], minlength=4)
        csn_free += np.bincount(
            (src_sel * 2 + ctx.has_csn[chosen])[keep], minlength=4
        )
        req += np.bincount(
            np.where(
                decided & keep[:, None],
                src_sel[:, None] * 4 + is_csn * 2 + fwd,
                8,
            ).ravel(),
            minlength=9,
        )
        ksrc = src[keep]
        self.send_pay += np.bincount(
            ksrc,
            weights=np.where(success[keep], self._src_success, self._src_failure),
            minlength=m,
        )
        self.n_sent += np.bincount(ksrc, minlength=m)
        # intermediate payoffs: normal deciders only (CSN accumulators are
        # dead state, exactly as the batch engine skips them)
        pay = decided & ~is_csn & keep[:, None]
        jj = ctx.jc[chosen][pay]
        ff = fwd[pay]
        lvl = np.where(ctx.unknown_b, self._default_trust, ctx.trust_b)[pay]
        self.fwd_pay_acc += np.bincount(
            jj[ff], weights=self._fwd_pay[lvl[ff]], minlength=m
        )
        self.n_fwd += np.bincount(jj[ff], minlength=m)
        self.disc_pay_acc += np.bincount(
            jj[~ff], weights=self._disc_pay[lvl[~ff]], minlength=m
        )
        self.n_disc += np.bincount(jj[~ff], minlength=m)

    def _replay_game(
        self,
        source: int,
        paths: list[list[int]],
        req: np.ndarray,
        delivered: np.ndarray,
        csn_free: np.ndarray,
    ) -> None:
        """The exact per-game kernel (mirrors the batch engine), run against
        the live matrices for games whose speculation conflicted."""
        ps, pf = self.ps, self.pf
        known, pf_sum = self.known, self.pf_sum
        n_pop = self.n_population
        b0, b1, b2 = self._b0, self._b1, self._b2
        band = self._band
        strategies = self._strategies
        source_selfish = source >= n_pop

        ps_s, pf_s = ps[source], pf[source]
        best_i = 0
        best_r = -1.0
        for i, candidate in enumerate(paths):
            r = 1.0
            for node in candidate:
                cell = int(ps_s[node])
                r *= (int(pf_s[node]) / cell) if cell else 0.5
            if r > best_r:
                best_i, best_r = i, r
        path = paths[best_i]

        contains_csn = any(node >= n_pop for node in path)
        csn_free[source_selfish * 2 + contains_csn] += 1

        deciders: list[int] = []
        flags: list[bool] = []
        trusts: list[int | None] = []
        success = True
        req_base = 4 if source_selfish else 0
        for j in path:
            cell = int(ps[j, source])
            if j >= n_pop:
                forward = False
                trust: int | None = None
                req[req_base + 2] += 1
            else:
                if cell == 0:
                    trust = None
                    forward = strategies[j][UNKNOWN_BIT] == 1
                else:
                    fj = int(pf[j, source])
                    rating = fj / cell
                    trust = (
                        3
                        if rating > b2
                        else 2
                        if rating > b1
                        else 1
                        if rating > b0
                        else 0
                    )
                    av = int(pf_sum[j]) / int(known[j])
                    act = (
                        0
                        if fj < av - band * av
                        else 2
                        if fj > av + band * av
                        else 1
                    )
                    forward = strategies[j][trust * 3 + act] == 1
                req[req_base + (1 if forward else 0)] += 1
            deciders.append(j)
            flags.append(forward)
            trusts.append(trust)
            if not forward:
                success = False
                break

        self.send_pay[source] += self._src_success if success else self._src_failure
        self.n_sent[source] += 1
        n_decided = len(deciders)
        for idx in range(n_decided):
            j = deciders[idx]
            if j >= n_pop:
                continue  # dead state, as in the batch engine
            t = trusts[idx]
            level = self._default_trust if t is None else t
            if flags[idx]:
                self.fwd_pay_acc[j] += self._fwd_pay[level]
                self.n_fwd[j] += 1
            else:
                self.disc_pay_acc[j] += self._disc_pay[level]
                self.n_disc[j] += 1

        updaters = deciders if success else deciders[: n_decided - 1]
        for u in (source, *updaters):
            ps_u, pf_u = ps[u], pf[u]
            for idx in range(n_decided):
                j = deciders[idx]
                if j != u:
                    if ps_u[j] == 0:
                        known[u] += 1
                    ps_u[j] += 1
                    if flags[idx]:
                        pf_u[j] += 1
                        pf_sum[u] += 1

        delivered[source_selfish * 2 + success] += 1

    def _run_exchange(
        self,
        participants: Sequence[int],
        exchange: ExchangeConfig,
        rng: np.random.Generator,
    ) -> None:
        """One gossip step via the shared flat implementation; state is
        copied back in place so live views stay valid."""
        ps_l = self.ps.tolist()
        pf_l = self.pf.tolist()
        known_l = self.known.tolist()
        pf_sum_l = self.pf_sum.tolist()
        exchange_reputation_flat(
            ps_l, pf_l, known_l, pf_sum_l, participants, exchange, rng
        )
        self.ps[:] = ps_l
        self.pf[:] = pf_l
        self.known[:] = known_l
        self.pf_sum[:] = pf_sum_l

    # -- fitness and introspection ------------------------------------------

    def fitness(self) -> np.ndarray:
        """Eq. (1) fitness, vectorized — same expression order as the
        other engines."""
        pop = slice(0, self.n_population)
        events = self.n_sent[pop] + self.n_fwd[pop] + self.n_disc[pop]
        totals = self.send_pay[pop] + self.fwd_pay_acc[pop] + self.disc_pay_acc[pop]
        out = np.zeros(self.n_population, dtype=np.float64)
        np.divide(totals, events, out=out, where=events > 0)
        return out

    def payoff_matrix(self) -> np.ndarray:
        """Reputation state as ``(M, M, 2)`` — same layout as the other
        engines."""
        out = np.empty((self.m, self.m, 2), dtype=np.int64)
        out[:, :, 0] = self.ps
        out[:, :, 1] = self.pf
        return out

"""Speculative round-vectorized "turbo" simulation engine.

The fourth engine, and the first to relax the equivalence contract: turbo is
**statistically equivalent** to the reference trajectory distribution, not
bit-identical to any single trajectory.  The relaxation buys back the two
costs that bound the bit-identical engines:

* **Game setups** are drawn for the whole tournament in a handful of numpy
  operations (:func:`repro.paths.vector.plan_tournament_arrays`) instead of
  per-game RNG calls — distributionally identical to the sequential sampler,
  but consuming the generator in a different order, so trajectories diverge.
* **The game loop** is vectorized per round.  The bit-identical engines must
  play a round's games sequentially because game ``g``'s watchdog updates
  feed game ``g + 1``'s path ratings and forwarding decisions.  Turbo instead
  *speculates*: every game of a round is decided in one vectorized pass from
  the round-start reputation matrices, then a **conflict pass** walks the
  round in game order and flags games whose decision-relevant reputation
  pairs — ``(intermediate, source)`` and ``(source, intermediate)`` for the
  speculatively chosen path — were written by an earlier game of the same
  round.  Non-conflicting games commit their speculative outcome in one
  batched scatter; conflicting games are **replayed** through the exact
  per-game scalar kernel against the live matrices.

What the speculation changes, precisely
---------------------------------------
A non-conflicting game's decision inputs are untouched by the round's earlier
writes, so its speculative decisions equal the sequential ones *except* for
three tolerated staleness/ordering effects, which are the entire statistical
relaxation:

* activity averages (``pf_sum / known``) are aggregates over a whole observer
  row; they may lag intra-round writes that the pair-granular conflict pass
  does not track,
* ratings of *non-chosen* candidate paths may be stale (only the chosen
  path's pairs are checked), which can flip near-tie path choices,
* batched commits land before the round's replays, a reordering of writes
  within the round,
* the conflict pass records each game's *speculative* write pairs — a
  replayed game's actual writes (it may choose a different path against
  live state) are not re-checked against later games of the round, so a
  later game can consume a pair a replay touched without itself replaying.

All four perturb *which* of two near-equivalent micro-outcomes occurs, never
the distributions the paper reports (cooperation level, fitness, Tables 5-9
aggregates).  ``tests/test_engine_statistical.py`` holds turbo to that claim
with two-sample KS / Mann-Whitney gates against a bit-identical engine over
seeded replication ensembles, and ``tests/test_properties_simulation.py`` /
``tests/test_sim_turbo.py`` pin the invariants that must stay *exact*
(counter consistency, conservation, ``pf <= ps``).

Implementation shape
--------------------
Per-op numpy dispatch dominates at round granularity (a table-5 round is 50
games), so the engine splits work by *when its inputs bind*:

* bound at plan time — decision/rating gather indices, CSN masks, strategy
  row bases — is precomputed once per tournament (:class:`_PlanContext`);
* bound at round start — reputation-dependent ratings, decisions, watchdog
  writes — runs in the per-round vectorized pass;
* bound at nothing (payoff accumulators, statistics counters: dead state
  until the tournament ends) is buffered per round and folded in one
  vectorized pass per tournament.

Like every engine, turbo supports all path oracles and the second-hand
exchange; non-random oracles (topology, mobile, scripted) are planned through
the sequential :func:`plan_games` path and only the game loop is speculated.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.payoff import PayoffConfig
from repro.core.strategy import STRATEGY_LENGTH, Strategy
from repro.game.stats import TournamentStats
from repro.paths.oracle import PathOracle
from repro.paths.vector import GamePlanArrays, plan_tournament_arrays
from repro.reputation.activity import ActivityClassifier
from repro.reputation.exchange import ExchangeConfig, exchange_reputation_flat
from repro.reputation.trust import TrustTable
from repro.sim.kernels import KernelState, TimedKernel, resolve_kernel
from repro.telemetry.runtime import get_telemetry

__all__ = ["TurboEngine"]


class _PlanContext:
    """Everything about a tournament plan that does not depend on reputation
    state, precomputed once so the per-round pass is pure gathers and ufuncs.

    The conflict-walk scoping attributes (``pair_off`` / ``walk_pos`` /
    ``walk_fill``) let one round pass serve turbo (one tournament, no
    scoping), fused (T stacked tournaments, per-tournament pair spaces) and
    stacked (R replications x T tournaments, block-diagonal pair spaces):
    ``pair_off is None`` selects the unscoped fast path.
    """

    __slots__ = (
        "plan",
        "games_per_round",
        "m",
        "pg_rel",
        "cells_rate",
        "pad_path",
        "jc",
        "valid",
        "is_csn",
        "has_csn",
        "src_sel",
        "src_round",
        "src_round_m",
        "src_list",
        "diag_only",
        "hrange",
        "grange",
        "pair_off",
        "walk_pos",
        "walk_fill",
        "writer_buf",
        "ratings_buf",
        "obs_buf",
        "decided_b",
        "fwd_b",
        "unknown_b",
        "trust_b",
        "chosen_b",
        "success_b",
        "keep_b",
    )

    def __init__(
        self,
        plan: GamePlanArrays,
        games_per_round: int,
        m: int,
        csn_lookup: np.ndarray,
    ):
        self.plan = plan
        self.games_per_round = games_per_round
        self.m = m
        src_of_path = plan.src[plan.path_game]
        nodes = plan.path_nodes
        valid = nodes >= 0
        self.pad_path = ~valid
        node0 = np.where(valid, nodes, 0)
        # rating reads: the source's opinion of each candidate-path node
        self.cells_rate = src_of_path[:, None] * m + node0
        # the game's path rows, relative to its round (for the ratings
        # scatter; games per round is constant, so a modulo does it)
        self.pg_rel = plan.path_game % games_per_round
        # decision reads: each node's opinion of the source.  The per-cell
        # index and strategy-base tables ((j * m + src), (j * STRATEGY_LEN))
        # are *not* precomputed per path row — only the chosen path's row is
        # ever read, so the round pass derives them from its (games, hmax)
        # gather of ``jc``, which is cheaper than materialising (P, H).
        self.jc = node0
        self.valid = valid
        # padding resolves to node 0, which is always a normal node, so the
        # lookup needs no valid-mask
        self.is_csn = csn_lookup[node0]
        self.has_csn = self.is_csn.any(axis=1)
        self.src_sel = csn_lookup[plan.src]
        # every round's source order is the participants list, so the
        # round-constant pieces are hoisted once
        src_round = plan.src[:games_per_round]
        self.src_round = src_round
        self.src_round_m = src_round * m
        self.src_list = plan.src.tolist()
        # sampler-built plans guarantee distinct intermediates excluding the
        # source, so the only possible (observer == subject) cell in the
        # conflict pair grid is the (writer i+1, subject i) diagonal — a
        # strided assignment instead of a full-grid equality mask.  Scripted
        # plans make no such promise and keep the mask.
        self.diag_only = plan.distinct_nodes
        n_games = plan.n_games
        h = nodes.shape[1]
        self.hrange = np.arange(h)
        self.grange = np.arange(games_per_round, dtype=np.int64)
        # conflict-walk scoping: turbo shares one pair space per round
        self.pair_off = None
        self.walk_pos = self.grange
        self.walk_fill = games_per_round
        self.writer_buf = np.empty(m * m + 1, dtype=np.int64)
        self.ratings_buf = np.empty(
            (games_per_round, max(plan.max_paths, 1)), dtype=np.float64
        )
        # the pair grid runs in int32 (codes stay < 2 m^2 << 2^31), halving
        # the memory traffic of the widest per-round intermediate
        self.obs_buf = np.empty((games_per_round, h + 1), dtype=np.int32)
        self.obs_buf[:, 0] = src_round
        # per-game speculative outcomes, buffered for the tournament-end
        # fold; the round pass computes straight into slices of these
        self.decided_b = np.zeros((n_games, h), dtype=bool)
        self.fwd_b = np.zeros((n_games, h), dtype=bool)
        self.unknown_b = np.zeros((n_games, h), dtype=bool)
        self.trust_b = np.zeros((n_games, h), dtype=np.int64)
        self.chosen_b = np.zeros(n_games, dtype=np.int64)
        self.success_b = np.zeros(n_games, dtype=bool)
        self.keep_b = np.ones(n_games, dtype=bool)

    def scope(self, vals: np.ndarray, off: np.ndarray) -> np.ndarray:
        """Map base pair codes into the scoped writer-buffer space."""
        return vals + off


class TurboEngine:
    """Round-vectorized speculative implementation of the tournament
    semantics (statistical-equivalence contract)."""

    name = "turbo"
    #: the engine routes its hot ops through the pluggable kernel interface
    #: (``repro.sim.kernels``) and accepts a ``kernel=`` selector
    supports_kernel_backends = True

    def __init__(
        self,
        n_population: int,
        max_selfish: int,
        trust_table: TrustTable | None = None,
        activity: ActivityClassifier | None = None,
        payoffs: PayoffConfig | None = None,
        kernel: str = "auto",
    ):
        if n_population < 1:
            raise ValueError(f"population must be >= 1, got {n_population}")
        if max_selfish < 0:
            raise ValueError(f"max_selfish must be >= 0, got {max_selfish}")
        self.n_population = n_population
        self.max_selfish = max_selfish
        self.trust_table = trust_table or TrustTable()
        self.activity = activity or ActivityClassifier()
        self.payoffs = payoffs or PayoffConfig()
        if self.trust_table.n_levels != 4:
            raise ValueError("TurboEngine is specialised to 4 trust levels")
        self.m = self._matrix_order()
        self.kernel_name = kernel
        self._kernel = resolve_kernel(kernel)
        self._k = self._kernel
        self._csn_lookup = self._build_csn_lookup()
        self._bounds = np.asarray(self.trust_table.bounds, dtype=np.float64)
        self._b0, self._b1, self._b2 = self.trust_table.bounds
        self._band = self.activity.band
        self._fwd_pay = np.asarray(self.payoffs.forward_by_trust, dtype=np.float64)
        self._disc_pay = np.asarray(self.payoffs.discard_by_trust, dtype=np.float64)
        self._default_trust = self.payoffs.default_trust
        self._src_success = self.payoffs.source_success
        self._src_failure = self.payoffs.source_failure
        self._strategies: list[tuple[int, ...]] = [
            (1,) * STRATEGY_LENGTH for _ in range(n_population)
        ]
        self._rebuild_strategy_table()
        #: games replayed through the exact kernel in the last tournament —
        #: instrumentation for tests and the perf bench
        self._replayed_games = 0
        self._alloc()
        self._ks = self._kernel_state()

    def _matrix_order(self) -> int:
        """Side length of the reputation matrices (hook for stacking)."""
        return self.n_population + self.max_selfish

    def _build_csn_lookup(self) -> np.ndarray:
        """(m,) bool — which matrix ids are selfish seats (stacking hook)."""
        return np.arange(self.m) >= self.n_population

    def _rebuild_strategy_table(self) -> None:
        # (m * STRATEGY_LENGTH,) int8: population strategies then zeros, so
        # CSN gather rows read as "never forward" without masking
        table = np.zeros(self.m * STRATEGY_LENGTH, dtype=np.int8)
        flat = np.array(self._strategies, dtype=np.int8).reshape(-1)
        table[: flat.size] = flat
        self._strat_flat = table

    def _kernel_state(self) -> KernelState:
        """Bundle the live state views the kernel ops operate on.  Rebuilt
        at every entry point: ``_alloc`` and ``set_strategies`` replace the
        underlying arrays, and the bundle is a handful of references."""
        return KernelState(
            ps=self.ps,
            pf=self.pf,
            ps_flat=self.ps.reshape(-1),
            pf_flat=self.pf.reshape(-1),
            known=self.known,
            pf_sum=self.pf_sum,
            strat_flat=self._strat_flat,
            csn_lookup=self._csn_lookup,
            b0=self._b0,
            b1=self._b1,
            b2=self._b2,
            band=self._band,
            fwd_pay=self._fwd_pay,
            disc_pay=self._disc_pay,
            default_trust=self._default_trust,
            src_success=self._src_success,
            src_failure=self._src_failure,
            send_pay=self.send_pay,
            n_sent=self.n_sent,
            fwd_pay_acc=self.fwd_pay_acc,
            n_fwd=self.n_fwd,
            disc_pay_acc=self.disc_pay_acc,
            n_disc=self.n_disc,
        )

    def _alloc(self) -> None:
        m = self.m
        # canonical state: same layout as the batch engine, always numpy
        self.ps = np.zeros((m, m), dtype=np.int64)
        self.pf = np.zeros((m, m), dtype=np.int64)
        self.known = np.zeros(m, dtype=np.int64)
        self.pf_sum = np.zeros(m, dtype=np.int64)
        self.send_pay = np.zeros(m, dtype=np.float64)
        self.fwd_pay_acc = np.zeros(m, dtype=np.float64)
        self.disc_pay_acc = np.zeros(m, dtype=np.float64)
        self.n_sent = np.zeros(m, dtype=np.int64)
        self.n_fwd = np.zeros(m, dtype=np.int64)
        self.n_disc = np.zeros(m, dtype=np.int64)

    # -- SimulationEngine protocol ------------------------------------------

    @property
    def population_ids(self) -> Sequence[int]:
        return range(self.n_population)

    def selfish_ids(self, n: int) -> list[int]:
        if n > self.max_selfish:
            raise ValueError(
                f"environment needs {n} CSN, engine allocated {self.max_selfish}"
            )
        return [self.n_population + k for k in range(n)]

    def set_strategies(self, strategies: Sequence[Strategy]) -> None:
        if len(strategies) != self.n_population:
            raise ValueError(
                f"expected {self.n_population} strategies, got {len(strategies)}"
            )
        self._strategies = [tuple(s.bits) for s in strategies]
        self._rebuild_strategy_table()

    @property
    def strategy_matrix(self) -> np.ndarray:
        """The population's strategies as a ``(pop, STRATEGY_LENGTH)`` int8
        matrix — derived from the kernel's bit tuples, so the two can never
        drift apart."""
        return np.array(self._strategies, dtype=np.int8)

    def reset_generation(self) -> None:
        self._alloc()

    # -- tournament ---------------------------------------------------------

    def run_tournament(
        self,
        participants: Sequence[int],
        rounds: int,
        oracle: PathOracle,
        stats: TournamentStats,
        exchange: ExchangeConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        do_exchange = exchange is not None and exchange.enabled
        if do_exchange and rng is None:
            raise ValueError("reputation exchange requires an rng")
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        participants = list(participants)
        games_per_round = len(participants)
        # telemetry seam: one enabled check per tournament; the speculative
        # round kernel below never touches the recorder (zero-overhead
        # contract)
        tel = get_telemetry()
        if not tel.enabled:
            tel = None
        # The whole tournament is pre-drawn even with the exchange enabled:
        # gossip draws then trail the oracle draws on a shared generator
        # instead of interleaving at round boundaries — a stream reordering
        # the statistical contract tolerates (the bit-identical engines must
        # plan per round here).
        if tel is None:
            plan = plan_tournament_arrays(
                oracle, participants * rounds, participants
            )
            ctx = _PlanContext(plan, games_per_round, self.m, self._csn_lookup)
        else:
            with tel.registry.timer("engine.plan_s").time():
                plan = plan_tournament_arrays(
                    oracle, participants * rounds, participants
                )
                ctx = _PlanContext(
                    plan, games_per_round, self.m, self._csn_lookup
                )
        self._ks = self._kernel_state()
        self._k = (
            self._kernel if tel is None else TimedKernel(self._kernel, tel.registry)
        )
        # replay contributions accumulate here; speculative outcomes are
        # folded vectorized at the end (dead state during the tournament)
        req = np.zeros(9, dtype=np.int64)
        delivered = np.zeros(4, dtype=np.int64)
        csn_free = np.zeros(4, dtype=np.int64)
        self._replayed_games = 0

        for round_no in range(rounds):
            round_span = tel.span("round") if tel is not None else None
            if round_span is not None:
                round_span.__enter__()
            self._process_round(ctx, round_no, req, delivered, csn_free)
            if round_span is not None:
                round_span.__exit__(None, None, None)
            if do_exchange and (round_no + 1) % exchange.interval == 0:
                if tel is None:
                    self._run_exchange(participants, exchange, rng)
                else:
                    with tel.registry.timer("engine.exchange_s").time():
                        self._run_exchange(participants, exchange, rng)

        if tel is None:
            self._fold_tournament(ctx, req, delivered, csn_free)
        else:
            with tel.registry.timer("engine.fold_s").time():
                self._fold_tournament(ctx, req, delivered, csn_free)
            tel.count("engine.tournaments")
            tel.count("engine.rounds", rounds)
            tel.count("engine.games", rounds * games_per_round)
            tel.count("engine.turbo.replayed_games", self._replayed_games)

        self._merge_stats(stats, req, delivered, csn_free)

    @staticmethod
    def _merge_stats(
        stats: TournamentStats,
        req: np.ndarray,
        delivered: np.ndarray,
        csn_free: np.ndarray,
    ) -> None:
        """Fold the accumulator arrays into the caller's stats object."""
        stats.nn_originated += int(delivered[0] + delivered[1])
        stats.nn_delivered += int(delivered[1])
        stats.csn_originated += int(delivered[2] + delivered[3])
        stats.csn_delivered += int(delivered[3])
        stats.nn_paths_chosen += int(csn_free[0] + csn_free[1])
        stats.nn_csn_free_paths += int(csn_free[0])
        stats.csn_paths_chosen += int(csn_free[2] + csn_free[3])
        stats.csn_csn_free_paths += int(csn_free[2])
        from_nn, from_csn = stats.requests_from_nn, stats.requests_from_csn
        from_nn.rejected_by_nn += int(req[0])
        from_nn.accepted_by_nn += int(req[1])
        from_nn.rejected_by_csn += int(req[2])
        from_nn.accepted_by_csn += int(req[3])
        from_csn.rejected_by_nn += int(req[4])
        from_csn.accepted_by_nn += int(req[5])
        from_csn.rejected_by_csn += int(req[6])
        from_csn.accepted_by_csn += int(req[7])

    def _process_round(
        self,
        ctx: _PlanContext,
        round_no: int,
        req: np.ndarray,
        delivered: np.ndarray,
        csn_free: np.ndarray,
    ) -> None:
        m = ctx.m
        plan = ctx.plan
        ks = self._ks
        kern = self._k
        g0 = round_no * ctx.games_per_round
        g1 = g0 + ctx.games_per_round
        p0 = int(plan.game_path_start[g0])
        p1 = int(plan.game_path_start[g1])
        n_games = g1 - g0

        # -- speculative path ratings from round-start state ----------------
        # every pass below is sliced to the round's real maximum path width
        # (hmax columns) — the plan arrays are padded to the *tournament's*
        # longest path, which the route-table oracles can push to 2-3x the
        # typical game's, and the padding columns are pure dead work
        hmax_r = int(plan.path_len[p0:p1].max()) if p1 > p0 else 1
        ratings = kern.rate_paths(
            ks, ctx.cells_rate[p0:p1, :hmax_r], ctx.pad_path[p0:p1, :hmax_r]
        )

        # -- best path per game (first index wins ties, as the trio does) ---
        buf = ctx.ratings_buf
        buf.fill(-1.0)
        buf[ctx.pg_rel[p0:p1], plan.path_col[p0:p1]] = ratings
        chosen = ctx.chosen_b[g0:g1]
        np.add(plan.game_path_start[g0:g1], buf.argmax(axis=1), out=chosen)

        # -- speculative sequential decisions, vectorized over games --------
        # computed straight into the tournament-fold buffers where possible;
        # the fold buffers beyond this round's hmax stay zero-initialised,
        # which reads as "not decided / not forwarded" — exactly right
        hmax = int(plan.path_len[chosen].max())
        valid = ctx.valid[chosen, :hmax]
        jc = ctx.jc[chosen, :hmax]
        cells_dec = jc * m
        cells_dec += ctx.src_round[:, None]
        n_dec = kern.decide(
            ks,
            jc,
            valid,
            cells_dec,
            ctx.trust_b[g0:g1, :hmax],
            ctx.unknown_b[g0:g1, :hmax],
            ctx.fwd_b[g0:g1, :hmax],
            ctx.decided_b[g0:g1, :hmax],
            ctx.success_b[g0:g1],
        )
        decided = ctx.decided_b[g0:g1, :hmax]
        fwd = ctx.fwd_b[g0:g1, :hmax]
        success = ctx.success_b[g0:g1]

        # -- conflict pass: pair-granular reads vs earlier writes ------------
        # watchdog write pairs (observer, subject) with out-of-range
        # sentinels: invalid entries land at >= m*m and are filtered out.
        # The observer sentinel is m (pair = m*m + subj >= m*m); the subject
        # sentinel must be m*m itself — a subject sentinel of m would fold
        # into the valid pair (obs + 1, 0).
        upd_ok = decided & (
            success[:, None] | (ctx.hrange[:hmax] < (n_dec - 1)[:, None])
        )
        jc32 = jc.astype(np.int32)
        obs = ctx.obs_buf[:, : hmax + 1]  # column 0 is the source id
        np.copyto(obs[:, 1:], jc32)
        np.copyto(obs[:, 1:], np.int32(m), where=~upd_ok)
        subj = np.where(decided, jc32, np.int32(m * m))
        pair = obs[:, :, None] * np.int32(m) + subj[:, None, :]
        if ctx.diag_only:
            # observer == subject can only land on the (i+1, i) diagonal
            pair.reshape(n_games, -1)[:, hmax :: hmax + 1] = m * m
        else:
            pair[obs[:, :, None] == subj[:, None, :]] = m * m
        pair2 = pair.reshape(n_games, -1)
        w_ok = pair2 < m * m
        w_counts = w_ok.sum(axis=1)
        w_vals = pair2[w_ok]
        # decision reads (j, s) are exactly the decided cells; rating reads
        # (s, j) cover the decided prefix of the chosen path (staleness on
        # nodes past a drop only perturbs already-tolerated path ratings)
        r1 = cells_dec[decided]
        r2 = (ctx.src_round_m[:, None] + jc)[decided]

        # -- vectorized walk: a game conflicts iff one of its read pairs was
        # (speculatively) written by a strictly earlier game in its pair
        # scope (turbo: the round; fused/stacked: its own tournament, via
        # per-tournament offsets).  first_writer[pair] = earliest position
        # writing it; every game's writes count, kept or not — exactly the
        # sequential walk's written-set.
        w_pos = np.repeat(ctx.walk_pos, w_counts)
        pos_read = np.repeat(ctx.walk_pos, n_dec)
        if ctx.pair_off is None:
            w_scoped = w_vals
            g_read = pos_read
        else:
            w_scoped = ctx.scope(w_vals, np.repeat(ctx.pair_off, w_counts))
            read_off = np.repeat(ctx.pair_off, n_dec)
            r1 = ctx.scope(r1, read_off)
            r2 = ctx.scope(r2, read_off)
            g_read = np.repeat(ctx.grange, n_dec)
        first_writer = ctx.writer_buf
        kern.first_writer(first_writer, ctx.walk_fill, w_scoped, w_pos)
        conflict = first_writer[r1] < pos_read
        conflict |= first_writer[r2] < pos_read
        keep = ctx.keep_b[g0:g1]
        keep[g_read[conflict]] = False

        # -- commit the non-conflicting games' watchdog writes in one batch --
        k_pairs = keep.repeat(w_counts)
        pairs = w_vals[k_pairs]
        w_fwd = np.broadcast_to(
            fwd[:, None, :], pair.shape
        ).reshape(n_games, -1)[w_ok]
        kern.commit(ks, pairs, pairs[w_fwd[k_pairs]])

        # -- resolve conflicting games against live state --------------------
        if not keep.all():
            self._resolve_conflicts(
                ctx, g0, np.flatnonzero(~keep), req, delivered, csn_free
            )

    def _resolve_conflicts(
        self,
        ctx: _PlanContext,
        g0: int,
        rel_ids: np.ndarray,
        req: np.ndarray,
        delivered: np.ndarray,
        csn_free: np.ndarray,
    ) -> None:
        """Handle this round's conflicted games.  Turbo replays each through
        the exact scalar kernel; fused layers a vectorized second-chance
        pass in front (see the override)."""
        self._replay_ids(ctx, g0 + rel_ids, req, delivered, csn_free)

    def _replay_one(
        self,
        ctx: _PlanContext,
        g: int,
        req: np.ndarray,
        delivered: np.ndarray,
        csn_free: np.ndarray,
    ) -> None:
        plan = ctx.plan
        lo = int(plan.game_path_start[g])
        hi = int(plan.game_path_start[g + 1])
        source = ctx.src_list[g]
        deciders, flags, success = self._k.replay_decide(
            self._ks,
            source,
            plan.path_nodes[lo:hi],
            plan.path_len[lo:hi],
            req,
            delivered,
            csn_free,
        )
        self._k.watchdog(self._ks, source, deciders, flags, success)

    def _replay_ids(
        self,
        ctx: _PlanContext,
        ids: np.ndarray,
        req: np.ndarray,
        delivered: np.ndarray,
        csn_free: np.ndarray,
    ) -> None:
        """Replay games (absolute plan indices, ascending) one at a time
        through the exact scalar kernel against the live matrices."""
        self._replayed_games += len(ids)
        for g in ids.tolist():
            self._replay_one(ctx, g, req, delivered, csn_free)

    def _fold_tournament(
        self,
        ctx: _PlanContext,
        req: np.ndarray,
        delivered: np.ndarray,
        csn_free: np.ndarray,
    ) -> None:
        """Fold the buffered speculative outcomes of all kept games into the
        payoff accumulators and statistics counters (dead state during the
        tournament, so one vectorized pass suffices)."""
        keep = ctx.keep_b
        chosen = ctx.chosen_b
        decided = ctx.decided_b
        fwd = ctx.fwd_b
        success = ctx.success_b
        src_sel = ctx.src_sel
        is_csn = ctx.is_csn[chosen]

        delivered += np.bincount((src_sel * 2 + success)[keep], minlength=4)
        csn_free += np.bincount(
            (src_sel * 2 + ctx.has_csn[chosen])[keep], minlength=4
        )
        req += np.bincount(
            np.where(
                decided & keep[:, None],
                src_sel[:, None] * 4 + is_csn * 2 + fwd,
                8,
            ).ravel(),
            minlength=9,
        )
        self._fold_payoffs(ctx, keep, chosen, is_csn)

    def _fold_payoffs(
        self,
        ctx: _PlanContext,
        keep: np.ndarray,
        chosen: np.ndarray,
        is_csn: np.ndarray,
    ) -> None:
        """Fold per-node payoff contributions of all kept games — shared by
        the statistics folds of every engine variant (the stacked engine's
        per-replication statistics differ, its payoff fold does not)."""
        m = self.m
        decided = ctx.decided_b
        fwd = ctx.fwd_b
        success = ctx.success_b
        ksrc = ctx.plan.src[keep]
        self.send_pay += np.bincount(
            ksrc,
            weights=np.where(success[keep], self._src_success, self._src_failure),
            minlength=m,
        )
        self.n_sent += np.bincount(ksrc, minlength=m)
        # intermediate payoffs: normal deciders only (CSN accumulators are
        # dead state, exactly as the batch engine skips them)
        pay = decided & ~is_csn & keep[:, None]
        jj = ctx.jc[chosen][pay]
        ff = fwd[pay]
        lvl = np.where(ctx.unknown_b, self._default_trust, ctx.trust_b)[pay]
        self.fwd_pay_acc += np.bincount(
            jj[ff], weights=self._fwd_pay[lvl[ff]], minlength=m
        )
        self.n_fwd += np.bincount(jj[ff], minlength=m)
        self.disc_pay_acc += np.bincount(
            jj[~ff], weights=self._disc_pay[lvl[~ff]], minlength=m
        )
        self.n_disc += np.bincount(jj[~ff], minlength=m)

    def _run_exchange(
        self,
        participants: Sequence[int],
        exchange: ExchangeConfig,
        rng: np.random.Generator,
    ) -> None:
        """One gossip step via the shared flat implementation; state is
        copied back in place so live views stay valid."""
        ps_l = self.ps.tolist()
        pf_l = self.pf.tolist()
        known_l = self.known.tolist()
        pf_sum_l = self.pf_sum.tolist()
        exchange_reputation_flat(
            ps_l, pf_l, known_l, pf_sum_l, participants, exchange, rng
        )
        self.ps[:] = ps_l
        self.pf[:] = pf_l
        self.known[:] = known_l
        self.pf_sum[:] = pf_sum_l

    # -- fitness and introspection ------------------------------------------

    def fitness(self) -> np.ndarray:
        """Eq. (1) fitness, vectorized — same expression order as the
        other engines."""
        pop = slice(0, self.n_population)
        events = self.n_sent[pop] + self.n_fwd[pop] + self.n_disc[pop]
        totals = self.send_pay[pop] + self.fwd_pay_acc[pop] + self.disc_pay_acc[pop]
        out = np.zeros(self.n_population, dtype=np.float64)
        np.divide(totals, events, out=out, where=events > 0)
        return out

    def payoff_matrix(self) -> np.ndarray:
        """Reputation state as ``(M, M, 2)`` — same layout as the other
        engines."""
        out = np.empty((self.m, self.m, 2), dtype=np.int64)
        out[:, :, 0] = self.ps
        out[:, :, 1] = self.pf
        return out

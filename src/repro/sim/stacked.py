"""Cross-replication stacked evaluation engine.

The fused engine amortizes per-op numpy dispatch across one generation's
tournaments (``T * n`` games per slate); at the shipped scales that slate is
still only a few thousand games, so fixed dispatch cost remains visible.
This module widens the slate one more axis: **R independent replications**
of the same experiment evaluate as one mega-slate — stacked game
``round * (R * T * n) + rep * (T * n) + tournament * n + seat`` — against
block-diagonal reputation state, one ``(R * block)``-order matrix whose
``r``-th diagonal block is replication ``r``'s private state
(``block = n_population + max_selfish``).

Why this is *exact* (bit-identical per replication, not merely
statistically equivalent — pinned by ``tests/test_sim_stacked.py``):

* Replications are causally independent by construction: a replication is a
  pure function of ``(config, replication_index)`` with its own rng stream.
  :func:`repro.paths.vector.stack_replication_plans` shifts each
  replication's node ids into its private block, so no stacked game can
  ever read or write another replication's cells — every kernel op
  (gather, commit scatter, scalar replay) decomposes block-diagonally.
* The conflict walk scopes pair codes per ``(replication, tournament)``
  through :meth:`_StackedContext.scope`, reproducing the fused engine's
  per-tournament walk inside each replication's slate slice.
* The ``known``/``pf_sum`` wholesale recomputes in ``commit`` are exact per
  block because off-block cells are identically zero.
* Statistics counters are routed per replication (``(R, 9)``/``(R, 4)``
  accumulator matrices); float payoff accumulators are per *node* and the
  per-node fold order within a replication matches the fused engine's, so
  even the float sums agree bitwise.

The scalar-fallback threshold of the fused conflict pass (< 10 conflicted
games per round replay directly; more take the vectorized second chance)
applies *per replication* — the cutoff is part of the per-replication
trajectory, so matching fused-sequential requires evaluating it on each
replication's own conflict count.  Replications over the threshold then
share one merged second-chance pass, which block-diagonal state keeps
exact.

This engine is the vehicle of
:func:`repro.experiments.replication.run_replications_stacked`; it is not
registered in :data:`repro.sim.ENGINES` because a single replication cannot
meaningfully stack (``--stacked`` / the runner's auto dispatch select it).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.strategy import STRATEGY_LENGTH
from repro.game.stats import TournamentStats
from repro.paths.vector import GamePlanArrays
from repro.sim.fused import FusedEngine, _FusedContext
from repro.sim.kernels import TimedKernel
from repro.sim.turbo import _PlanContext
from repro.telemetry.runtime import get_telemetry

__all__ = ["StackedFusedEngine"]


class _StackedContext(_FusedContext):
    """A plan context over ``R`` stacked replication slates.

    ``games_per_round`` is the mega-slate width (``R * T * n``), so every
    inherited precomputation works verbatim; only the conflict-walk scoping
    differs.  The fused scoping would allocate one ``m * m`` pair block per
    tournament with ``m = R * block`` — quadratic waste, since a
    replication's games only ever name pairs inside its own ``block``-order
    diagonal.  :meth:`scope` instead projects global pair codes onto a
    block-*compact* space: tournament ``t_global = rep * T + t`` owns
    ``[t_global * block^2, (t_global + 1) * block^2)``.
    """

    __slots__ = ("block", "rep_slate")

    def __init__(
        self,
        plan: GamePlanArrays,
        slate: int,
        m: int,
        csn_lookup: np.ndarray,
        n_replications: int,
        n_tournaments: int,
        n_seats: int,
        block: int,
    ):
        # deliberately skip _FusedContext.__init__: its per-tournament pair
        # blocks would be sized m^2 = (R * block)^2 each; the compact
        # scoping below replaces all of its slot fills
        _PlanContext.__init__(self, plan, slate, m, csn_lookup)
        self.n_seats = n_seats
        self.block = block
        self.rep_slate = n_tournaments * n_seats
        total_t = n_replications * n_tournaments
        t_global = np.repeat(np.arange(total_t, dtype=np.int64), n_seats)
        rep = np.repeat(
            np.arange(n_replications, dtype=np.int64), self.rep_slate
        )
        # scope(): a global pair code obs * m + subj with obs = r*block + o,
        # subj = r*block + s projects to (obs * block + subj) + off
        # = t_global * block^2 + o * block + s once off absorbs both
        # r*block terms — one private block^2 window per (rep, tournament)
        self.pair_off = t_global * (block * block) - rep * block * (block + 1)
        self.walk_pos = np.tile(np.arange(n_seats, dtype=np.int64), total_t)
        self.walk_fill = n_seats
        self.writer_buf = np.empty(
            total_t * block * block + 1, dtype=np.int64
        )

    def scope(self, vals: np.ndarray, off: np.ndarray) -> np.ndarray:
        return (vals // self.m) * self.block + (vals % self.m) + off


class StackedFusedEngine(FusedEngine):
    """``R`` independent replications evaluated as one block-diagonal
    stack (exact per-replication equivalence to sequential fused runs)."""

    name = "stacked"

    def __init__(
        self,
        n_population: int,
        max_selfish: int,
        trust_table=None,
        activity=None,
        payoffs=None,
        kernel: str = "auto",
        n_replications: int = 1,
    ):
        if n_replications < 1:
            raise ValueError(
                f"n_replications must be >= 1, got {n_replications}"
            )
        # consumed by the _matrix_order/_build_csn_lookup/_rebuild hooks
        # that the base constructor calls, so they must exist first
        self.n_replications = n_replications
        self.block = n_population + max_selfish
        self._strategy_tensor: np.ndarray | None = None
        super().__init__(
            n_population, max_selfish, trust_table, activity, payoffs, kernel
        )

    # -- stacking hooks -------------------------------------------------------

    def _matrix_order(self) -> int:
        return self.n_replications * self.block

    def _build_csn_lookup(self) -> np.ndarray:
        return (np.arange(self.m) % self.block) >= self.n_population

    def _rebuild_strategy_table(self) -> None:
        table = np.zeros(self.m * STRATEGY_LENGTH, dtype=np.int8)
        view = table.reshape(self.n_replications, self.block, STRATEGY_LENGTH)
        if self._strategy_tensor is None:
            # base-class construction / scalar set_strategies: every
            # replication carries the same population
            view[:, : self.n_population] = np.array(
                self._strategies, dtype=np.int8
            )
        else:
            view[:, : self.n_population] = self._strategy_tensor
        self._strat_flat = table

    # -- per-replication population -------------------------------------------

    def set_strategies(self, strategies) -> None:
        self._strategy_tensor = None
        super().set_strategies(strategies)

    def set_strategies_tensor(self, tensor: np.ndarray) -> None:
        """Install each replication's population from an ``(R, P, L)``
        bit tensor."""
        tensor = np.asarray(tensor, dtype=np.int8)
        expected = (self.n_replications, self.n_population, STRATEGY_LENGTH)
        if tensor.shape != expected:
            raise ValueError(
                f"strategy tensor must have shape {expected},"
                f" got {tensor.shape}"
            )
        if not (((tensor == 0) | (tensor == 1)).all()):
            raise ValueError("strategy tensor entries must be 0/1 bits")
        self._strategy_tensor = tensor.copy()
        # keep the scalar introspection view (strategy_matrix) meaningful:
        # it shows replication 0
        self._strategies = [
            tuple(int(b) for b in row) for row in tensor[0]
        ]
        self._rebuild_strategy_table()

    def fitness_tensor(self) -> np.ndarray:
        """Eq. (1) fitness as ``(R, n_population)`` — row ``r`` is exactly
        what a sequential engine running replication ``r`` reports."""
        shape = (self.n_replications, self.block)
        pop = slice(0, self.n_population)
        events = (self.n_sent + self.n_fwd + self.n_disc).reshape(shape)[:, pop]
        totals = (self.send_pay + self.fwd_pay_acc + self.disc_pay_acc).reshape(
            shape
        )[:, pop]
        out = np.zeros((self.n_replications, self.n_population), dtype=np.float64)
        np.divide(totals, events, out=out, where=events > 0)
        return out

    # -- stacked generation entry point ---------------------------------------

    def run_generation_stacked(
        self,
        plan: GamePlanArrays,
        rounds: int,
        n_tournaments: int,
        n_seats: int,
        stats: Sequence[TournamentStats],
    ) -> None:
        """Run one environment's generation for all ``R`` replications.

        ``plan`` is the mega-slate from
        :func:`repro.paths.vector.stack_replication_plans` (each input plan
        ``T = n_tournaments`` tournaments of ``n_seats`` seats);
        ``stats[r]`` receives replication ``r``'s merged counters.  Route
        sharing and plan drawing stay with the caller — each replication
        plans against its *own* oracle and rng stream.
        """
        n_rep = self.n_replications
        if len(stats) != n_rep:
            raise ValueError(
                f"need one stats object per replication:"
                f" {n_rep} replications, {len(stats)} stats"
            )
        slate = n_rep * n_tournaments * n_seats
        if plan.n_games != rounds * slate:
            raise ValueError(
                f"stacked plan has {plan.n_games} games, expected"
                f" {rounds} rounds x {slate} (= {n_rep} reps x"
                f" {n_tournaments} tournaments x {n_seats} seats)"
            )
        tel = get_telemetry()
        if not tel.enabled:
            tel = None
        ctx = _StackedContext(
            plan,
            slate,
            self.m,
            self._csn_lookup,
            n_rep,
            n_tournaments,
            n_seats,
            self.block,
        )
        self._ks = self._kernel_state()
        self._k = (
            self._kernel if tel is None else TimedKernel(self._kernel, tel.registry)
        )
        req = np.zeros((n_rep, 9), dtype=np.int64)
        delivered = np.zeros((n_rep, 4), dtype=np.int64)
        csn_free = np.zeros((n_rep, 4), dtype=np.int64)
        self._replayed_games = 0
        self._second_chance_games = 0

        for round_no in range(rounds):
            self._process_round(ctx, round_no, req, delivered, csn_free)

        self._fold_tournament(ctx, req, delivered, csn_free)
        if tel is not None:
            tel.count("engine.tournaments", n_rep * n_tournaments)
            tel.count("engine.rounds", rounds * n_rep * n_tournaments)
            tel.count("engine.games", rounds * slate)
            tel.count("engine.turbo.replayed_games", self._replayed_games)
            tel.count("engine.fused.generations", n_rep)
            tel.count("engine.fused.stacked_tournaments", n_rep * n_tournaments)
            tel.count("engine.fused.stacked_replications", n_rep)
            tel.count("engine.fused.games", rounds * slate)
            tel.count(
                "engine.fused.second_chance_games", self._second_chance_games
            )

        for r in range(n_rep):
            self._merge_stats(stats[r], req[r], delivered[r], csn_free[r])

    # -- per-replication routing overrides ------------------------------------

    def _resolve_conflicts(
        self,
        ctx: _StackedContext,
        g0: int,
        rel_ids: np.ndarray,
        req: np.ndarray,
        delivered: np.ndarray,
        csn_free: np.ndarray,
    ) -> None:
        # the fused < 10-conflict scalar cutoff is part of each
        # replication's trajectory, so it is evaluated on each
        # replication's own count; the over-threshold replications share
        # one merged second-chance pass (block-diagonal state keeps the
        # merge exact — no replication can observe another's writes)
        reps = rel_ids // ctx.rep_slate
        counts = np.bincount(reps, minlength=self.n_replications)
        small = counts[reps] < 10
        if small.any():
            self._replay_ids(ctx, g0 + rel_ids[small], req, delivered, csn_free)
        if not small.all():
            self._second_chance(
                ctx, g0, rel_ids[~small], req, delivered, csn_free
            )

    def _replay_ids(
        self,
        ctx: _StackedContext,
        ids: np.ndarray,
        req: np.ndarray,
        delivered: np.ndarray,
        csn_free: np.ndarray,
    ) -> None:
        """Replay through the scalar kernel, routing the statistics
        counters to each game's replication row."""
        self._replayed_games += len(ids)
        slate = ctx.games_per_round
        rep_slate = ctx.rep_slate
        for g in ids.tolist():
            r = (g % slate) // rep_slate
            self._replay_one(ctx, g, req[r], delivered[r], csn_free[r])

    def _fold_tournament(
        self,
        ctx: _StackedContext,
        req: np.ndarray,
        delivered: np.ndarray,
        csn_free: np.ndarray,
    ) -> None:
        """The base statistics fold with every bincount widened by a
        replication axis; the per-node payoff fold is shared unchanged."""
        n_rep = self.n_replications
        keep = ctx.keep_b
        chosen = ctx.chosen_b
        success = ctx.success_b
        src_sel = ctx.src_sel
        is_csn = ctx.is_csn[chosen]
        rounds = ctx.plan.n_games // ctx.games_per_round
        rep_of = np.tile(
            np.repeat(np.arange(n_rep, dtype=np.int64), ctx.rep_slate), rounds
        )

        delivered += np.bincount(
            (rep_of * 4 + src_sel * 2 + success)[keep], minlength=4 * n_rep
        ).reshape(n_rep, 4)
        csn_free += np.bincount(
            (rep_of * 4 + src_sel * 2 + ctx.has_csn[chosen])[keep],
            minlength=4 * n_rep,
        ).reshape(n_rep, 4)
        counts = np.bincount(
            np.where(
                ctx.decided_b & keep[:, None],
                (rep_of * 8 + src_sel * 4)[:, None] + is_csn * 2 + ctx.fwd_b,
                8 * n_rep,
            ).ravel(),
            minlength=8 * n_rep + 1,
        )
        req[:, :8] += counts[: 8 * n_rep].reshape(n_rep, 8)
        self._fold_payoffs(ctx, keep, chosen, is_csn)

"""Fast flat-array simulation engine.

Semantically identical to the reference engine (same decision logic, payoffs,
watchdog updates and statistics), but the per-game hot loop runs over flat
Python lists indexed by node id instead of ``Player`` objects with dict-backed
reputation tables.

Why lists and not numpy?  The workload is scalar: each game touches a handful
of individual matrix cells (one decision per intermediate, one (observer,
subject) pair per watchdog record).  Profiling — as the HPC guides insist,
measure first — shows single-element access on Python lists is ~3x faster
than on numpy arrays (no per-access scalar boxing), and the running
``known``/``pf_sum`` aggregates make the activity average O(1).  Numpy still
handles everything batchable (fitness extraction, state export).

Invariants shared with the reference engine (enforced by the equivalence
suite in ``tests/test_engine_equivalence.py``):

* identical floating-point expression order in ratings, payoffs and fitness,
* identical tie-breaking in best-path selection (first index wins),
* identical consumption of the shared random stream (none in the game loop —
  all randomness lives in the oracle and the scheduler; the optional
  second-hand exchange consumes the caller's ``rng`` exactly as the
  reference engine does, via
  :func:`repro.reputation.exchange.exchange_reputation_flat`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.payoff import PayoffConfig
from repro.core.strategy import STRATEGY_LENGTH, UNKNOWN_BIT, Strategy
from repro.game.stats import TournamentStats
from repro.paths.oracle import PathOracle
from repro.reputation.activity import ActivityClassifier
from repro.reputation.exchange import ExchangeConfig, exchange_reputation_flat
from repro.reputation.trust import TrustTable
from repro.telemetry.runtime import get_telemetry

__all__ = ["FastEngine"]


class FastEngine:
    """Flat-array implementation of the tournament semantics."""

    name = "fast"

    def __init__(
        self,
        n_population: int,
        max_selfish: int,
        trust_table: TrustTable | None = None,
        activity: ActivityClassifier | None = None,
        payoffs: PayoffConfig | None = None,
    ):
        if n_population < 1:
            raise ValueError(f"population must be >= 1, got {n_population}")
        if max_selfish < 0:
            raise ValueError(f"max_selfish must be >= 0, got {max_selfish}")
        self.n_population = n_population
        self.max_selfish = max_selfish
        self.trust_table = trust_table or TrustTable()
        self.activity = activity or ActivityClassifier()
        self.payoffs = payoffs or PayoffConfig()
        if self.trust_table.n_levels != 4:
            raise ValueError("FastEngine is specialised to 4 trust levels")
        self.m = n_population + max_selfish
        # cached plain-Python parameters for the hot loop
        self._b0, self._b1, self._b2 = self.trust_table.bounds
        self._band = self.activity.band
        self._fwd_pay = tuple(self.payoffs.forward_by_trust)
        self._disc_pay = tuple(self.payoffs.discard_by_trust)
        self._default_trust = self.payoffs.default_trust
        self._src_success = self.payoffs.source_success
        self._src_failure = self.payoffs.source_failure
        self._strategies: list[tuple[int, ...]] = [
            (1,) * STRATEGY_LENGTH for _ in range(n_population)
        ]
        self._alloc()

    def _alloc(self) -> None:
        m = self.m
        # reputation state: row = observer, column = subject
        self.ps = [[0] * m for _ in range(m)]
        self.pf = [[0] * m for _ in range(m)]
        self.known = [0] * m  # subjects with ps > 0, per observer
        self.pf_sum = [0] * m  # sum of pf over subjects, per observer
        # payoff accounting, per player id
        self.send_pay = [0.0] * m
        self.fwd_pay_acc = [0.0] * m
        self.disc_pay_acc = [0.0] * m
        self.n_sent = [0] * m
        self.n_fwd = [0] * m
        self.n_disc = [0] * m

    # -- SimulationEngine protocol ------------------------------------------

    @property
    def population_ids(self) -> Sequence[int]:
        return range(self.n_population)

    def selfish_ids(self, n: int) -> list[int]:
        if n > self.max_selfish:
            raise ValueError(
                f"environment needs {n} CSN, engine allocated {self.max_selfish}"
            )
        return [self.n_population + k for k in range(n)]

    def set_strategies(self, strategies: Sequence[Strategy]) -> None:
        if len(strategies) != self.n_population:
            raise ValueError(
                f"expected {self.n_population} strategies, got {len(strategies)}"
            )
        self._strategies = [tuple(s.bits) for s in strategies]

    def reset_generation(self) -> None:
        self._alloc()

    def run_tournament(
        self,
        participants: Sequence[int],
        rounds: int,
        oracle: PathOracle,
        stats: TournamentStats,
        exchange: ExchangeConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        do_exchange = exchange is not None and exchange.enabled
        if do_exchange and rng is None:
            raise ValueError("reputation exchange requires an rng")
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        # hot-loop local aliases
        ps, pf = self.ps, self.pf
        known, pf_sum = self.known, self.pf_sum
        send_pay, n_sent = self.send_pay, self.n_sent
        fwd_acc, n_fwd = self.fwd_pay_acc, self.n_fwd
        disc_acc, n_disc = self.disc_pay_acc, self.n_disc
        strategies = self._strategies
        n_pop = self.n_population
        b0, b1, b2 = self._b0, self._b1, self._b2
        band = self._band
        fwd_table, disc_table = self._fwd_pay, self._disc_pay
        default_trust = self._default_trust
        record_request = stats.record_request
        record_game = stats.record_game
        record_path_choice = stats.record_path_choice

        # telemetry seam: one enabled check per tournament; the per-game hot
        # loop below never touches the recorder (zero-overhead contract)
        tel = get_telemetry()
        if not tel.enabled:
            tel = None

        participants = list(participants)
        selfish_set = frozenset(p for p in participants if p >= n_pop)

        for round_no in range(rounds):
            round_span = tel.span("round") if tel is not None else None
            if round_span is not None:
                round_span.__enter__()
            for source in participants:
                setup = oracle.draw(source, participants)
                paths = setup.paths
                source_selfish = source >= n_pop

                # -- best-path selection (mirrors paths.rating exactly) -----
                ps_s, pf_s = ps[source], pf[source]
                best_i = 0
                r = 1.0
                for node in paths[0]:
                    c = ps_s[node]
                    r *= (pf_s[node] / c) if c else 0.5
                best_r = r
                for i in range(1, len(paths)):
                    r = 1.0
                    for node in paths[i]:
                        c = ps_s[node]
                        r *= (pf_s[node] / c) if c else 0.5
                    if r > best_r:
                        best_i, best_r = i, r
                path = paths[best_i]

                record_path_choice(
                    source_selfish, any(node in selfish_set for node in path)
                )

                # -- sequential decisions -----------------------------------
                deciders: list[int] = []
                flags: list[bool] = []
                trusts: list[int | None] = []
                success = True
                for j in deciders_path_iter(path):
                    c = ps[j][source]
                    if c == 0:
                        trust: int | None = None
                        forward = (
                            False if j >= n_pop else strategies[j][UNKNOWN_BIT] == 1
                        )
                    else:
                        rate = pf[j][source] / c
                        trust = (
                            3
                            if rate > b2
                            else 2
                            if rate > b1
                            else 1
                            if rate > b0
                            else 0
                        )
                        if j >= n_pop:
                            forward = False
                        else:
                            fj = pf[j][source]
                            av = pf_sum[j] / known[j]
                            act = (
                                0
                                if fj < av - band * av
                                else 2
                                if fj > av + band * av
                                else 1
                            )
                            forward = strategies[j][trust * 3 + act] == 1
                    deciders.append(j)
                    flags.append(forward)
                    trusts.append(trust)
                    record_request(source_selfish, j >= n_pop, forward)
                    if not forward:
                        success = False
                        break

                # -- payoffs (same accumulation order as the reference) -----
                send_pay[source] += (
                    self._src_success if success else self._src_failure
                )
                n_sent[source] += 1
                for j, forward, trust in zip(deciders, flags, trusts):
                    level = default_trust if trust is None else trust
                    if forward:
                        fwd_acc[j] += fwd_table[level]
                        n_fwd[j] += 1
                    else:
                        disc_acc[j] += disc_table[level]
                        n_disc[j] += 1

                # -- watchdog reputation updates -----------------------------
                if success:
                    updaters = (source, *deciders)
                else:
                    updaters = (source, *deciders[:-1])
                for u in updaters:
                    ps_u, pf_u = ps[u], pf[u]
                    ku, su = known[u], pf_sum[u]
                    for j, forward in zip(deciders, flags):
                        if j != u:
                            if ps_u[j] == 0:
                                ku += 1
                            ps_u[j] += 1
                            if forward:
                                pf_u[j] += 1
                                su += 1
                    known[u], pf_sum[u] = ku, su

                record_game(source_selfish, success)

            if round_span is not None:
                round_span.__exit__(None, None, None)
            if do_exchange and (round_no + 1) % exchange.interval == 0:
                if tel is None:
                    exchange_reputation_flat(
                        ps, pf, known, pf_sum, participants, exchange, rng
                    )
                else:
                    with tel.registry.timer("engine.exchange_s").time():
                        exchange_reputation_flat(
                            ps, pf, known, pf_sum, participants, exchange, rng
                        )
        if tel is not None:
            tel.count("engine.tournaments")
            tel.count("engine.rounds", rounds)
            tel.count("engine.games", rounds * len(participants))

    def fitness(self) -> np.ndarray:
        out = np.empty(self.n_population, dtype=float)
        for pid in range(self.n_population):
            events = self.n_sent[pid] + self.n_fwd[pid] + self.n_disc[pid]
            if events == 0:
                out[pid] = 0.0
            else:
                total = (
                    self.send_pay[pid]
                    + self.fwd_pay_acc[pid]
                    + self.disc_pay_acc[pid]
                )
                out[pid] = total / events
        return out

    # -- introspection (tests, analysis) --------------------------------------

    def payoff_matrix(self) -> np.ndarray:
        """Reputation state as ``(M, M, 2)`` — same layout as the reference."""
        out = np.zeros((self.m, self.m, 2), dtype=np.int64)
        out[:, :, 0] = np.asarray(self.ps, dtype=np.int64)
        out[:, :, 1] = np.asarray(self.pf, dtype=np.int64)
        return out


def deciders_path_iter(path: Sequence[int]):
    """Iterate the intermediates of a path in forwarding order.

    Exists as a named helper (rather than iterating ``path`` inline) so the
    sequential-decision walk reads the same in both engines and profilers
    attribute its cost distinctly.
    """
    return iter(path)

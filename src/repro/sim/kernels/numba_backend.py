"""Optional ``@njit``-compiled kernel backend (``.[kernels]`` extra).

Importing this module requires numba; :func:`repro.sim.kernels.resolve_kernel`
gates the import so environments without the extra never touch it.  The ops
mirror the numpy reference semantics loop-for-loop, but compiled loops fuse
the gather/compare/scatter chains the numpy backend pays one pass each for.
Float reductions may associate differently, so this backend is certified by
the statistical-equivalence tier (KS / Mann-Whitney / Fig.-4 band), not
bit-identity — see ``tests/test_sim_kernels.py`` and the CI ``kernels`` job.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from repro.core.strategy import STRATEGY_LENGTH, UNKNOWN_BIT

__all__ = ["NumbaKernel"]

_UNKNOWN_BIT = int(UNKNOWN_BIT)
_STRAT_LEN = int(STRATEGY_LENGTH)


@njit(cache=True)
def _rate_paths(ps_flat, pf_flat, cells, pad):
    n, h = cells.shape
    out = np.empty(n, dtype=np.float64)
    for p in range(n):
        r = 1.0
        for x in range(h):
            if pad[p, x]:
                continue
            cell = cells[p, x]
            c = ps_flat[cell]
            r *= (pf_flat[cell] / c) if c else 0.5
        out[p] = r
    return out


@njit(cache=True)
def _decide(
    ps_flat,
    pf_flat,
    known,
    pf_sum,
    strat_flat,
    b0,
    b1,
    b2,
    band,
    jc,
    valid,
    cells_dec,
    trust,
    unknown,
    fwd,
    decided,
    success,
):
    n, h = jc.shape
    n_dec = np.zeros(n, dtype=np.int64)
    for g in range(n):
        alive = True
        ok = True
        for x in range(h):
            j = jc[g, x]
            cell = cells_dec[g, x]
            c = ps_flat[cell]
            f = pf_flat[cell]
            if c == 0:
                unknown[g, x] = True
                trust[g, x] = 0
                bit = _UNKNOWN_BIT
            else:
                unknown[g, x] = False
                rate = f / c
                t = 0
                if rate > b0:
                    t += 1
                if rate > b1:
                    t += 1
                if rate > b2:
                    t += 1
                trust[g, x] = t
                kn = known[j]
                if kn < 1:
                    kn = 1
                av = pf_sum[j] / kn
                delta = band * av
                act = 1
                if f > av + delta:
                    act = 2
                elif f < av - delta:
                    act = 0
                bit = t * 3 + act
            f_vote = valid[g, x] and strat_flat[j * _STRAT_LEN + bit] == 1
            fwd[g, x] = f_vote
            d = valid[g, x] and alive
            decided[g, x] = d
            if d:
                n_dec[g] += 1
            if valid[g, x]:
                if not f_vote:
                    ok = False
                if alive and not f_vote:
                    alive = False
        success[g] = ok
    return n_dec


@njit(cache=True)
def _first_writer(buf, fill, codes, pos):
    buf[:] = fill
    for i in range(len(codes) - 1, -1, -1):
        buf[codes[i]] = pos[i]


@njit(cache=True)
def _commit(ps, pf, ps_flat, pf_flat, known, pf_sum, pairs, pf_pairs):
    for i in range(len(pairs)):
        ps_flat[pairs[i]] += 1
    for i in range(len(pf_pairs)):
        pf_flat[pf_pairs[i]] += 1
    m = ps.shape[0]
    for u in range(m):
        k = 0
        s = 0
        for j in range(m):
            if ps[u, j] != 0:
                k += 1
            s += pf[u, j]
        known[u] = k
        pf_sum[u] = s


@njit(cache=True)
def _replay_decide(
    ps,
    pf,
    known,
    pf_sum,
    strat_flat,
    csn_lookup,
    b0,
    b1,
    b2,
    band,
    fwd_pay,
    disc_pay,
    default_trust,
    src_success,
    src_failure,
    send_pay,
    n_sent,
    fwd_pay_acc,
    n_fwd,
    disc_pay_acc,
    n_disc,
    source,
    nodes,
    lens,
    req,
    delivered,
    csn_free,
):
    source_selfish = 1 if csn_lookup[source] else 0
    n_paths = len(lens)
    best_i = 0
    best_r = -1.0
    for i in range(n_paths):
        r = 1.0
        for x in range(lens[i]):
            node = nodes[i, x]
            cell = ps[source, node]
            r *= (pf[source, node] / cell) if cell else 0.5
        if r > best_r:
            best_i = i
            best_r = r
    plen = lens[best_i]

    contains_csn = 0
    for x in range(plen):
        if csn_lookup[nodes[best_i, x]]:
            contains_csn = 1
            break
    csn_free[source_selfish * 2 + contains_csn] += 1

    deciders = np.empty(plen, dtype=np.int64)
    flags = np.zeros(plen, dtype=np.bool_)
    trusts = np.empty(plen, dtype=np.int64)
    n_decided = 0
    success = True
    req_base = 4 if source_selfish else 0
    for x in range(plen):
        j = nodes[best_i, x]
        if csn_lookup[j]:
            forward = False
            trust = -1
            req[req_base + 2] += 1
        else:
            cell = ps[j, source]
            if cell == 0:
                trust = -1
                forward = strat_flat[j * _STRAT_LEN + _UNKNOWN_BIT] == 1
            else:
                fj = pf[j, source]
                rating = fj / cell
                if rating > b2:
                    trust = 3
                elif rating > b1:
                    trust = 2
                elif rating > b0:
                    trust = 1
                else:
                    trust = 0
                av = pf_sum[j] / known[j]
                if fj < av - band * av:
                    act = 0
                elif fj > av + band * av:
                    act = 2
                else:
                    act = 1
                forward = strat_flat[j * _STRAT_LEN + trust * 3 + act] == 1
            if forward:
                req[req_base + 1] += 1
            else:
                req[req_base] += 1
        deciders[n_decided] = j
        flags[n_decided] = forward
        trusts[n_decided] = trust
        n_decided += 1
        if not forward:
            success = False
            break

    send_pay[source] += src_success if success else src_failure
    n_sent[source] += 1
    for idx in range(n_decided):
        j = deciders[idx]
        if csn_lookup[j]:
            continue
        t = trusts[idx]
        level = default_trust if t < 0 else t
        if flags[idx]:
            fwd_pay_acc[j] += fwd_pay[level]
            n_fwd[j] += 1
        else:
            disc_pay_acc[j] += disc_pay[level]
            n_disc[j] += 1

    delivered[source_selfish * 2 + (1 if success else 0)] += 1
    return deciders[:n_decided], flags[:n_decided], success


@njit(cache=True)
def _watchdog(ps, pf, known, pf_sum, source, deciders, flags, success):
    n_decided = len(deciders)
    n_upd = n_decided if success else n_decided - 1
    for t in range(-1, n_upd):
        u = source if t < 0 else deciders[t]
        for idx in range(n_decided):
            j = deciders[idx]
            if j != u:
                if ps[u, j] == 0:
                    known[u] += 1
                ps[u, j] += 1
                if flags[idx]:
                    pf[u, j] += 1
                    pf_sum[u] += 1


class NumbaKernel:
    """Compiled implementation of the kernel ops (statistical tier)."""

    name = "numba"
    compiled = True

    def rate_paths(self, state, cells, pad):
        return _rate_paths(state.ps_flat, state.pf_flat, cells, pad)

    def decide(self, state, jc, valid, cells_dec, trust, unknown, fwd, decided, success):
        return _decide(
            state.ps_flat,
            state.pf_flat,
            state.known,
            state.pf_sum,
            state.strat_flat,
            state.b0,
            state.b1,
            state.b2,
            state.band,
            np.ascontiguousarray(jc),
            np.ascontiguousarray(valid),
            np.ascontiguousarray(cells_dec),
            trust,
            unknown,
            fwd,
            decided,
            success,
        )

    def first_writer(self, buf, fill, codes, pos):
        _first_writer(buf, fill, codes, pos)

    def commit(self, state, pairs, pf_pairs):
        _commit(
            state.ps,
            state.pf,
            state.ps_flat,
            state.pf_flat,
            state.known,
            state.pf_sum,
            pairs,
            pf_pairs,
        )

    def replay_decide(self, state, source, nodes, lens, req, delivered, csn_free):
        deciders, flags, success = _replay_decide(
            state.ps,
            state.pf,
            state.known,
            state.pf_sum,
            state.strat_flat,
            state.csn_lookup,
            state.b0,
            state.b1,
            state.b2,
            state.band,
            state.fwd_pay,
            state.disc_pay,
            state.default_trust,
            state.src_success,
            state.src_failure,
            state.send_pay,
            state.n_sent,
            state.fwd_pay_acc,
            state.n_fwd,
            state.disc_pay_acc,
            state.n_disc,
            source,
            np.ascontiguousarray(nodes),
            np.ascontiguousarray(lens),
            req,
            delivered,
            csn_free,
        )
        return deciders, flags, bool(success)

    def watchdog(self, state, source, deciders, flags, success):
        _watchdog(
            state.ps,
            state.pf,
            state.known,
            state.pf_sum,
            source,
            deciders,
            flags,
            success,
        )

"""Pluggable compute kernels for the speculative engines.

The turbo/fused/stacked engines are numpy-orchestrated, but their inner
loops fall into five narrow, state-free *ops* — path rating, the per-round
decision gather/scatter, the first-writer conflict walk, the batched
reputation commit, and the exact scalar conflict-replay with its watchdog
recurrence.  This package carves those ops behind a small interface so a
compiled backend can replace them without touching engine logic:

* :class:`~repro.sim.kernels.numpy_backend.NumpyKernel` — the reference
  backend, always available.  It *is* the pre-kernel engine code, moved:
  results are bit-identical to the historical inline implementation
  (pinned by ``tests/test_sim_kernels.py``).
* ``NumbaKernel`` — optional ``@njit``-compiled backend behind the
  ``.[kernels]`` extra (``pip install -e .[dev,kernels]``).  Same op
  semantics; float reductions may associate differently under fusion, so
  the backend is held to the engines' *statistical* equivalence contract
  (KS / Mann-Whitney / Fig.-4 band), not bit-identity.

Selection is by name: ``numpy``, ``numba``, or ``auto`` (numba when
importable, else numpy) — via ``ExperimentConfig(kernel=...)`` and the CLI
``--kernel`` flag.  :class:`TimedKernel` wraps any backend with per-op
telemetry timers (``kernel.decision_s`` / ``kernel.replay_s`` /
``kernel.watchdog_s`` / ...) so kernel wins stay attributable in
``scripts/profile_engine.py``; engines only apply it when telemetry is
enabled, preserving the zero-overhead contract.
"""

from __future__ import annotations

from importlib import util as _importlib_util
from typing import NamedTuple

import numpy as np

__all__ = [
    "KERNEL_NAMES",
    "KernelState",
    "TimedKernel",
    "available_backends",
    "numba_available",
    "resolve_kernel",
]

#: Valid ``kernel=`` / ``--kernel`` spellings.
KERNEL_NAMES = ("auto", "numpy", "numba")


class KernelState(NamedTuple):
    """The engine state a kernel op may read or mutate, as one bundle.

    Array fields are *views* of the owning engine's arrays (mutated in
    place by ``commit`` / ``watchdog`` / ``replay_decide``); scalars are
    the engine's trust/activity/payoff parameters.  Engines rebuild the
    bundle per entry point — allocation is a handful of references.
    """

    ps: np.ndarray  # (m, m) int64 — packets seen, observer x subject
    pf: np.ndarray  # (m, m) int64 — packets forwarded
    ps_flat: np.ndarray  # the (m*m,) views the gather/scatter ops use
    pf_flat: np.ndarray
    known: np.ndarray  # (m,) int64 — nonzero ps cells per observer
    pf_sum: np.ndarray  # (m,) int64 — row sums of pf
    strat_flat: np.ndarray  # (m * STRATEGY_LENGTH,) int8, CSN rows zero
    csn_lookup: np.ndarray  # (m,) bool — is this id a selfish seat?
    b0: float  # trust bounds (4-level table)
    b1: float
    b2: float
    band: float  # activity band
    fwd_pay: np.ndarray  # (4,) float64 — forward payoff by trust level
    disc_pay: np.ndarray  # (4,) float64 — discard payoff by trust level
    default_trust: int
    src_success: float
    src_failure: float
    send_pay: np.ndarray  # (m,) float64 — per-node payoff accumulators
    n_sent: np.ndarray  # (m,) int64
    fwd_pay_acc: np.ndarray
    n_fwd: np.ndarray
    disc_pay_acc: np.ndarray
    n_disc: np.ndarray


def numba_available() -> bool:
    """Whether the optional compiled backend's dependency is importable."""
    return _importlib_util.find_spec("numba") is not None


def available_backends() -> dict[str, bool]:
    """Availability by backend name (``auto`` excluded — it is a policy)."""
    return {"numpy": True, "numba": numba_available()}


def resolve_kernel(name: str = "auto"):
    """Instantiate the kernel backend for ``name``.

    ``auto`` prefers the compiled backend when its dependency is
    installed and falls back to numpy otherwise; asking for ``numba``
    explicitly raises a descriptive error when it is not installed
    (fail fast at engine construction, not mid-run).
    """
    if name not in KERNEL_NAMES:
        raise ValueError(
            f"unknown kernel backend {name!r} (expected one of {KERNEL_NAMES})"
        )
    if name == "auto":
        name = "numba" if numba_available() else "numpy"
    if name == "numba":
        if not numba_available():
            raise RuntimeError(
                "kernel backend 'numba' requested but numba is not"
                " installed; install the extra (pip install -e"
                " '.[kernels]') or use --kernel numpy"
            )
        from repro.sim.kernels.numba_backend import NumbaKernel

        return NumbaKernel()
    from repro.sim.kernels.numpy_backend import NumpyKernel

    return NumpyKernel()


class TimedKernel:
    """Per-op telemetry timing around any kernel backend.

    One timer per op, named ``kernel.<op>_s``; engines install the wrapper
    only when telemetry is enabled, so the disabled path never pays it.
    """

    def __init__(self, inner, registry):
        self._inner = inner
        self._rate = registry.timer("kernel.rate_s")
        self._decision = registry.timer("kernel.decision_s")
        self._walk = registry.timer("kernel.walk_s")
        self._commit = registry.timer("kernel.commit_s")
        self._replay = registry.timer("kernel.replay_s")
        self._watchdog = registry.timer("kernel.watchdog_s")

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def compiled(self) -> bool:
        return self._inner.compiled

    def rate_paths(self, state, cells, pad):
        with self._rate.time():
            return self._inner.rate_paths(state, cells, pad)

    def decide(self, state, jc, valid, cells_dec, trust, unknown, fwd, decided, success):
        with self._decision.time():
            return self._inner.decide(
                state, jc, valid, cells_dec, trust, unknown, fwd, decided, success
            )

    def first_writer(self, buf, fill, codes, pos):
        with self._walk.time():
            self._inner.first_writer(buf, fill, codes, pos)

    def commit(self, state, pairs, pf_pairs):
        with self._commit.time():
            self._inner.commit(state, pairs, pf_pairs)

    def replay_decide(self, state, source, nodes, lens, req, delivered, csn_free):
        with self._replay.time():
            return self._inner.replay_decide(
                state, source, nodes, lens, req, delivered, csn_free
            )

    def watchdog(self, state, source, deciders, flags, success):
        with self._watchdog.time():
            self._inner.watchdog(state, source, deciders, flags, success)

"""Reference kernel backend: the pre-kernel engine code, moved.

Every op here is the historical inline implementation from
``sim/turbo.py`` / ``sim/fused.py`` lifted out verbatim (same float
expressions, same evaluation order), so this backend is **bit-identical**
to the pre-kernel engines on pinned seeds — the parity suite in
``tests/test_sim_kernels.py`` holds it to that.

Two deliberate unifications, both proven exact:

* ``decide`` maps forwarding rates to trust levels with three vectorized
  comparisons instead of ``np.searchsorted(bounds, rate, side="left")``.
  For ascending bounds these agree exactly, boundary equality included:
  ``searchsorted(side="left")`` counts bounds strictly below the value,
  which is precisely ``(r > b0) + (r > b1) + (r > b2)``.
* ``first_writer`` replaces turbo's ``np.minimum.at`` with a reversed
  scatter-assign.  Callers pass write positions in ascending order, so
  assigning in reverse leaves the *minimum* position per code — identical
  output, without ufunc.at's per-element dispatch.
"""

from __future__ import annotations

import numpy as np

from repro.core.strategy import STRATEGY_LENGTH, UNKNOWN_BIT

__all__ = ["NumpyKernel"]


class NumpyKernel:
    """Always-available numpy reference implementation of the kernel ops."""

    name = "numpy"
    compiled = False

    def rate_paths(self, state, cells, pad):
        """Product-of-forwarding-rates rating for a block of path rows.

        ``cells`` is (P, hmax) flattened-matrix indices per hop, ``pad``
        marks padding columns (rated 1.0); unknown cells rate 0.5.
        """
        counts = state.ps_flat.take(cells)
        zero = counts == 0
        np.maximum(counts, 1, out=counts)
        ratings = state.pf_flat.take(cells) / counts
        ratings[zero] = 0.5
        ratings[pad] = 1.0
        return ratings.prod(axis=1)

    def decide(self, state, jc, valid, cells_dec, trust, unknown, fwd, decided, success):
        """Speculative forwarding decisions for every hop of chosen paths.

        ``jc`` is (G, hmax) decider ids (0-padded), ``valid`` the real-hop
        mask, ``cells_dec`` the (decider, source) flattened-matrix indices.
        Writes trust levels, unknown-cell mask, per-hop forward votes,
        decided (hop actually reached) mask and end-to-end success into
        the caller's arrays; returns decisions-per-game counts.
        """
        c2 = state.ps_flat.take(cells_dec)
        f2 = state.pf_flat.take(cells_dec)
        np.equal(c2, 0, out=unknown)
        np.maximum(c2, 1, out=c2)
        rate = f2 / c2
        trust[:] = rate > state.b0
        trust += rate > state.b1
        trust += rate > state.b2

        kn = state.known.take(jc)
        np.maximum(kn, 1, out=kn)
        av = state.pf_sum.take(jc) / kn
        delta = state.band * av
        bit = trust * 3
        bit += 1
        bit += f2 > av + delta
        bit -= f2 < av - delta
        np.copyto(bit, UNKNOWN_BIT, where=unknown)
        bit += jc * STRATEGY_LENGTH
        np.equal(state.strat_flat.take(bit), 1, out=fwd)
        fwd &= valid

        # A hop decides only if every earlier real hop forwarded; padding
        # columns are transparent to the prefix scan.
        prefix = np.logical_and.accumulate(fwd | ~valid, axis=1)
        np.copyto(decided, valid)
        decided[:, 1:] &= prefix[:, :-1]
        success[:] = prefix[:, -1]
        return decided.sum(axis=1)

    def first_writer(self, buf, fill, codes, pos):
        """Scatter the minimum write position per code into ``buf``.

        Requires ``pos`` ascending (per duplicate code) — the reversed
        assignment then leaves the first writer, matching minimum.at.
        """
        buf.fill(fill)
        buf[codes[::-1]] = pos[::-1]

    def commit(self, state, pairs, pf_pairs):
        """Fold accepted observation pairs into the reputation matrices.

        ``pairs`` are flattened (observer, subject) codes of all accepted
        packets-seen updates, ``pf_pairs`` the forwarded subset.  The
        known/pf_sum caches are recomputed wholesale — cheaper than
        tracking which cells crossed zero.
        """
        ps_flat, pf_flat = state.ps_flat, state.pf_flat
        mm = ps_flat.size
        ps_flat += np.bincount(pairs, minlength=mm)
        pf_flat += np.bincount(pf_pairs, minlength=mm)
        state.known[:] = np.count_nonzero(state.ps, axis=1)
        state.pf_sum[:] = state.pf.sum(axis=1)

    def replay_decide(self, state, source, nodes, lens, req, delivered, csn_free):
        """Exact scalar replay of one conflicted game against live state.

        ``nodes``/``lens`` are the game's path rows (padded) and lengths.
        Mutates the request/delivery/csn counters and the per-node payoff
        accumulators; returns ``(deciders, flags, success)`` for the
        watchdog recurrence.
        """
        ps = state.ps
        pf = state.pf
        csn = state.csn_lookup
        strat = state.strat_flat
        source_selfish = bool(csn[source])

        ps_s = ps[source]
        pf_s = pf[source]
        best_i = 0
        best_r = -1.0
        for i in range(len(lens)):
            row = nodes[i]
            r = 1.0
            for x in range(int(lens[i])):
                node = int(row[x])
                cell = int(ps_s[node])
                r *= (int(pf_s[node]) / cell) if cell else 0.5
            if r > best_r:
                best_i = i
                best_r = r
        row = nodes[best_i]
        path = [int(row[x]) for x in range(int(lens[best_i]))]

        contains_csn = False
        for node in path:
            if csn[node]:
                contains_csn = True
                break
        csn_free[source_selfish * 2 + contains_csn] += 1

        req_base = 4 if source_selfish else 0
        deciders: list[int] = []
        flags: list[bool] = []
        trusts: list[int] = []
        success = True
        for j in path:
            if csn[j]:
                deciders.append(j)
                flags.append(False)
                trusts.append(-1)
                req[req_base + 2] += 1
                success = False
                break
            cell = int(ps[j, source])
            if cell == 0:
                trust = -1
                forward = int(strat[j * STRATEGY_LENGTH + UNKNOWN_BIT]) == 1
            else:
                rating = int(pf[j, source]) / cell
                if rating > state.b2:
                    trust = 3
                elif rating > state.b1:
                    trust = 2
                elif rating > state.b0:
                    trust = 1
                else:
                    trust = 0
                av = int(state.pf_sum[j]) / int(state.known[j])
                if int(pf[j, source]) < av - state.band * av:
                    act = 0
                elif int(pf[j, source]) > av + state.band * av:
                    act = 2
                else:
                    act = 1
                forward = int(strat[j * STRATEGY_LENGTH + trust * 3 + act]) == 1
            deciders.append(j)
            flags.append(forward)
            trusts.append(trust)
            req[req_base + (1 if forward else 0)] += 1
            if not forward:
                success = False
                break

        state.send_pay[source] += state.src_success if success else state.src_failure
        state.n_sent[source] += 1
        for j, forward, trust in zip(deciders, flags, trusts):
            if csn[j]:
                continue
            level = state.default_trust if trust < 0 else trust
            if forward:
                state.fwd_pay_acc[j] += state.fwd_pay[level]
                state.n_fwd[j] += 1
            else:
                state.disc_pay_acc[j] += state.disc_pay[level]
                state.n_disc[j] += 1

        delivered[source_selfish * 2 + success] += 1
        return (
            np.asarray(deciders, dtype=np.int64),
            np.asarray(flags, dtype=bool),
            success,
        )

    def watchdog(self, state, source, deciders, flags, success):
        """The watchdog recurrence: every observer of a (partial) relay
        records what each decider did.  On failure the last decider saw
        no downstream behaviour and observes nothing."""
        ps = state.ps
        pf = state.pf
        known = state.known
        pf_sum = state.pf_sum
        n_decided = len(deciders)
        n_upd = n_decided if success else n_decided - 1
        for t in range(-1, n_upd):
            u = source if t < 0 else int(deciders[t])
            ps_u = ps[u]
            pf_u = pf[u]
            for idx in range(n_decided):
                j = int(deciders[idx])
                if j != u:
                    if ps_u[j] == 0:
                        known[u] += 1
                    ps_u[j] += 1
                    if flags[idx]:
                        pf_u[j] += 1
                        pf_sum[u] += 1

"""Generation-fused "mega-batch" simulation engine.

The fifth engine: a :class:`~repro.sim.turbo.TurboEngine` subclass that
plans and executes **all tournaments of a generation as one stacked pass**
instead of re-entering the engine per tournament.  Turbo vectorizes one
tournament's round (a table-5 round is 50 games, so per-op numpy dispatch
still dominates); fused widens every per-round pass to a *slate* — round
``r`` of every stacked tournament at once (``T * n`` games) — amortizing
the fixed dispatch cost across the whole stack while sharing one plan
(:func:`repro.paths.vector.plan_generation_arrays`), one set of route
tables / ``_RoutedSlotCache`` slots, and the generation's reputation state.

Why this is sound: within a generation the reputation matrices persist
*across* tournaments (``reset_generation`` fires once per generation), and
tournaments of one generation are causally coupled only through those
matrices.  The stacked layout is round-major, so the slate executes round
``r`` of every tournament against the same round-start state — a round-level
lockstep reordering of the sequential tournament-by-tournament schedule.

What the fusion relaxes, on top of turbo's tolerated list:

* **Cross-tournament round lockstep.**  Sequentially, tournament ``t + 1``
  starts against the matrices tournament ``t`` finished; fused, round ``r``
  of every tournament reads the state left by round ``r - 1`` of every
  tournament.  Evidence totals are identical — only the interleaving of
  when each tournament's watchdog writes land changes.
* **Cross-tournament slate staleness.**  The conflict pass scopes pair
  codes *per tournament* (tournament-offset codes), exactly reproducing
  turbo's within-round walk inside each tournament; a pair written by
  another tournament in the same slate is tolerated staleness (same class
  as turbo's activity-average staleness) rather than a replay trigger —
  unscoped detection would replay nearly every game of a wide slate back
  through the scalar kernel.
* **Generation-scoped route-table sharing.**  While the stacked plan is
  drawn, a mobile oracle's route cache serves entries across the
  generation's topology epochs under zero-budget lazy revalidation (every
  served route is edge-checked against the current graph; only pairs whose
  cached routes all broke pay a full search), then reverts to its exact
  policy.  A relaxation of route *preference*, not existence — the same
  class as the approx cache policy the statistical tier gates on mobile
  scenarios.

Both are distribution-preserving perturbations of micro-outcome order, not
of the paper's reported aggregates; ``tests/test_engine_statistical.py``
holds fused to the same KS / Mann-Whitney / Fig.-4-band gates as turbo, and
``tests/test_sim_fused.py`` pins the exact invariants (conservation,
``pf <= ps``, aggregate consistency) and the contract edges (exchange
fallback, per-tournament hooks).

The second-hand exchange interleaves gossip with each tournament's round
stream, which fusion cannot reorder away — ``run_generation`` falls back to
the per-tournament turbo path when the exchange is enabled (bit-identical
to driving turbo from the sequential generation loop).  ``run_tournament``
is inherited unchanged, so outside the fused entry point the engine *is*
turbo.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.game.stats import TournamentStats
from repro.network.provider import ApproxPolicy
from repro.paths.oracle import PathOracle
from repro.paths.vector import GamePlanArrays, plan_generation_arrays
from repro.reputation.exchange import ExchangeConfig
from repro.sim.kernels import TimedKernel
from repro.sim.turbo import TurboEngine, _PlanContext
from repro.telemetry.runtime import get_telemetry

__all__ = ["FusedEngine"]


class _FusedContext(_PlanContext):
    """A :class:`_PlanContext` over a stacked generation plan.

    ``games_per_round`` *is* the slate width (``T * n``), so every
    inherited precomputation (relative path rows, source order, fold
    buffers) works verbatim; the conflict-walk scoping slots are filled so
    the inherited round pass scopes per tournament: ``pair_off[g]`` shifts
    game ``g``'s pair codes into its tournament's private ``m * m`` block
    and ``walk_pos[g]`` is its seat position within that tournament (the
    "earlier game" order of turbo's conflict walk, now per tournament).
    """

    __slots__ = ("n_seats",)

    def __init__(
        self,
        plan: GamePlanArrays,
        slate: int,
        m: int,
        csn_lookup: np.ndarray,
        n_tournaments: int,
        n_seats: int,
    ):
        super().__init__(plan, slate, m, csn_lookup)
        self.n_seats = n_seats
        self.pair_off = np.repeat(
            np.arange(n_tournaments, dtype=np.int64) * (m * m), n_seats
        )
        self.walk_pos = np.tile(
            np.arange(n_seats, dtype=np.int64), n_tournaments
        )
        self.walk_fill = n_seats
        # one private pair-code block per tournament (+1 spill slot, as in
        # the base context)
        self.writer_buf = np.empty(n_tournaments * m * m + 1, dtype=np.int64)


class FusedEngine(TurboEngine):
    """Turbo's speculative slate kernel, widened to a whole generation."""

    name = "fused"
    #: :func:`repro.tournament.evaluation.evaluate_generation` dispatches
    #: on this flag to hand the engine all of an environment's seatings at
    #: once instead of one tournament at a time.
    supports_generation_fusion = True

    def run_generation(
        self,
        seatings: Sequence[Sequence[int]],
        rounds: int,
        oracle: PathOracle,
        stats: TournamentStats,
        exchange: ExchangeConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        """Run every seating's tournament as one fused stacked pass.

        All seatings must be the same size (the scheduler guarantees this
        within one environment).  ``stats`` receives the merged counters of
        the whole stack — identical bookkeeping to merging per-tournament
        stats, since the accumulators are pure sums.
        """
        do_exchange = exchange is not None and exchange.enabled
        if do_exchange and rng is None:
            raise ValueError("reputation exchange requires an rng")
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        seatings = [list(s) for s in seatings]
        if not seatings:
            raise ValueError("need at least one seating")
        n_seats = len(seatings[0])
        if any(len(s) != n_seats for s in seatings):
            raise ValueError(
                "all seatings of one fused generation must be the same size"
            )
        hook = getattr(oracle, "on_tournament_end", None)
        tel = get_telemetry()
        if not tel.enabled:
            tel = None
        if do_exchange:
            # gossip interleaves with each tournament's round stream; that
            # ordering cannot be fused away, so fall back to the inherited
            # per-tournament turbo path (bit-identical to driving turbo
            # from the sequential generation loop)
            if tel is not None:
                tel.count("engine.fused.fallback_tournaments", len(seatings))
            for seating in seatings:
                self.run_tournament(seating, rounds, oracle, stats, exchange, rng)
                if hook is not None:
                    hook()
            return

        n_tournaments = len(seatings)
        slate = n_tournaments * n_seats
        share = self._share_route_tables(oracle)
        try:
            if tel is None:
                plan = plan_generation_arrays(
                    oracle, seatings, rounds, on_tournament_end=hook
                )
            else:
                with tel.registry.timer("engine.plan_s").time():
                    plan = plan_generation_arrays(
                        oracle, seatings, rounds, on_tournament_end=hook
                    )
        finally:
            self._restore_route_policy(oracle, share)
        ctx = _FusedContext(
            plan, slate, self.m, self._csn_lookup, n_tournaments, n_seats
        )
        self._ks = self._kernel_state()
        self._k = (
            self._kernel if tel is None else TimedKernel(self._kernel, tel.registry)
        )
        req = np.zeros(9, dtype=np.int64)
        delivered = np.zeros(4, dtype=np.int64)
        csn_free = np.zeros(4, dtype=np.int64)
        self._replayed_games = 0
        self._second_chance_games = 0

        for round_no in range(rounds):
            round_span = tel.span("round") if tel is not None else None
            if round_span is not None:
                round_span.__enter__()
            self._process_round(ctx, round_no, req, delivered, csn_free)
            if round_span is not None:
                round_span.__exit__(None, None, None)

        if tel is None:
            self._fold_tournament(ctx, req, delivered, csn_free)
        else:
            with tel.registry.timer("engine.fold_s").time():
                self._fold_tournament(ctx, req, delivered, csn_free)
            tel.count("engine.tournaments", n_tournaments)
            tel.count("engine.rounds", rounds * n_tournaments)
            tel.count("engine.games", rounds * slate)
            tel.count("engine.turbo.replayed_games", self._replayed_games)
            tel.count("engine.fused.generations")
            tel.count("engine.fused.stacked_tournaments", n_tournaments)
            tel.count("engine.fused.games", rounds * slate)
            tel.count(
                "engine.fused.second_chance_games", self._second_chance_games
            )

        self._merge_stats(stats, req, delivered, csn_free)

    @staticmethod
    def _share_route_tables(oracle: PathOracle):
        """Enable generation-scoped route sharing on a dynamic provider.

        While the stacked plan is drawn, the mobile oracle's route cache
        serves entries *across* the generation's topology epochs under
        zero-budget lazy revalidation: every served route is edge-checked
        against the current graph (so it always exists right now), and a
        full route search runs only for pairs whose cached routes all
        broke.  That trades "exactly the K shortest of this epoch" for
        "current-consistent routes computed earlier this generation" — a
        relaxation of route *preference*, not existence, in the same class
        as the approx cache policy the statistical tier already gates on
        mobile scenarios.  Returns the policy to restore, or ``None`` when
        the oracle has no swappable dynamic provider (random and static
        topology oracles).
        """
        provider = getattr(oracle, "provider", None)
        set_policy = getattr(provider, "set_policy", None)
        if set_policy is None:
            return None
        previous = provider.policy
        if previous.budget > 0:
            # an approx provider already shares more aggressively than the
            # generation scope would; leave it alone
            return None
        set_policy(ApproxPolicy(0), revalidate=True)
        return previous

    @staticmethod
    def _restore_route_policy(oracle: PathOracle, previous) -> None:
        """Undo :meth:`_share_route_tables` (no-op for ``None``)."""
        if previous is not None:
            oracle.provider.set_policy(previous)

    def _resolve_conflicts(
        self,
        ctx: _FusedContext,
        g0: int,
        rel_ids: np.ndarray,
        req: np.ndarray,
        delivered: np.ndarray,
        csn_free: np.ndarray,
    ) -> None:
        """Below ~10 games the second-chance sub-pass's fixed dispatch cost
        exceeds the scalar kernel; replay those directly."""
        if len(rel_ids) < 10:
            self._replay_ids(ctx, g0 + rel_ids, req, delivered, csn_free)
        else:
            self._second_chance(ctx, g0, rel_ids, req, delivered, csn_free)

    def _second_chance(
        self,
        ctx: _FusedContext,
        g0: int,
        rel_ids: np.ndarray,
        req: np.ndarray,
        delivered: np.ndarray,
        csn_free: np.ndarray,
    ) -> None:
        """Re-speculate the slate's conflicted games against live state.

        Turbo replays every conflicted game through the scalar kernel; on a
        wide slate that serial tail dominates the round.  This pass applies
        the *same* speculate-commit-walk discipline to just the conflicted
        subset: their ratings and decisions are recomputed against the
        post-commit matrices, the per-tournament conflict walk reruns among
        the subset's own writes, and only games that conflict *again*
        (an earlier conflicted game of the same tournament wrote one of
        their read pairs — rare, since conflicts are already sparse) fall
        back to the scalar kernel.  No new relaxation class: it is the
        slate speculation applied iteratively, and accepted games re-enter
        the buffered fold exactly like first-pass games.
        """
        m = ctx.m
        plan = ctx.plan
        ks = self._ks
        kern = self._k
        g = g0 + rel_ids  # absolute game ids, ascending = replay order
        n_sub = len(g)

        # candidate-path rows of the subset (each game's rows are contiguous
        # at game_path_start[g], column-ordered)
        starts = plan.game_path_start[g]
        counts = plan.game_path_start[g + 1] - starts
        total = int(counts.sum())
        offs = np.cumsum(counts) - counts
        prow = np.repeat(starts, counts) + (
            np.arange(total) - np.repeat(offs, counts)
        )

        # -- ratings + best path, against the live matrices ------------------
        hmax_r = int(plan.path_len[prow].max()) if total else 1
        ratings = kern.rate_paths(
            ks, ctx.cells_rate[prow, :hmax_r], ctx.pad_path[prow, :hmax_r]
        )
        buf = ctx.ratings_buf[:n_sub]
        buf.fill(-1.0)
        buf[np.repeat(np.arange(n_sub), counts), plan.path_col[prow]] = ratings
        chosen = starts + buf.argmax(axis=1)

        # -- decisions, mirroring the slate pass on the subset ---------------
        hmax = int(plan.path_len[chosen].max())
        valid = ctx.valid[chosen, :hmax]
        jc = ctx.jc[chosen, :hmax]
        src_g = plan.src[g]
        cells_dec = jc * m
        cells_dec += src_g[:, None]
        trust = np.empty((n_sub, hmax), dtype=np.int64)
        unknown = np.empty((n_sub, hmax), dtype=bool)
        fwd = np.empty((n_sub, hmax), dtype=bool)
        decided = np.empty((n_sub, hmax), dtype=bool)
        success = np.empty(n_sub, dtype=bool)
        n_dec = kern.decide(
            ks, jc, valid, cells_dec, trust, unknown, fwd, decided, success
        )

        # -- conflict walk among the subset's own writes, per tournament -----
        upd_ok = decided & (
            success[:, None] | (ctx.hrange[:hmax] < (n_dec - 1)[:, None])
        )
        jc32 = jc.astype(np.int32)
        obs = np.empty((n_sub, hmax + 1), dtype=np.int32)
        obs[:, 0] = src_g
        np.copyto(obs[:, 1:], jc32)
        np.copyto(obs[:, 1:], np.int32(m), where=~upd_ok)
        subj = np.where(decided, jc32, np.int32(m * m))
        pair = obs[:, :, None] * np.int32(m) + subj[:, None, :]
        if ctx.diag_only:
            pair.reshape(n_sub, -1)[:, hmax :: hmax + 1] = m * m
        else:
            pair[obs[:, :, None] == subj[:, None, :]] = m * m
        pair2 = pair.reshape(n_sub, -1)
        w_ok = pair2 < m * m
        w_counts = w_ok.sum(axis=1)
        w_vals = pair2[w_ok]
        pair_off = ctx.pair_off[rel_ids]
        pos = ctx.walk_pos[rel_ids]
        # offsets applied to the compressed per-pair vectors, as in the
        # slate pass — same scoped codes, no full-grid temporaries
        w_scoped = ctx.scope(w_vals, np.repeat(pair_off, w_counts))
        read_off = np.repeat(pair_off, n_dec)
        r1 = ctx.scope(cells_dec[decided], read_off)
        r2 = ctx.scope((src_g[:, None] * m + jc)[decided], read_off)
        first_writer = ctx.writer_buf
        kern.first_writer(
            first_writer, ctx.walk_fill, w_scoped, np.repeat(pos, w_counts)
        )
        pos_read = np.repeat(pos, n_dec)
        conflict_read = first_writer[r1] < pos_read
        conflict_read |= first_writer[r2] < pos_read
        keep2 = np.ones(n_sub, dtype=bool)
        keep2[np.repeat(np.arange(n_sub), n_dec)[conflict_read]] = False

        # -- commit and re-buffer the accepted games -------------------------
        if keep2.any():
            k_pairs = keep2.repeat(w_counts)
            pairs = w_vals[k_pairs]
            w_fwd = np.broadcast_to(
                fwd[:, None, :], pair.shape
            ).reshape(n_sub, -1)[w_ok]
            kern.commit(ks, pairs, pairs[w_fwd[k_pairs]])
            ga = g[keep2]
            # full-row reset first: the re-chosen path's hmax may be
            # narrower than the first pass wrote
            ctx.decided_b[ga] = False
            ctx.fwd_b[ga] = False
            ctx.unknown_b[ga] = False
            ctx.trust_b[ga] = 0
            ctx.decided_b[ga, :hmax] = decided[keep2]
            ctx.fwd_b[ga, :hmax] = fwd[keep2]
            ctx.unknown_b[ga, :hmax] = unknown[keep2]
            ctx.trust_b[ga, :hmax] = trust[keep2]
            ctx.chosen_b[ga] = chosen[keep2]
            ctx.success_b[ga] = success[keep2]
            ctx.keep_b[ga] = True
            self._second_chance_games += int(keep2.sum())

        # -- scalar tail: games that conflicted twice ------------------------
        if not keep2.all():
            self._replay_ids(ctx, g[~keep2], req, delivered, csn_free)

"""Generation-fused "mega-batch" simulation engine.

The fifth engine: a :class:`~repro.sim.turbo.TurboEngine` subclass that
plans and executes **all tournaments of a generation as one stacked pass**
instead of re-entering the engine per tournament.  Turbo vectorizes one
tournament's round (a table-5 round is 50 games, so per-op numpy dispatch
still dominates); fused widens every per-round pass to a *slate* — round
``r`` of every stacked tournament at once (``T * n`` games) — amortizing
the fixed dispatch cost across the whole stack while sharing one plan
(:func:`repro.paths.vector.plan_generation_arrays`), one set of route
tables / ``_RoutedSlotCache`` slots, and the generation's reputation state.

Why this is sound: within a generation the reputation matrices persist
*across* tournaments (``reset_generation`` fires once per generation), and
tournaments of one generation are causally coupled only through those
matrices.  The stacked layout is round-major, so the slate executes round
``r`` of every tournament against the same round-start state — a round-level
lockstep reordering of the sequential tournament-by-tournament schedule.

What the fusion relaxes, on top of turbo's tolerated list:

* **Cross-tournament round lockstep.**  Sequentially, tournament ``t + 1``
  starts against the matrices tournament ``t`` finished; fused, round ``r``
  of every tournament reads the state left by round ``r - 1`` of every
  tournament.  Evidence totals are identical — only the interleaving of
  when each tournament's watchdog writes land changes.
* **Cross-tournament slate staleness.**  The conflict pass scopes pair
  codes *per tournament* (tournament-offset codes), exactly reproducing
  turbo's within-round walk inside each tournament; a pair written by
  another tournament in the same slate is tolerated staleness (same class
  as turbo's activity-average staleness) rather than a replay trigger —
  unscoped detection would replay nearly every game of a wide slate back
  through the scalar kernel.
* **Generation-scoped route-table sharing.**  While the stacked plan is
  drawn, a mobile oracle's route cache serves entries across the
  generation's topology epochs under zero-budget lazy revalidation (every
  served route is edge-checked against the current graph; only pairs whose
  cached routes all broke pay a full search), then reverts to its exact
  policy.  A relaxation of route *preference*, not existence — the same
  class as the approx cache policy the statistical tier gates on mobile
  scenarios.

Both are distribution-preserving perturbations of micro-outcome order, not
of the paper's reported aggregates; ``tests/test_engine_statistical.py``
holds fused to the same KS / Mann-Whitney / Fig.-4-band gates as turbo, and
``tests/test_sim_fused.py`` pins the exact invariants (conservation,
``pf <= ps``, aggregate consistency) and the contract edges (exchange
fallback, per-tournament hooks).

The second-hand exchange interleaves gossip with each tournament's round
stream, which fusion cannot reorder away — ``run_generation`` falls back to
the per-tournament turbo path when the exchange is enabled (bit-identical
to driving turbo from the sequential generation loop).  ``run_tournament``
is inherited unchanged, so outside the fused entry point the engine *is*
turbo.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.strategy import STRATEGY_LENGTH, UNKNOWN_BIT
from repro.game.stats import TournamentStats
from repro.network.provider import ApproxPolicy
from repro.paths.oracle import PathOracle
from repro.paths.vector import GamePlanArrays, plan_generation_arrays
from repro.reputation.exchange import ExchangeConfig
from repro.sim.turbo import TurboEngine, _PlanContext
from repro.telemetry.runtime import get_telemetry

__all__ = ["FusedEngine"]


class _FusedContext(_PlanContext):
    """A :class:`_PlanContext` over a stacked generation plan.

    ``games_per_round`` *is* the slate width (``T * n``), so every
    inherited precomputation (relative path rows, source order, fold
    buffers) works verbatim; the additions scope the conflict pass per
    tournament: ``pair_off[g]`` shifts game ``g``'s pair codes into its
    tournament's private ``m * m`` block and ``pos_in_t[g]`` is its seat
    position within that tournament (the "earlier game" order of turbo's
    conflict walk, now per tournament).
    """

    __slots__ = ("pair_off", "pos_in_t", "n_seats")

    def __init__(
        self,
        plan: GamePlanArrays,
        slate: int,
        m: int,
        n_pop: int,
        n_tournaments: int,
        n_seats: int,
    ):
        super().__init__(plan, slate, m, n_pop)
        self.n_seats = n_seats
        self.pair_off = np.repeat(
            np.arange(n_tournaments, dtype=np.int64) * (m * m), n_seats
        )
        self.pos_in_t = np.tile(
            np.arange(n_seats, dtype=np.int64), n_tournaments
        )
        # one private pair-code block per tournament (+1 spill slot, as in
        # the base context)
        self.writer_buf = np.empty(n_tournaments * m * m + 1, dtype=np.int64)


class FusedEngine(TurboEngine):
    """Turbo's speculative slate kernel, widened to a whole generation."""

    name = "fused"
    #: :func:`repro.tournament.evaluation.evaluate_generation` dispatches
    #: on this flag to hand the engine all of an environment's seatings at
    #: once instead of one tournament at a time.
    supports_generation_fusion = True

    def run_generation(
        self,
        seatings: Sequence[Sequence[int]],
        rounds: int,
        oracle: PathOracle,
        stats: TournamentStats,
        exchange: ExchangeConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        """Run every seating's tournament as one fused stacked pass.

        All seatings must be the same size (the scheduler guarantees this
        within one environment).  ``stats`` receives the merged counters of
        the whole stack — identical bookkeeping to merging per-tournament
        stats, since the accumulators are pure sums.
        """
        do_exchange = exchange is not None and exchange.enabled
        if do_exchange and rng is None:
            raise ValueError("reputation exchange requires an rng")
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        seatings = [list(s) for s in seatings]
        if not seatings:
            raise ValueError("need at least one seating")
        n_seats = len(seatings[0])
        if any(len(s) != n_seats for s in seatings):
            raise ValueError(
                "all seatings of one fused generation must be the same size"
            )
        hook = getattr(oracle, "on_tournament_end", None)
        tel = get_telemetry()
        if not tel.enabled:
            tel = None
        if do_exchange:
            # gossip interleaves with each tournament's round stream; that
            # ordering cannot be fused away, so fall back to the inherited
            # per-tournament turbo path (bit-identical to driving turbo
            # from the sequential generation loop)
            if tel is not None:
                tel.count("engine.fused.fallback_tournaments", len(seatings))
            for seating in seatings:
                self.run_tournament(seating, rounds, oracle, stats, exchange, rng)
                if hook is not None:
                    hook()
            return

        n_tournaments = len(seatings)
        slate = n_tournaments * n_seats
        share = self._share_route_tables(oracle)
        try:
            if tel is None:
                plan = plan_generation_arrays(
                    oracle, seatings, rounds, on_tournament_end=hook
                )
            else:
                with tel.registry.timer("engine.plan_s").time():
                    plan = plan_generation_arrays(
                        oracle, seatings, rounds, on_tournament_end=hook
                    )
        finally:
            self._restore_route_policy(oracle, share)
        ctx = _FusedContext(
            plan, slate, self.m, self.n_population, n_tournaments, n_seats
        )
        req = np.zeros(9, dtype=np.int64)
        delivered = np.zeros(4, dtype=np.int64)
        csn_free = np.zeros(4, dtype=np.int64)
        self._replayed_games = 0
        self._second_chance_games = 0

        for round_no in range(rounds):
            round_span = tel.span("round") if tel is not None else None
            if round_span is not None:
                round_span.__enter__()
            self._process_slate(ctx, round_no, req, delivered, csn_free)
            if round_span is not None:
                round_span.__exit__(None, None, None)

        if tel is None:
            self._fold_tournament(ctx, req, delivered, csn_free)
        else:
            with tel.registry.timer("engine.fold_s").time():
                self._fold_tournament(ctx, req, delivered, csn_free)
            tel.count("engine.tournaments", n_tournaments)
            tel.count("engine.rounds", rounds * n_tournaments)
            tel.count("engine.games", rounds * slate)
            tel.count("engine.turbo.replayed_games", self._replayed_games)
            tel.count("engine.fused.generations")
            tel.count("engine.fused.stacked_tournaments", n_tournaments)
            tel.count("engine.fused.games", rounds * slate)
            tel.count(
                "engine.fused.second_chance_games", self._second_chance_games
            )

        self._merge_stats(stats, req, delivered, csn_free)

    @staticmethod
    def _share_route_tables(oracle: PathOracle):
        """Enable generation-scoped route sharing on a dynamic provider.

        While the stacked plan is drawn, the mobile oracle's route cache
        serves entries *across* the generation's topology epochs under
        zero-budget lazy revalidation: every served route is edge-checked
        against the current graph (so it always exists right now), and a
        full route search runs only for pairs whose cached routes all
        broke.  That trades "exactly the K shortest of this epoch" for
        "current-consistent routes computed earlier this generation" — a
        relaxation of route *preference*, not existence, in the same class
        as the approx cache policy the statistical tier already gates on
        mobile scenarios.  Returns the policy to restore, or ``None`` when
        the oracle has no swappable dynamic provider (random and static
        topology oracles).
        """
        provider = getattr(oracle, "provider", None)
        set_policy = getattr(provider, "set_policy", None)
        if set_policy is None:
            return None
        previous = provider.policy
        if previous.budget > 0:
            # an approx provider already shares more aggressively than the
            # generation scope would; leave it alone
            return None
        set_policy(ApproxPolicy(0), revalidate=True)
        return previous

    @staticmethod
    def _restore_route_policy(oracle: PathOracle, previous) -> None:
        """Undo :meth:`_share_route_tables` (no-op for ``None``)."""
        if previous is not None:
            oracle.provider.set_policy(previous)

    def _process_slate(
        self,
        ctx: _FusedContext,
        round_no: int,
        req: np.ndarray,
        delivered: np.ndarray,
        csn_free: np.ndarray,
    ) -> None:
        """One slate: round ``round_no`` of every stacked tournament.

        The ratings/decisions passes are turbo's ``_process_round`` over the
        wider slate verbatim; the conflict pass runs in tournament-scoped
        pair codes (each tournament gets a private ``m * m`` block of the
        writer table and its own seat-position order), and commits use the
        base codes since the reputation matrices are shared by the stack.
        """
        m = self.m
        plan = ctx.plan
        ps_flat = self.ps.reshape(-1)
        pf_flat = self.pf.reshape(-1)
        g0 = round_no * ctx.games_per_round
        g1 = g0 + ctx.games_per_round
        p0 = int(plan.game_path_start[g0])
        p1 = int(plan.game_path_start[g1])
        n_games = g1 - g0

        # -- speculative path ratings from slate-start state -----------------
        hmax_r = int(plan.path_len[p0:p1].max()) if p1 > p0 else 1
        cells = ctx.cells_rate[p0:p1, :hmax_r]
        c = ps_flat.take(cells)
        zero = c == 0
        np.maximum(c, 1, out=c)
        d = pf_flat.take(cells) / c
        d[zero] = 0.5
        d[ctx.pad_path[p0:p1, :hmax_r]] = 1.0
        ratings = d.prod(axis=1)

        # -- best path per game (first index wins ties) ----------------------
        buf = ctx.ratings_buf
        buf.fill(-1.0)
        buf[ctx.pg_rel[p0:p1], plan.path_col[p0:p1]] = ratings
        chosen = ctx.chosen_b[g0:g1]
        np.add(plan.game_path_start[g0:g1], buf.argmax(axis=1), out=chosen)

        # -- speculative sequential decisions, vectorized over the slate -----
        hmax = int(plan.path_len[chosen].max())
        valid = ctx.valid[chosen, :hmax]
        jc = ctx.jc[chosen, :hmax]
        src_round = ctx.obs_buf[:, 0]
        cells_dec = jc * m
        cells_dec += src_round[:, None]
        c2 = ps_flat.take(cells_dec)
        f2 = pf_flat.take(cells_dec)
        unknown = ctx.unknown_b[g0:g1, :hmax]
        np.equal(c2, 0, out=unknown)
        np.maximum(c2, 1, out=c2)
        rate = f2 / c2
        # trust level = number of bounds strictly below the rate; three
        # comparisons replace searchsorted's binary-search dispatch and agree
        # with it exactly, boundary equality included (side="left" also
        # counts only strictly-smaller bounds)
        trust = ctx.trust_b[g0:g1, :hmax]
        trust[:] = rate > self._b0
        trust += rate > self._b1
        trust += rate > self._b2
        kn = self.known.take(jc)
        np.maximum(kn, 1, out=kn)
        av = self.pf_sum.take(jc) / kn
        delta = self._band * av
        bit = trust * 3
        bit += 1
        bit += f2 > av + delta
        bit -= f2 < av - delta
        np.copyto(bit, UNKNOWN_BIT, where=unknown)
        bit += jc * STRATEGY_LENGTH
        fwd = ctx.fwd_b[g0:g1, :hmax]
        np.equal(self._strat_flat.take(bit), 1, out=fwd)
        fwd &= valid
        prefix = np.logical_and.accumulate(fwd | ~valid, axis=1)
        decided = ctx.decided_b[g0:g1, :hmax]
        np.copyto(decided, valid)
        decided[:, 1:] &= prefix[:, :-1]
        success = ctx.success_b[g0:g1]
        success[:] = prefix[:, -1]
        n_dec = decided.sum(axis=1)

        # -- conflict pass, tournament-scoped --------------------------------
        # same sentinel construction as turbo (invalid pairs land at m*m and
        # are masked out *before* the tournament offsets are applied, so an
        # offset sentinel can never alias a later tournament's valid code)
        upd_ok = decided & (
            success[:, None] | (ctx.hrange[:hmax] < (n_dec - 1)[:, None])
        )
        # the (games, writers, subjects) pair grid is the conflict pass's
        # dominant temporary; int32 halves its memory traffic (scoped codes
        # max out at T * m * m, far inside int32 range)
        jc32 = jc.astype(np.int32)
        obs = np.empty((n_games, hmax + 1), dtype=np.int32)
        obs[:, 0] = ctx.obs_buf[:, 0]
        obs[:, 1:] = np.where(upd_ok, jc32, np.int32(m))
        subj = np.where(decided, jc32, np.int32(m * m))
        pair = obs[:, :, None] * np.int32(m) + subj[:, None, :]
        pair[obs[:, :, None] == subj[:, None, :]] = m * m
        pair2 = pair.reshape(n_games, -1)
        w_ok = pair2 < m * m
        w_counts = w_ok.sum(axis=1)
        # base codes commit to the shared matrices; scoped codes drive the
        # per-tournament conflict walk.  Offsets are added to the compressed
        # per-pair vectors (a few thousand elements) rather than the full
        # (games, pairs) grid — same codes, one large temporary fewer.
        w_vals = pair2[w_ok]
        w_off = np.repeat(ctx.pair_off, w_counts)
        w_scoped = w_vals + w_off
        read_off = np.repeat(ctx.pair_off, n_dec)
        r1 = cells_dec[decided] + read_off
        r2 = (ctx.src_round_m[:, None] + jc)[decided] + read_off

        # -- per-tournament walk: a game conflicts iff one of its read pairs
        # was written by an earlier game of the *same tournament's* round.
        # Slate order is ascending seat position within each tournament, so
        # a reversed scatter-assign leaves each code's *first* writer — the
        # positional minimum — without ufunc.at's per-element dispatch.
        first_writer = ctx.writer_buf
        first_writer.fill(ctx.n_seats)
        w_pos = np.repeat(ctx.pos_in_t, w_counts)
        first_writer[w_scoped[::-1]] = w_pos[::-1]
        g_read = np.repeat(ctx.grange, n_dec)
        pos_read = np.repeat(ctx.pos_in_t, n_dec)
        conflict = first_writer[r1] < pos_read
        conflict |= first_writer[r2] < pos_read
        keep = ctx.keep_b[g0:g1]
        keep[g_read[conflict]] = False

        # -- commit the non-conflicting games' watchdog writes in one batch --
        k_pairs = keep.repeat(w_counts)
        pairs = w_vals[k_pairs]
        ps_flat += np.bincount(pairs, minlength=m * m)
        w_fwd = np.broadcast_to(
            fwd[:, None, :], pair.shape
        ).reshape(n_games, -1)[w_ok]
        pf_pairs = pairs[w_fwd[k_pairs]]
        pf_flat += np.bincount(pf_pairs, minlength=m * m)
        self.known[:] = np.count_nonzero(self.ps, axis=1)
        self.pf_sum[:] = self.pf.sum(axis=1)

        # -- second-chance vectorized pass over the conflicted games ---------
        if not keep.all():
            rel_ids = np.flatnonzero(~keep)
            if len(rel_ids) < 10:
                # below ~10 games the sub-pass's fixed dispatch cost exceeds
                # the scalar kernel; replay directly
                self._replayed_games += len(rel_ids)
                for g in rel_ids.tolist():
                    self._replay_game(
                        ctx.src_list[g0 + g],
                        plan.paths_of(g0 + g),
                        req,
                        delivered,
                        csn_free,
                    )
            else:
                self._second_chance(ctx, g0, rel_ids, req, delivered, csn_free)

    def _second_chance(
        self,
        ctx: _FusedContext,
        g0: int,
        rel_ids: np.ndarray,
        req: np.ndarray,
        delivered: np.ndarray,
        csn_free: np.ndarray,
    ) -> None:
        """Re-speculate the slate's conflicted games against live state.

        Turbo replays every conflicted game through the scalar kernel; on a
        wide slate that serial tail dominates the round.  This pass applies
        the *same* speculate-commit-walk discipline to just the conflicted
        subset: their ratings and decisions are recomputed against the
        post-commit matrices, the per-tournament conflict walk reruns among
        the subset's own writes, and only games that conflict *again*
        (an earlier conflicted game of the same tournament wrote one of
        their read pairs — rare, since conflicts are already sparse) fall
        back to the scalar kernel.  No new relaxation class: it is the
        slate speculation applied iteratively, and accepted games re-enter
        the buffered fold exactly like first-pass games.
        """
        m = self.m
        plan = ctx.plan
        ps_flat = self.ps.reshape(-1)
        pf_flat = self.pf.reshape(-1)
        g = g0 + rel_ids  # absolute game ids, ascending = replay order
        n_sub = len(g)

        # candidate-path rows of the subset (each game's rows are contiguous
        # at game_path_start[g], column-ordered)
        starts = plan.game_path_start[g]
        counts = plan.game_path_start[g + 1] - starts
        total = int(counts.sum())
        offs = np.cumsum(counts) - counts
        prow = np.repeat(starts, counts) + (
            np.arange(total) - np.repeat(offs, counts)
        )

        # -- ratings + best path, against the live matrices ------------------
        hmax_r = int(plan.path_len[prow].max()) if total else 1
        cells = ctx.cells_rate[prow, :hmax_r]
        c = ps_flat.take(cells)
        zero = c == 0
        np.maximum(c, 1, out=c)
        d = pf_flat.take(cells) / c
        d[zero] = 0.5
        d[ctx.pad_path[prow, :hmax_r]] = 1.0
        ratings = d.prod(axis=1)
        buf = ctx.ratings_buf[:n_sub]
        buf.fill(-1.0)
        buf[np.repeat(np.arange(n_sub), counts), plan.path_col[prow]] = ratings
        chosen = starts + buf.argmax(axis=1)

        # -- decisions, mirroring the slate pass on the subset ---------------
        hmax = int(plan.path_len[chosen].max())
        valid = ctx.valid[chosen, :hmax]
        jc = ctx.jc[chosen, :hmax]
        src_g = plan.src[g]
        cells_dec = jc * m
        cells_dec += src_g[:, None]
        c2 = ps_flat.take(cells_dec)
        f2 = pf_flat.take(cells_dec)
        unknown = c2 == 0
        np.maximum(c2, 1, out=c2)
        rate = f2 / c2
        trust = (rate > self._b0).astype(np.int64)
        trust += rate > self._b1
        trust += rate > self._b2
        kn = self.known.take(jc)
        np.maximum(kn, 1, out=kn)
        av = self.pf_sum.take(jc) / kn
        delta = self._band * av
        bit = trust * 3
        bit += 1
        bit += f2 > av + delta
        bit -= f2 < av - delta
        np.copyto(bit, UNKNOWN_BIT, where=unknown)
        bit += jc * STRATEGY_LENGTH
        fwd = self._strat_flat.take(bit) == 1
        fwd &= valid
        prefix = np.logical_and.accumulate(fwd | ~valid, axis=1)
        decided = valid.copy()
        decided[:, 1:] &= prefix[:, :-1]
        success = prefix[:, -1]
        n_dec = decided.sum(axis=1)

        # -- conflict walk among the subset's own writes, per tournament -----
        upd_ok = decided & (
            success[:, None] | (ctx.hrange[:hmax] < (n_dec - 1)[:, None])
        )
        obs = np.empty((n_sub, hmax + 1), dtype=np.int64)
        obs[:, 0] = src_g
        np.copyto(obs[:, 1:], jc)
        np.copyto(obs[:, 1:], m, where=~upd_ok)
        subj = np.where(decided, jc, m * m)
        pair = obs[:, :, None] * m + subj[:, None, :]
        pair[obs[:, :, None] == subj[:, None, :]] = m * m
        pair2 = pair.reshape(n_sub, -1)
        w_ok = pair2 < m * m
        w_counts = w_ok.sum(axis=1)
        w_vals = pair2[w_ok]
        pair_off = ctx.pair_off[rel_ids]
        pos = ctx.pos_in_t[rel_ids]
        # offsets applied to the compressed per-pair vectors, as in the
        # slate pass — same scoped codes, no full-grid temporaries
        w_scoped = w_vals + np.repeat(pair_off, w_counts)
        read_off = np.repeat(pair_off, n_dec)
        r1 = cells_dec[decided] + read_off
        r2 = (src_g[:, None] * m + jc)[decided] + read_off
        first_writer = ctx.writer_buf
        first_writer.fill(ctx.n_seats)
        w_pos = np.repeat(pos, w_counts)
        first_writer[w_scoped[::-1]] = w_pos[::-1]
        pos_read = np.repeat(pos, n_dec)
        conflict_read = first_writer[r1] < pos_read
        conflict_read |= first_writer[r2] < pos_read
        keep2 = np.ones(n_sub, dtype=bool)
        keep2[np.repeat(np.arange(n_sub), n_dec)[conflict_read]] = False

        # -- commit and re-buffer the accepted games -------------------------
        if keep2.any():
            k_pairs = keep2.repeat(w_counts)
            pairs = w_vals[k_pairs]
            ps_flat += np.bincount(pairs, minlength=m * m)
            w_fwd = np.broadcast_to(
                fwd[:, None, :], pair.shape
            ).reshape(n_sub, -1)[w_ok]
            pf_flat += np.bincount(pairs[w_fwd[k_pairs]], minlength=m * m)
            self.known[:] = np.count_nonzero(self.ps, axis=1)
            self.pf_sum[:] = self.pf.sum(axis=1)
            ga = g[keep2]
            # full-row reset first: the re-chosen path's hmax may be
            # narrower than the first pass wrote
            ctx.decided_b[ga] = False
            ctx.fwd_b[ga] = False
            ctx.unknown_b[ga] = False
            ctx.trust_b[ga] = 0
            ctx.decided_b[ga, :hmax] = decided[keep2]
            ctx.fwd_b[ga, :hmax] = fwd[keep2]
            ctx.unknown_b[ga, :hmax] = unknown[keep2]
            ctx.trust_b[ga, :hmax] = trust[keep2]
            ctx.chosen_b[ga] = chosen[keep2]
            ctx.success_b[ga] = success[keep2]
            ctx.keep_b[ga] = True
            self._second_chance_games += int(keep2.sum())

        # -- scalar tail: games that conflicted twice ------------------------
        if not keep2.all():
            twice = g[~keep2]
            self._replayed_games += len(twice)
            for gg in twice.tolist():
                self._replay_game(
                    ctx.src_list[gg],
                    plan.paths_of(gg),
                    req,
                    delivered,
                    csn_free,
                )

"""Statistical-equivalence testing between simulation engines.

The turbo engine's contract is *distributional*: under the same experiment
configuration it must reproduce the outcome distributions of the
bit-identical engines — cooperation levels, fitness, the shape of Fig.-4
style curves — without replaying the same trajectories.  This module is the
harness that makes that claim testable:

* :func:`ks_2samp` — the two-sample Kolmogorov-Smirnov test (asymptotic
  two-sided p-value with Stephens' small-sample correction), sensitive to
  any difference in distribution shape or location;
* :func:`mann_whitney_u` — the Mann-Whitney U rank-sum test (normal
  approximation with tie correction and continuity correction), sensitive
  to location shifts even KS underpowers on;
* :func:`confidence_band_overlap` — the fraction of generations whose
  replication-ensemble confidence bands overlap between two engines, for
  Fig.-4-style cooperation curves;
* :func:`compare_samples` / :func:`compare_engines` — the bundled verdict
  used by ``tests/test_engine_statistical.py``.

Implementations are numpy-only (scipy is not a runtime dependency); the
test suite cross-validates the statistics against ``scipy.stats`` when
scipy happens to be importable.

The paper's own claims are distributional — Fig. 4 plots replication
ensembles, Tables 5-9 report ensemble means — and related dynamic-routing
GA work (arXiv:1107.1943) likewise validates against outcome distributions,
so statistical equivalence is the faithful notion of "same results" here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

__all__ = [
    "StatTestResult",
    "EquivalenceReport",
    "ks_2samp",
    "mann_whitney_u",
    "confidence_band_overlap",
    "compare_samples",
    "collect_engine_samples",
    "compare_engines",
]


@dataclass(frozen=True)
class StatTestResult:
    """One two-sample test: statistic and two-sided p-value."""

    name: str
    statistic: float
    pvalue: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "statistic": self.statistic,
            "pvalue": self.pvalue,
        }


def _as_sample(values: Sequence[float], name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size < 2:
        raise ValueError(f"{name} needs at least 2 observations, got {arr.size}")
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} contains non-finite values")
    return arr


def _kolmogorov_sf(lam: float) -> float:
    """Survival function of the Kolmogorov distribution,
    ``Q(lam) = 2 * sum_{k>=1} (-1)^(k-1) exp(-2 k^2 lam^2)``."""
    if lam <= 0.0:
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * lam * lam)
        total += term
        if abs(term) < 1e-12:
            break
    return min(1.0, max(0.0, total))


def ks_2samp(a: Sequence[float], b: Sequence[float]) -> StatTestResult:
    """Two-sample two-sided Kolmogorov-Smirnov test.

    The p-value uses the asymptotic Kolmogorov distribution with Stephens'
    effective-sample-size correction ``(sqrt(ne) + 0.12 + 0.11/sqrt(ne)) D``
    — accurate to a few percent for the ensemble sizes the equivalence suite
    uses (n >= 20), and conservative in the direction that matters (it
    slightly *over*-rejects, so a passing gate is trustworthy).
    """
    a = _as_sample(a, "sample a")
    b = _as_sample(b, "sample b")
    all_values = np.concatenate([a, b])
    # ECDF of each sample evaluated on the pooled support
    cdf_a = np.searchsorted(np.sort(a), all_values, side="right") / a.size
    cdf_b = np.searchsorted(np.sort(b), all_values, side="right") / b.size
    statistic = float(np.abs(cdf_a - cdf_b).max())
    ne = a.size * b.size / (a.size + b.size)
    lam = (math.sqrt(ne) + 0.12 + 0.11 / math.sqrt(ne)) * statistic
    return StatTestResult("ks_2samp", statistic, _kolmogorov_sf(lam))


def _normal_sf(z: float) -> float:
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def mann_whitney_u(a: Sequence[float], b: Sequence[float]) -> StatTestResult:
    """Two-sided Mann-Whitney U test (normal approximation, tie-corrected,
    with continuity correction — the same recipe scipy's ``asymptotic``
    method uses)."""
    a = _as_sample(a, "sample a")
    b = _as_sample(b, "sample b")
    n1, n2 = a.size, b.size
    pooled = np.concatenate([a, b])
    order = pooled.argsort(kind="mergesort")
    ranks = np.empty(pooled.size, dtype=np.float64)
    ranks[order] = np.arange(1, pooled.size + 1, dtype=np.float64)
    # average ranks over ties
    sorted_vals = pooled[order]
    _, starts, counts = np.unique(
        sorted_vals, return_index=True, return_counts=True
    )
    for start, count in zip(starts.tolist(), counts.tolist()):
        if count > 1:
            tie_idx = order[start : start + count]
            ranks[tie_idx] = ranks[tie_idx].mean()
    u1 = float(ranks[:n1].sum()) - n1 * (n1 + 1) / 2.0
    u = max(u1, n1 * n2 - u1)
    mean_u = n1 * n2 / 2.0
    n = n1 + n2
    tie_term = float((counts.astype(np.float64) ** 3 - counts).sum())
    var_u = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if var_u <= 0:
        # all observations identical: the samples are indistinguishable
        return StatTestResult("mann_whitney_u", u, 1.0)
    z = (u - mean_u - 0.5) / math.sqrt(var_u)
    return StatTestResult("mann_whitney_u", u, min(1.0, 2.0 * _normal_sf(z)))


def confidence_band_overlap(
    curves_a: np.ndarray, curves_b: np.ndarray, z: float = 1.96
) -> float:
    """Fraction of generations whose confidence bands overlap.

    ``curves_a`` / ``curves_b`` are ``(replications, generations)`` matrices
    of Fig.-4-style series (cooperation per generation, one row per seeded
    replication).  Each engine's ensemble yields a ``mean ± z * sem`` band
    per generation (:func:`repro.analysis.cooperation.series_confidence_band`);
    the score is the fraction of generations where the two bands intersect.
    Identical processes score ~1.0; a systematic shift pushes it toward 0.
    """
    from repro.analysis.cooperation import series_confidence_band

    curves_a = np.asarray(curves_a, dtype=np.float64)
    curves_b = np.asarray(curves_b, dtype=np.float64)
    if curves_a.ndim != 2 or curves_b.ndim != 2:
        raise ValueError("expected (replications, generations) matrices")
    if curves_a.shape[1] != curves_b.shape[1]:
        raise ValueError(
            f"generation counts differ: {curves_a.shape[1]} vs {curves_b.shape[1]}"
        )
    _, lo_a, hi_a = series_confidence_band(curves_a, z)
    _, lo_b, hi_b = series_confidence_band(curves_b, z)
    overlap = (lo_a <= hi_b) & (lo_b <= hi_a)
    return float(overlap.mean())


@dataclass(frozen=True)
class EquivalenceReport:
    """Verdict of a statistical-equivalence comparison.

    ``equivalent`` is True when every per-metric test clears ``alpha`` (no
    test *rejects* the same-distribution hypothesis) and, when curves were
    supplied, the confidence bands overlap on at least ``min_overlap`` of
    the generations.
    """

    alpha: float
    tests: Mapping[str, tuple[StatTestResult, ...]]
    band_overlap: float | None = None
    min_overlap: float = 0.8
    metadata: Mapping[str, object] = field(default_factory=dict)

    @property
    def equivalent(self) -> bool:
        for results in self.tests.values():
            for result in results:
                if result.pvalue <= self.alpha:
                    return False
        if self.band_overlap is not None and self.band_overlap < self.min_overlap:
            return False
        return True

    def failures(self) -> list[str]:
        """Human-readable list of rejected tests (empty when equivalent)."""
        out = []
        for metric, results in self.tests.items():
            for result in results:
                if result.pvalue <= self.alpha:
                    out.append(
                        f"{metric}/{result.name}: p={result.pvalue:.4g}"
                        f" <= alpha={self.alpha}"
                    )
        if self.band_overlap is not None and self.band_overlap < self.min_overlap:
            out.append(
                f"confidence-band overlap {self.band_overlap:.2f}"
                f" < {self.min_overlap:.2f}"
            )
        return out

    def to_dict(self) -> dict:
        return {
            "alpha": self.alpha,
            "equivalent": self.equivalent,
            "band_overlap": self.band_overlap,
            "min_overlap": self.min_overlap,
            "tests": {
                metric: [r.to_dict() for r in results]
                for metric, results in self.tests.items()
            },
            "failures": self.failures(),
            "metadata": dict(self.metadata),
        }


def compare_samples(
    samples_a: Mapping[str, Sequence[float]],
    samples_b: Mapping[str, Sequence[float]],
    alpha: float = 0.01,
    curves_a: np.ndarray | None = None,
    curves_b: np.ndarray | None = None,
    min_overlap: float = 0.8,
) -> EquivalenceReport:
    """Run the KS + Mann-Whitney battery on every metric shared by both
    sides."""
    if set(samples_a) != set(samples_b):
        raise ValueError(
            f"metric sets differ: {sorted(samples_a)} vs {sorted(samples_b)}"
        )
    if (curves_a is None) != (curves_b is None):
        raise ValueError("supply curves for both engines or neither")
    tests = {
        metric: (
            ks_2samp(samples_a[metric], samples_b[metric]),
            mann_whitney_u(samples_a[metric], samples_b[metric]),
        )
        for metric in sorted(samples_a)
    }
    band = (
        confidence_band_overlap(curves_a, curves_b)
        if curves_a is not None
        else None
    )
    return EquivalenceReport(
        alpha=alpha, tests=tests, band_overlap=band, min_overlap=min_overlap
    )


def collect_engine_samples(
    config,
    n_replications: int,
    metrics: Mapping[str, Callable] | None = None,
) -> tuple[dict[str, np.ndarray], np.ndarray]:
    """Run ``n_replications`` seeded replications of ``config`` and extract
    per-replication outcome samples.

    Returns ``(samples, curves)`` where ``samples`` maps metric name to a
    ``(n_replications,)`` array and ``curves`` is the
    ``(n_replications, generations)`` cooperation matrix for
    :func:`confidence_band_overlap`.  Default metrics: final cooperation
    level, mean final fitness, and the Table-6 acceptance fraction of
    NN-originated requests.

    Replication ``i`` derives its generator exactly as the experiment
    runner does (``SeedSequence(seed, spawn_key=(i,))``), so the reference
    sample for a bit-identical engine equals what ``run_experiment`` would
    produce.
    """
    # imported lazily: analysis must stay importable without the experiment
    # stack (repro.experiments imports repro.analysis for reporting)
    from repro.experiments.replication import run_replication

    if metrics is None:
        metrics = {
            "final_cooperation": lambda r: r.final_overall.cooperation_level,
            "mean_fitness": lambda r: r.history.records[-1].mean_fitness,
            "nn_request_acceptance": lambda r: (
                r.final_overall.requests_from_nn.fraction_accepted()
            ),
        }
    if n_replications < 2:
        raise ValueError(
            f"need at least 2 replications, got {n_replications}"
        )
    samples: dict[str, list[float]] = {name: [] for name in metrics}
    curves: list[list[float]] = []
    for index in range(n_replications):
        result = run_replication(config, index)
        for name, extract in metrics.items():
            samples[name].append(float(extract(result)))
        curves.append([rec.cooperation for rec in result.history.records])
    return (
        {name: np.asarray(vals) for name, vals in samples.items()},
        np.asarray(curves, dtype=np.float64),
    )


def compare_engines(
    config,
    engine_a: str,
    engine_b: str,
    n_replications: int = 20,
    alpha: float = 0.01,
    min_overlap: float = 0.8,
) -> EquivalenceReport:
    """End-to-end equivalence check between two engines on one config.

    Runs ``n_replications`` seeded replications per engine (same master
    seed, same per-replication spawn keys) and compares the outcome
    distributions.  This is the entry point
    ``tests/test_engine_statistical.py`` gates the turbo engine with.
    """
    samples_a, curves_a = collect_engine_samples(
        config.with_(engine=engine_a), n_replications
    )
    samples_b, curves_b = collect_engine_samples(
        config.with_(engine=engine_b), n_replications
    )
    report = compare_samples(
        samples_a,
        samples_b,
        alpha=alpha,
        curves_a=curves_a,
        curves_b=curves_b,
        min_overlap=min_overlap,
    )
    return EquivalenceReport(
        alpha=report.alpha,
        tests=report.tests,
        band_overlap=report.band_overlap,
        min_overlap=report.min_overlap,
        metadata={
            "engine_a": engine_a,
            "engine_b": engine_b,
            "n_replications": n_replications,
            "case": config.case.name,
        },
    )

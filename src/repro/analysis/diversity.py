"""Population-diversity metrics for evolved strategy populations.

Diversity collapse is the classic failure mode of small-population GAs; these
metrics let experiments distinguish "converged because selection found a
winner" from "converged because drift fixed an arbitrary genotype".  Used by
the parameter-study example and the analysis tests.
"""

from __future__ import annotations

from collections import Counter
from math import log
from typing import Sequence

import numpy as np

from repro.core.strategy import STRATEGY_LENGTH, Strategy

__all__ = [
    "mean_pairwise_hamming",
    "per_locus_entropy",
    "unique_fraction",
    "genotype_entropy",
]


def _as_bit_matrix(population: Sequence[int]) -> np.ndarray:
    rows = [Strategy.from_int(p).bits for p in population]
    return np.array(rows, dtype=np.int8)


def mean_pairwise_hamming(population: Sequence[int]) -> float:
    """Mean Hamming distance over all unordered pairs, in bits.

    Computed per locus in O(N * L): at a locus with ``k`` ones among ``n``
    strategies, the number of differing pairs is ``k * (n - k)``.
    """
    n = len(population)
    if n < 2:
        return 0.0
    bits = _as_bit_matrix(population)
    ones = bits.sum(axis=0).astype(float)
    differing_pairs = (ones * (n - ones)).sum()
    return float(differing_pairs / (n * (n - 1) / 2))


def per_locus_entropy(population: Sequence[int]) -> np.ndarray:
    """Shannon entropy (bits) of each of the 13 loci; 1.0 = maximally mixed."""
    if not population:
        return np.zeros(STRATEGY_LENGTH)
    bits = _as_bit_matrix(population)
    p1 = bits.mean(axis=0)
    out = np.zeros(STRATEGY_LENGTH)
    for i, p in enumerate(p1):
        if 0.0 < p < 1.0:
            out[i] = -(p * log(p, 2) + (1 - p) * log(1 - p, 2))
    return out


def unique_fraction(population: Sequence[int]) -> float:
    """Fraction of distinct genotypes in the population."""
    if not population:
        return 0.0
    return len(set(population)) / len(population)


def genotype_entropy(population: Sequence[int]) -> float:
    """Shannon entropy (bits) of the genotype distribution."""
    if not population:
        return 0.0
    counts = Counter(population)
    n = len(population)
    return -sum((c / n) * log(c / n, 2) for c in counts.values())

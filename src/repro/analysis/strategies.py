"""Strategy censuses over final populations (§6.3, Tables 7–9).

All functions take ``populations`` — a list of final populations, one per
replication, each a list of packed strategy ints — exactly what
:meth:`repro.experiments.results.ExperimentResult.final_populations` returns.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.core.strategy import N_TRUST_LEVELS, Strategy

__all__ = [
    "strategy_counts",
    "most_common_strategies",
    "substrategy_distribution",
    "unknown_bit_fraction",
]


def _iter_strategies(populations: Iterable[Sequence[int]]) -> Iterable[Strategy]:
    for population in populations:
        for packed in population:
            yield Strategy.from_int(packed)


def strategy_counts(populations: Iterable[Sequence[int]]) -> Counter:
    """Counter of full 13-bit strategies over all final populations."""
    return Counter(_iter_strategies(populations))


def most_common_strategies(
    populations: Iterable[Sequence[int]], k: int = 5
) -> list[tuple[Strategy, float]]:
    """The ``k`` most popular strategies and their population fraction (Table 7)."""
    counts = strategy_counts(populations)
    total = sum(counts.values())
    if total == 0:
        return []
    return [(strategy, n / total) for strategy, n in counts.most_common(k)]


def substrategy_distribution(
    populations: Iterable[Sequence[int]],
    trust: int,
    min_fraction: float = 0.0,
) -> list[tuple[str, float]]:
    """Distribution of 3-bit sub-strategies for one trust level (Tables 8–9).

    Returns ``(pattern, fraction)`` pairs sorted by descending fraction.  The
    paper prints only sub-strategies above 3% of final populations; pass
    ``min_fraction=0.03`` for that filter.
    """
    if not 0 <= trust < N_TRUST_LEVELS:
        raise ValueError(f"trust must be in 0..{N_TRUST_LEVELS - 1}, got {trust}")
    counts: Counter = Counter(
        s.sub_strategy(trust) for s in _iter_strategies(populations)
    )
    total = sum(counts.values())
    if total == 0:
        return []
    items = [
        (pattern, n / total)
        for pattern, n in counts.most_common()
        if n / total >= min_fraction
    ]
    return items


def unknown_bit_fraction(populations: Iterable[Sequence[int]]) -> float:
    """Fraction of final strategies whose unknown-node decision is *forward*.

    §6.3: "a decision against an unknown player (last bit) is to forward.
    As a result, new nodes can easily join the network."
    """
    total = 0
    forward = 0
    for s in _iter_strategies(populations):
        total += 1
        forward += 1 if s.decide_unknown() else 0
    return forward / total if total else 0.0

"""Forwarding-request response fractions (Table 6)."""

from __future__ import annotations

from repro.game.stats import RequestCounters

__all__ = ["request_fractions"]


def request_fractions(counters: RequestCounters) -> dict[str, float]:
    """The three Table 6 rows for one source class, as fractions.

    ``accepted`` + ``rejected_by_np`` + ``rejected_by_csn`` sums to 1 (up to
    rounding) whenever any request occurred.
    """
    return {
        "accepted": counters.fraction_accepted(),
        "rejected_by_np": counters.fraction_rejected_by_nn(),
        "rejected_by_csn": counters.fraction_rejected_by_csn(),
    }

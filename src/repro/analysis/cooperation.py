"""Cooperation-level series utilities (Fig. 4 post-processing)."""

from __future__ import annotations

import numpy as np

__all__ = ["moving_average", "final_mean_cooperation", "series_confidence_band"]


def moving_average(series: np.ndarray, window: int) -> np.ndarray:
    """Centered-ish moving average used to smooth plotted series.

    Uses a trailing window clipped at the series start, so the output has the
    same length as the input and no boundary NaNs.
    """
    series = np.asarray(series, dtype=float)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window == 1 or len(series) == 0:
        return series.copy()
    cumsum = np.cumsum(np.insert(series, 0, 0.0))
    out = np.empty_like(series)
    for i in range(len(series)):
        lo = max(0, i - window + 1)
        out[i] = (cumsum[i + 1] - cumsum[lo]) / (i + 1 - lo)
    return out


def final_mean_cooperation(matrix: np.ndarray, tail: int = 1) -> float:
    """Mean cooperation over the last ``tail`` generations and all replications.

    ``matrix`` is (replications, generations).  The paper's Table 5 values
    are "taken from the last generations (average value of all experiments)";
    ``tail > 1`` reproduces that reading.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("expected a (replications, generations) matrix")
    if not 1 <= tail <= matrix.shape[1]:
        raise ValueError(f"tail must be in 1..{matrix.shape[1]}, got {tail}")
    return float(matrix[:, -tail:].mean())


def series_confidence_band(
    matrix: np.ndarray, z: float = 1.96
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(mean, lower, upper) normal-approximation band per generation."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("expected a (replications, generations) matrix")
    mean = matrix.mean(axis=0)
    if matrix.shape[0] < 2:
        return mean, mean.copy(), mean.copy()
    sem = matrix.std(axis=0, ddof=1) / np.sqrt(matrix.shape[0])
    return mean, mean - z * sem, mean + z * sem

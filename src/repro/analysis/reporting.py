"""Paper-style rendering of every reproduced artefact.

Each ``render_*`` function takes :class:`ExperimentResult` objects and
returns a printable string shaped like the corresponding paper table or
figure, with the paper's published values alongside for direct comparison.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.requests import request_fractions
from repro.analysis.strategies import most_common_strategies, substrategy_distribution
from repro.experiments.results import ExperimentResult
from repro.utils.tables import ascii_lineplot, format_table

__all__ = [
    "render_fig4",
    "render_table5",
    "render_table6",
    "render_table7",
    "render_table8_9",
    "render_mobility",
    "render_exchange",
    "PAPER_FIG4_FINALS",
    "PAPER_TABLE5",
    "PAPER_TABLE6",
]

#: Final cooperation levels the paper quotes for Fig. 4.  Note: the prose
#: quotes "38% and 54% respectively" for cases 3/4, but averaging its own
#: Table 5 gives case3~53%, case4~38% — the prose values appear swapped
#: (DESIGN.md §2.5).  We list the Table-5-consistent reading.
PAPER_FIG4_FINALS: dict[str, float] = {
    "case1": 0.97,
    "case2": 0.19,
    "case3": 0.54,
    "case4": 0.38,
}

#: Table 5 published values: env -> (coop case3, coop case4, csn-free case3,
#: csn-free case4).
PAPER_TABLE5: dict[str, tuple[float, float, float, float]] = {
    "TE1": (0.99, 0.99, 1.00, 1.00),
    "TE2": (0.66, 0.41, 0.66, 0.41),
    "TE3": (0.28, 0.07, 0.29, 0.12),
    "TE4": (0.19, 0.05, 0.20, 0.08),
}

#: Table 6 published values: (source class, row) -> (case3, case4).
PAPER_TABLE6: dict[tuple[str, str], tuple[float, float]] = {
    ("nn", "accepted"): (0.77, 0.78),
    ("nn", "rejected_by_np"): (0.0023, 0.035),
    ("nn", "rejected_by_csn"): (0.22, 0.18),
    ("csn", "accepted"): (0.04, 0.03),
    ("csn", "rejected_by_np"): (0.53, 0.49),
    ("csn", "rejected_by_csn"): (0.43, 0.47),
}


def render_fig4(results: Mapping[str, ExperimentResult], width: int = 72) -> str:
    """Fig. 4: cooperation evolution for the configured cases."""
    series = {
        name: list(res.mean_cooperation_series()) for name, res in results.items()
    }
    plot = ascii_lineplot(
        series,
        width=width,
        title="Fig. 4 - The evolution of cooperation (mean over replications)",
        ylabel="coop",
        ymin=0.0,
        ymax=1.0,
    )
    rows = []
    for name, res in results.items():
        mean, std = res.final_cooperation()
        paper = PAPER_FIG4_FINALS.get(name)
        rows.append(
            [
                name,
                f"{mean * 100:.1f}%",
                f"{std * 100:.1f}%",
                f"{paper * 100:.0f}%" if paper is not None else "-",
            ]
        )
    table = format_table(
        rows,
        headers=["case", "final coop (measured)", "std", "paper"],
        title="Final cooperation levels",
    )
    return plot + "\n\n" + table


def render_mobility(results: Mapping[str, ExperimentResult], width: int = 72) -> str:
    """Extension: cooperation evolution across network mobility regimes.

    ``results`` maps a regime label (e.g. ``case1`` for the paper's random
    pairing, ``mobile_waypoint``, ``mobile_gauss``) to its experiment result;
    all regimes share the game, GA and environments, differing only in how
    candidate routes arise.
    """
    series = {
        name: list(res.mean_cooperation_series()) for name, res in results.items()
    }
    plot = ascii_lineplot(
        series,
        width=width,
        title="Extension - cooperation under node mobility (mean over replications)",
        ylabel="coop",
        ymin=0.0,
        ymax=1.0,
    )
    rows = []
    for name, res in results.items():
        mean, std = res.final_cooperation()
        rows.append([name, f"{mean * 100:.1f}%", f"{std * 100:.1f}%"])
    table = format_table(
        rows,
        headers=["mobility regime", "final coop", "std"],
        title="Final cooperation levels by network mobility regime",
    )
    return plot + "\n\n" + table


def render_exchange(results: Mapping[str, ExperimentResult], width: int = 72) -> str:
    """Extension: cooperation under second-hand reputation exchange regimes.

    ``results`` maps a regime label (``exchange_off`` for the paper's
    first-hand-only collection, ``exchange_core`` for CORE-style
    positive-only gossip, ``exchange_full`` for CONFIDANT-style full gossip)
    to its experiment result; all regimes share the environments, game and
    GA, differing only in what reputation information spreads between nodes.
    """
    series = {
        name: list(res.mean_cooperation_series()) for name, res in results.items()
    }
    plot = ascii_lineplot(
        series,
        width=width,
        title=(
            "Extension - cooperation under second-hand reputation exchange"
            " (mean over replications)"
        ),
        ylabel="coop",
        ymin=0.0,
        ymax=1.0,
    )
    rows = []
    for name, res in results.items():
        mean, std = res.final_cooperation()
        csn_free = res.per_env_csn_free()
        free = sum(csn_free.values()) / len(csn_free) if csn_free else 0.0
        rows.append(
            [name, f"{mean * 100:.1f}%", f"{std * 100:.1f}%", f"{free * 100:.1f}%"]
        )
    table = format_table(
        rows,
        headers=["exchange regime", "final coop", "std", "CSN-free paths"],
        title=(
            "Final cooperation by exchange regime (refs [1][10]: second-hand"
            " gossip vs the paper's first-hand watchdog)"
        ),
    )
    return plot + "\n\n" + table


def render_table5(case3: ExperimentResult, case4: ExperimentResult) -> str:
    """Table 5: per-environment cooperation and CSN-free paths (cases 3, 4)."""
    coop3, coop4 = case3.per_env_cooperation(), case4.per_env_cooperation()
    free3, free4 = case3.per_env_csn_free(), case4.per_env_csn_free()
    rows = []
    for env in case3.environments():
        paper = PAPER_TABLE5.get(env)
        rows.append(
            [
                env,
                f"{coop3[env] * 100:.0f}%",
                f"{coop4.get(env, float('nan')) * 100:.0f}%",
                f"{free3[env] * 100:.0f}%",
                f"{free4.get(env, float('nan')) * 100:.0f}%",
                (
                    f"{paper[0]*100:.0f}/{paper[1]*100:.0f}/"
                    f"{paper[2]*100:.0f}/{paper[3]*100:.0f}"
                    if paper
                    else "-"
                ),
            ]
        )
    return format_table(
        rows,
        headers=[
            "env",
            "coop case3",
            "coop case4",
            "CSN-free case3",
            "CSN-free case4",
            "paper (c3/c4/free3/free4)",
        ],
        title="Table 5 - cooperation per environment, last generation",
    )


def render_table6(case3: ExperimentResult, case4: ExperimentResult) -> str:
    """Table 6: responses to forwarding requests, by source class."""
    nn3, csn3 = case3.pooled_requests()
    nn4, csn4 = case4.pooled_requests()
    rows = []
    for src, c3, c4 in (("nn", nn3, nn4), ("csn", csn3, csn4)):
        f3, f4 = request_fractions(c3), request_fractions(c4)
        for key, label in (
            ("accepted", "Req. accepted"),
            ("rejected_by_np", "Req. rejected by NP"),
            ("rejected_by_csn", "Req. rejected by CSN"),
        ):
            paper = PAPER_TABLE6.get((src, key))
            rows.append(
                [
                    f"from {src.upper()}",
                    label,
                    f"{f3[key] * 100:.2f}%",
                    f"{f4[key] * 100:.2f}%",
                    f"{paper[0]*100:.2f}/{paper[1]*100:.2f}" if paper else "-",
                ]
            )
    return format_table(
        rows,
        headers=["source", "response", "case3", "case4", "paper (c3/c4)"],
        title="Table 6 - response to packet forwarding requests, last generation",
    )


def render_table7(
    case3: ExperimentResult, case4: ExperimentResult, k: int = 5
) -> str:
    """Table 7: most popular final strategies for cases 3 and 4."""
    top3 = most_common_strategies(case3.final_populations(), k)
    top4 = most_common_strategies(case4.final_populations(), k)
    rows = []
    for i in range(max(len(top3), len(top4))):
        s3 = (
            f"{top3[i][0].to_string()}  ({top3[i][1] * 100:.1f}%)"
            if i < len(top3)
            else ""
        )
        s4 = (
            f"{top4[i][0].to_string()}  ({top4[i][1] * 100:.1f}%)"
            if i < len(top4)
            else ""
        )
        rows.append([i + 1, s3, s4])
    return format_table(
        rows,
        headers=["rank", "shorter paths (case 3)", "longer paths (case 4)"],
        title="Table 7 - most popular evolved strategies",
    )


def render_table8_9(
    result: ExperimentResult,
    case_label: str,
    min_fraction: float = 0.03,
) -> str:
    """Tables 8/9: sub-strategy distribution per trust level for one case."""
    columns: list[list[str]] = []
    for trust in range(4):
        dist = substrategy_distribution(
            result.final_populations(), trust, min_fraction
        )
        columns.append([f"{pattern} ({frac * 100:.0f}%)" for pattern, frac in dist])
    height = max(len(c) for c in columns)
    rows = [
        [columns[t][i] if i < len(columns[t]) else "-" for t in range(4)]
        for i in range(height)
    ]
    return format_table(
        rows,
        headers=["Trust 0", "Trust 1", "Trust 2", "Trust 3"],
        title=(
            f"Evolved sub-strategies for {case_label}"
            f" (>= {min_fraction * 100:.0f}% of final populations)"
        ),
    )

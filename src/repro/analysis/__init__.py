"""Analysis of experiment results: cooperation metrics, strategy censuses,
request statistics, statistical engine-equivalence testing and paper-style
report rendering."""

from repro.analysis.cooperation import (
    final_mean_cooperation,
    moving_average,
    series_confidence_band,
)
from repro.analysis.equivalence import (
    EquivalenceReport,
    compare_engines,
    compare_samples,
    confidence_band_overlap,
    ks_2samp,
    mann_whitney_u,
)
from repro.analysis.requests import request_fractions
from repro.analysis.strategies import (
    most_common_strategies,
    strategy_counts,
    substrategy_distribution,
    unknown_bit_fraction,
)

__all__ = [
    "moving_average",
    "final_mean_cooperation",
    "series_confidence_band",
    "strategy_counts",
    "most_common_strategies",
    "substrategy_distribution",
    "unknown_bit_fraction",
    "request_fractions",
    "ks_2samp",
    "mann_whitney_u",
    "confidence_band_overlap",
    "compare_samples",
    "compare_engines",
    "EquivalenceReport",
]

"""Unit-disk network topology and a topology-driven path oracle.

Nodes are placed uniformly in the unit square; two nodes are neighbours when
their Euclidean distance is at most ``radio_range`` (every node uses an
omni-directional antenna with the same range, as §3.1 assumes).  Candidate
routes between a source and a destination are the first ``max_paths``
shortest simple paths in hop count, capped at ``max_hops``.

Route search runs on the native :class:`repro.network.ksp.PathSearch` engine
(path sets and order pinned identical to ``nx.shortest_simple_paths`` by
``tests/test_ksp.py``); :func:`shortest_intermediate_paths` remains the
networkx reference implementation that suite compares against.

The oracle keeps the engine contract of :class:`repro.paths.oracle.PathOracle`
(destination + candidate paths per game), so every simulation engine can run
unmodified on a static topology; its batched
:meth:`TopologyPathOracle.draw_tournament` additionally serves the batch
engine a whole tournament of pre-drawn games off a scope-filtered route
table, stream-identical to per-game :meth:`TopologyPathOracle.draw` calls.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.network.ksp import PathSearch
from repro.network.provider import StaticRouteProvider
from repro.paths.oracle import GameSetup, PlannedGame
from repro.paths.planner import draw_setup, plan_round

__all__ = [
    "GeometricTopology",
    "TopologyPathOracle",
    "shortest_intermediate_paths",
]


def shortest_intermediate_paths(
    graph: nx.Graph, source: int, destination: int, max_paths: int, max_hops: int
) -> list[tuple[int, ...]]:
    """Up to ``max_paths`` shortest simple routes as intermediate tuples.

    Routes longer than ``max_hops`` hops are discarded; direct neighbour
    routes (no intermediate) are skipped since the game needs at least one
    forwarding decision.  Shared by the static :class:`GeometricTopology` and
    the mobility subsystem's ``DynamicTopology``.
    """
    paths: list[tuple[int, ...]] = []
    if max_paths < 1:
        return paths
    try:
        # NetworkXNoPath/NodeNotFound surface lazily, on first iteration
        for node_path in nx.shortest_simple_paths(graph, source, destination):
            hops = len(node_path) - 1
            if hops > max_hops:
                break  # generator yields by increasing length
            if hops < 2:
                continue  # destination in direct range: no game to play
            paths.append(tuple(node_path[1:-1]))
            if len(paths) == max_paths:
                break
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return paths
    return paths


class GeometricTopology:
    """A random geometric (unit-disk) graph over the participant ids."""

    def __init__(
        self,
        node_ids: Sequence[int],
        radio_range: float,
        rng: np.random.Generator,
        require_connected: bool = True,
        max_placement_attempts: int = 50,
    ):
        if not 0.0 < radio_range <= np.sqrt(2.0):
            raise ValueError(
                f"radio_range must be in (0, sqrt(2)], got {radio_range}"
            )
        ids = list(node_ids)
        if len(ids) < 3:
            raise ValueError("a topology needs at least 3 nodes")
        self.radio_range = float(radio_range)
        self.node_ids = ids
        for _ in range(max_placement_attempts):
            positions = {nid: tuple(rng.random(2)) for nid in ids}
            graph = self._build_graph(positions)
            if not require_connected or nx.is_connected(graph):
                break
        else:
            raise RuntimeError(
                f"could not place a connected topology in"
                f" {max_placement_attempts} attempts; increase radio_range"
            )
        self.positions = positions
        self.graph = graph
        #: edge-set version (TopologyProvider contract).  Static by design,
        #: so it only moves when :meth:`invalidate_routes` announces an
        #: external graph edit — letting route providers drop their caches.
        self.epoch = 0
        self._search: PathSearch | None = None
        self._search_edges = -1
        #: (bfs_builds, queries, deviations_pruned) from retired snapshots,
        #: folded before a rebuild so search counters survive invalidation
        self._ksp_retired = (0, 0, 0)

    def path_search(self) -> PathSearch:
        """The native route-search snapshot of the current graph.

        Built lazily; the graph is static by design, so the snapshot lives
        for the topology's lifetime.  An edge-count guard catches the
        common accidental rewire, but an *equal-count* rewire is invisible
        to it — code that mutates ``self.graph`` must call
        :meth:`invalidate_routes` afterwards.
        """
        n_edges = self.graph.number_of_edges()
        if self._search is None or self._search_edges != n_edges:
            self._retire_search()
            self._search = PathSearch(self.graph)
            self._search_edges = n_edges
        return self._search

    def invalidate_routes(self) -> None:
        """Drop the route-search snapshot after an external graph edit."""
        self._retire_search()
        self._search = None
        self._search_edges = -1
        self.epoch += 1

    def _retire_search(self) -> None:
        old = self._search
        if old is not None:
            b, q, p = self._ksp_retired
            self._ksp_retired = (
                b + old.bfs_builds,
                q + old.queries,
                p + old.deviations_pruned,
            )

    def _build_graph(self, positions: dict[int, tuple[float, float]]) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(positions)
        ids = list(positions)
        limit_sq = self.radio_range**2
        for i, a in enumerate(ids):
            xa, ya = positions[a]
            for b in ids[i + 1 :]:
                xb, yb = positions[b]
                if (xa - xb) ** 2 + (ya - yb) ** 2 <= limit_sq:
                    graph.add_edge(a, b)
        return graph

    def degree_stats(self) -> tuple[float, int, int]:
        """(mean, min, max) node degree — useful for choosing radio_range."""
        degrees = [d for _, d in self.graph.degree()]
        return float(np.mean(degrees)), int(min(degrees)), int(max(degrees))

    def candidate_paths(
        self, source: int, destination: int, max_paths: int, max_hops: int
    ) -> list[tuple[int, ...]]:
        """Up to ``max_paths`` shortest simple routes as intermediate tuples."""
        return self.path_search().intermediate_paths(
            source, destination, max_paths, max_hops
        )


class TopologyPathOracle:
    """Path oracle backed by a static :class:`GeometricTopology`.

    The destination is drawn uniformly among participants that are reachable
    with at least one valid route; if a drawn destination offers no route
    (e.g. only direct-neighbour connectivity), it is rejected and redrawn, up
    to ``max_draws`` before giving up with a descriptive error.

    Routing is layered (see :mod:`repro.network.provider`): a
    :class:`StaticRouteProvider` caches per-pair full-graph routes plus a
    scope-filtered table shared by the sequential and batched draw paths
    (``cache=False`` disables both, for benchmarking the recomputation
    cost), and the draw loops come from :mod:`repro.paths.planner`.
    """

    def __init__(
        self,
        topology: GeometricTopology,
        rng: np.random.Generator,
        max_paths: int = 3,
        max_hops: int = 10,
        max_draws: int = 64,
        cache: bool = True,
    ):
        self.topology = topology
        self.rng = rng
        self.max_paths = max_paths
        self.max_hops = max_hops
        self.max_draws = max_draws
        self.provider = StaticRouteProvider(
            topology, max_paths, max_hops, cache=cache
        )

    def _candidate_paths(self, source: int, destination: int) -> list[tuple[int, ...]]:
        """Full-graph routes for the pair (unscoped; provider-cached)."""
        return self.provider.base_routes(source, destination)

    @property
    def cache_hits(self) -> int:
        return self.provider.cache_hits

    @property
    def cache_misses(self) -> int:
        return self.provider.cache_misses

    @property
    def cache_info(self) -> tuple[int, int]:
        """(hits, misses) of the per-pair route cache."""
        return self.provider.cache_info

    def draw(self, source: int, participants: Sequence[int]) -> GameSetup:
        others = [p for p in participants if p != source]
        if not others:
            raise ValueError("need at least one potential destination")
        provider = self.provider
        provider.sync()
        provider.rescope(participants)
        destination, paths = draw_setup(
            self.rng, source, others, provider.routes, self.max_draws
        )
        return GameSetup(
            source=source, destination=destination, paths=tuple(paths)
        )

    # -- batched drawing (struct-of-arrays engines) ----------------------------

    def draw_tournament(
        self, sources: Sequence[int], participants: Sequence[int]
    ) -> list[PlannedGame]:
        """Draw a whole round's (or tournament's) games in one batch.

        **Stream-identical** to calling :meth:`draw` once per source — one
        ``integers`` draw per destination attempt, same rejection/redraw
        sequence — so engines interleaving batched and per-game drawing stay
        bit-identical.  The speedup is pure overhead removal: the provider's
        scope-filtered route table replaces per-draw path filtering, and no
        ``GameSetup`` is constructed or validated per game.
        """
        participants = list(participants)
        provider = self.provider
        provider.sync()
        provider.rescope(participants)
        return plan_round(
            self.rng, sources, participants, provider.routes, self.max_draws
        )

"""Unit-disk network topology and a topology-driven path oracle.

Nodes are placed uniformly in the unit square; two nodes are neighbours when
their Euclidean distance is at most ``radio_range`` (every node uses an
omni-directional antenna with the same range, as §3.1 assumes).  Candidate
routes between a source and a destination are the first ``max_paths``
shortest simple paths in hop count, capped at ``max_hops``.

Route search runs on the native :class:`repro.network.ksp.PathSearch` engine
(path sets and order pinned identical to ``nx.shortest_simple_paths`` by
``tests/test_ksp.py``); :func:`shortest_intermediate_paths` remains the
networkx reference implementation that suite compares against.

The oracle keeps the engine contract of :class:`repro.paths.oracle.PathOracle`
(destination + candidate paths per game), so every simulation engine can run
unmodified on a static topology; its batched
:meth:`TopologyPathOracle.draw_tournament` additionally serves the batch
engine a whole tournament of pre-drawn games off a scope-filtered route
table, stream-identical to per-game :meth:`TopologyPathOracle.draw` calls.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.network.ksp import PathSearch
from repro.paths.oracle import GameSetup, PlannedGame

__all__ = [
    "GeometricTopology",
    "TopologyPathOracle",
    "shortest_intermediate_paths",
]


def shortest_intermediate_paths(
    graph: nx.Graph, source: int, destination: int, max_paths: int, max_hops: int
) -> list[tuple[int, ...]]:
    """Up to ``max_paths`` shortest simple routes as intermediate tuples.

    Routes longer than ``max_hops`` hops are discarded; direct neighbour
    routes (no intermediate) are skipped since the game needs at least one
    forwarding decision.  Shared by the static :class:`GeometricTopology` and
    the mobility subsystem's ``DynamicTopology``.
    """
    paths: list[tuple[int, ...]] = []
    if max_paths < 1:
        return paths
    try:
        # NetworkXNoPath/NodeNotFound surface lazily, on first iteration
        for node_path in nx.shortest_simple_paths(graph, source, destination):
            hops = len(node_path) - 1
            if hops > max_hops:
                break  # generator yields by increasing length
            if hops < 2:
                continue  # destination in direct range: no game to play
            paths.append(tuple(node_path[1:-1]))
            if len(paths) == max_paths:
                break
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return paths
    return paths


class GeometricTopology:
    """A random geometric (unit-disk) graph over the participant ids."""

    def __init__(
        self,
        node_ids: Sequence[int],
        radio_range: float,
        rng: np.random.Generator,
        require_connected: bool = True,
        max_placement_attempts: int = 50,
    ):
        if not 0.0 < radio_range <= np.sqrt(2.0):
            raise ValueError(
                f"radio_range must be in (0, sqrt(2)], got {radio_range}"
            )
        ids = list(node_ids)
        if len(ids) < 3:
            raise ValueError("a topology needs at least 3 nodes")
        self.radio_range = float(radio_range)
        self.node_ids = ids
        for _ in range(max_placement_attempts):
            positions = {nid: tuple(rng.random(2)) for nid in ids}
            graph = self._build_graph(positions)
            if not require_connected or nx.is_connected(graph):
                break
        else:
            raise RuntimeError(
                f"could not place a connected topology in"
                f" {max_placement_attempts} attempts; increase radio_range"
            )
        self.positions = positions
        self.graph = graph
        self._search: PathSearch | None = None
        self._search_edges = -1

    def path_search(self) -> PathSearch:
        """The native route-search snapshot of the current graph.

        Built lazily; the graph is static by design, so the snapshot lives
        for the topology's lifetime.  An edge-count guard catches the
        common accidental rewire, but an *equal-count* rewire is invisible
        to it — code that mutates ``self.graph`` must call
        :meth:`invalidate_routes` afterwards.
        """
        n_edges = self.graph.number_of_edges()
        if self._search is None or self._search_edges != n_edges:
            self._search = PathSearch(self.graph)
            self._search_edges = n_edges
        return self._search

    def invalidate_routes(self) -> None:
        """Drop the route-search snapshot after an external graph edit."""
        self._search = None
        self._search_edges = -1

    def _build_graph(self, positions: dict[int, tuple[float, float]]) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(positions)
        ids = list(positions)
        limit_sq = self.radio_range**2
        for i, a in enumerate(ids):
            xa, ya = positions[a]
            for b in ids[i + 1 :]:
                xb, yb = positions[b]
                if (xa - xb) ** 2 + (ya - yb) ** 2 <= limit_sq:
                    graph.add_edge(a, b)
        return graph

    def degree_stats(self) -> tuple[float, int, int]:
        """(mean, min, max) node degree — useful for choosing radio_range."""
        degrees = [d for _, d in self.graph.degree()]
        return float(np.mean(degrees)), int(min(degrees)), int(max(degrees))

    def candidate_paths(
        self, source: int, destination: int, max_paths: int, max_hops: int
    ) -> list[tuple[int, ...]]:
        """Up to ``max_paths`` shortest simple routes as intermediate tuples."""
        return self.path_search().intermediate_paths(
            source, destination, max_paths, max_hops
        )


class TopologyPathOracle:
    """Path oracle backed by a static :class:`GeometricTopology`.

    The destination is drawn uniformly among participants that are reachable
    with at least one valid route; if a drawn destination offers no route
    (e.g. only direct-neighbour connectivity), it is rejected and redrawn, up
    to ``max_draws`` before giving up with a descriptive error.

    Since the topology never changes, candidate routes per (source,
    destination) pair are computed once and cached (``cache=False`` disables
    this, for benchmarking the recomputation cost).
    """

    def __init__(
        self,
        topology: GeometricTopology,
        rng: np.random.Generator,
        max_paths: int = 3,
        max_hops: int = 10,
        max_draws: int = 64,
        cache: bool = True,
    ):
        self.topology = topology
        self.rng = rng
        self.max_paths = max_paths
        self.max_hops = max_hops
        self.max_draws = max_draws
        self._cache: dict[tuple[int, int], list[tuple[int, ...]]] | None = (
            {} if cache else None
        )
        # scope-filtered route table for the batched draw path, keyed by the
        # participant set it was filtered against
        self._scoped_scope: frozenset[int] | None = None
        self._scoped_routes: dict[tuple[int, int], list[tuple[int, ...]]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def _candidate_paths(self, source: int, destination: int) -> list[tuple[int, ...]]:
        if self._cache is None:
            self.cache_misses += 1
            return self.topology.candidate_paths(
                source, destination, self.max_paths, self.max_hops
            )
        key = (source, destination)
        paths = self._cache.get(key)
        if paths is None:
            self.cache_misses += 1
            paths = self.topology.candidate_paths(
                source, destination, self.max_paths, self.max_hops
            )
            self._cache[key] = paths
        else:
            self.cache_hits += 1
        return paths

    @property
    def cache_info(self) -> tuple[int, int]:
        """(hits, misses) of the per-pair route cache."""
        return self.cache_hits, self.cache_misses

    def draw(self, source: int, participants: Sequence[int]) -> GameSetup:
        others = [p for p in participants if p != source]
        if not others:
            raise ValueError("need at least one potential destination")
        active = set(participants)
        for _ in range(self.max_draws):
            destination = others[int(self.rng.integers(len(others)))]
            paths = [
                p
                for p in self._candidate_paths(source, destination)
                if all(node in active for node in p)
            ]
            if paths:
                return GameSetup(
                    source=source, destination=destination, paths=tuple(paths)
                )
        raise RuntimeError(
            f"no routable destination found for source {source} after"
            f" {self.max_draws} draws; topology too sparse for this game"
        )

    # -- batched drawing (struct-of-arrays engines) ----------------------------

    def _route_table(
        self, active: frozenset[int]
    ) -> dict[tuple[int, int], list[tuple[int, ...]]]:
        """The per-pair routes of :meth:`draw`, pre-filtered to ``active``.

        Filled lazily per (source, destination) as the batched draw touches
        pairs — an all-pairs table for the pairs the tournament actually
        routes, which for a static topology is reusable across every round
        and tournament with the same participant set.
        """
        if self._scoped_scope != active:
            self._scoped_scope = active
            self._scoped_routes = {}
        return self._scoped_routes

    def draw_tournament(
        self, sources: Sequence[int], participants: Sequence[int]
    ) -> list[PlannedGame]:
        """Draw a whole round's (or tournament's) games in one batch.

        **Stream-identical** to calling :meth:`draw` once per source — one
        ``integers`` draw per destination attempt, same rejection/redraw
        sequence — so engines interleaving batched and per-game drawing stay
        bit-identical.  The speedup is pure overhead removal: the
        scope-filtered route table replaces the per-draw path filter, and no
        ``GameSetup`` is constructed or validated per game.
        """
        participants = list(participants)
        active = frozenset(participants)
        # cache=False disables the scoped route table too, so benchmarking
        # the recomputation cost covers the batched path as well
        caching = self._cache is not None
        table = self._route_table(active) if caching else {}
        rng = self.rng
        integers = rng.integers
        max_draws = self.max_draws
        candidate_paths = self._candidate_paths
        others_cache: dict[int, list[int]] = {}
        cache_get = others_cache.get
        plan: list[PlannedGame] = []
        append = plan.append
        for source in sources:
            others = cache_get(source)
            if others is None:
                others = [p for p in participants if p != source]
                others_cache[source] = others
            if not others:
                raise ValueError("need at least one potential destination")
            n_others = len(others)
            for _ in range(max_draws):
                destination = others[int(integers(n_others))]
                key = (source, destination)
                paths = table.get(key)
                if paths is None:
                    paths = [
                        p
                        for p in candidate_paths(source, destination)
                        if all(node in active for node in p)
                    ]
                    if caching:
                        table[key] = paths
                else:
                    # keep cache_info meaningful for the batched path too
                    self.cache_hits += 1
                if paths:
                    append((source, destination, paths))
                    break
            else:
                raise RuntimeError(
                    f"no routable destination found for source {source} after"
                    f" {max_draws} draws; topology too sparse for this game"
                )
        return plan

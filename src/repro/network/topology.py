"""Unit-disk network topology and a topology-driven path oracle.

Nodes are placed uniformly in the unit square; two nodes are neighbours when
their Euclidean distance is at most ``radio_range`` (every node uses an
omni-directional antenna with the same range, as §3.1 assumes).  Candidate
routes between a source and a destination are the first ``max_paths``
shortest simple paths in hop count, capped at ``max_hops``.

The oracle keeps the engine contract of :class:`repro.paths.oracle.PathOracle`
(destination + candidate paths per game), so either simulation engine can run
unmodified on a static topology.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.paths.oracle import GameSetup

__all__ = [
    "GeometricTopology",
    "TopologyPathOracle",
    "shortest_intermediate_paths",
]


def shortest_intermediate_paths(
    graph: nx.Graph, source: int, destination: int, max_paths: int, max_hops: int
) -> list[tuple[int, ...]]:
    """Up to ``max_paths`` shortest simple routes as intermediate tuples.

    Routes longer than ``max_hops`` hops are discarded; direct neighbour
    routes (no intermediate) are skipped since the game needs at least one
    forwarding decision.  Shared by the static :class:`GeometricTopology` and
    the mobility subsystem's ``DynamicTopology``.
    """
    paths: list[tuple[int, ...]] = []
    if max_paths < 1:
        return paths
    try:
        # NetworkXNoPath/NodeNotFound surface lazily, on first iteration
        for node_path in nx.shortest_simple_paths(graph, source, destination):
            hops = len(node_path) - 1
            if hops > max_hops:
                break  # generator yields by increasing length
            if hops < 2:
                continue  # destination in direct range: no game to play
            paths.append(tuple(node_path[1:-1]))
            if len(paths) == max_paths:
                break
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return paths
    return paths


class GeometricTopology:
    """A random geometric (unit-disk) graph over the participant ids."""

    def __init__(
        self,
        node_ids: Sequence[int],
        radio_range: float,
        rng: np.random.Generator,
        require_connected: bool = True,
        max_placement_attempts: int = 50,
    ):
        if not 0.0 < radio_range <= np.sqrt(2.0):
            raise ValueError(
                f"radio_range must be in (0, sqrt(2)], got {radio_range}"
            )
        ids = list(node_ids)
        if len(ids) < 3:
            raise ValueError("a topology needs at least 3 nodes")
        self.radio_range = float(radio_range)
        self.node_ids = ids
        for _ in range(max_placement_attempts):
            positions = {nid: tuple(rng.random(2)) for nid in ids}
            graph = self._build_graph(positions)
            if not require_connected or nx.is_connected(graph):
                break
        else:
            raise RuntimeError(
                f"could not place a connected topology in"
                f" {max_placement_attempts} attempts; increase radio_range"
            )
        self.positions = positions
        self.graph = graph

    def _build_graph(self, positions: dict[int, tuple[float, float]]) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(positions)
        ids = list(positions)
        limit_sq = self.radio_range**2
        for i, a in enumerate(ids):
            xa, ya = positions[a]
            for b in ids[i + 1 :]:
                xb, yb = positions[b]
                if (xa - xb) ** 2 + (ya - yb) ** 2 <= limit_sq:
                    graph.add_edge(a, b)
        return graph

    def degree_stats(self) -> tuple[float, int, int]:
        """(mean, min, max) node degree — useful for choosing radio_range."""
        degrees = [d for _, d in self.graph.degree()]
        return float(np.mean(degrees)), int(min(degrees)), int(max(degrees))

    def candidate_paths(
        self, source: int, destination: int, max_paths: int, max_hops: int
    ) -> list[tuple[int, ...]]:
        """Up to ``max_paths`` shortest simple routes as intermediate tuples."""
        return shortest_intermediate_paths(
            self.graph, source, destination, max_paths, max_hops
        )


class TopologyPathOracle:
    """Path oracle backed by a static :class:`GeometricTopology`.

    The destination is drawn uniformly among participants that are reachable
    with at least one valid route; if a drawn destination offers no route
    (e.g. only direct-neighbour connectivity), it is rejected and redrawn, up
    to ``max_draws`` before giving up with a descriptive error.

    Since the topology never changes, candidate routes per (source,
    destination) pair are computed once and cached (``cache=False`` disables
    this, for benchmarking the recomputation cost).
    """

    def __init__(
        self,
        topology: GeometricTopology,
        rng: np.random.Generator,
        max_paths: int = 3,
        max_hops: int = 10,
        max_draws: int = 64,
        cache: bool = True,
    ):
        self.topology = topology
        self.rng = rng
        self.max_paths = max_paths
        self.max_hops = max_hops
        self.max_draws = max_draws
        self._cache: dict[tuple[int, int], list[tuple[int, ...]]] | None = (
            {} if cache else None
        )
        self.cache_hits = 0
        self.cache_misses = 0

    def _candidate_paths(self, source: int, destination: int) -> list[tuple[int, ...]]:
        if self._cache is None:
            self.cache_misses += 1
            return self.topology.candidate_paths(
                source, destination, self.max_paths, self.max_hops
            )
        key = (source, destination)
        paths = self._cache.get(key)
        if paths is None:
            self.cache_misses += 1
            paths = self.topology.candidate_paths(
                source, destination, self.max_paths, self.max_hops
            )
            self._cache[key] = paths
        else:
            self.cache_hits += 1
        return paths

    @property
    def cache_info(self) -> tuple[int, int]:
        """(hits, misses) of the per-pair route cache."""
        return self.cache_hits, self.cache_misses

    def draw(self, source: int, participants: Sequence[int]) -> GameSetup:
        others = [p for p in participants if p != source]
        if not others:
            raise ValueError("need at least one potential destination")
        active = set(participants)
        for _ in range(self.max_draws):
            destination = others[int(self.rng.integers(len(others)))]
            paths = [
                p
                for p in self._candidate_paths(source, destination)
                if all(node in active for node in p)
            ]
            if paths:
                return GameSetup(
                    source=source, destination=destination, paths=tuple(paths)
                )
        raise RuntimeError(
            f"no routable destination found for source {source} after"
            f" {self.max_draws} draws; topology too sparse for this game"
        )

"""Native K-shortest-paths engine — no networkx in the route hot loop.

:class:`PathSearch` is a frozen snapshot of a :mod:`networkx` graph compiled
to int-indexed adjacency arrays (CSR layout: ``indptr``/``indices``, plus the
per-node neighbour lists materialised once for the scalar loops).  On top of
it sit

* all-pairs BFS hop-distance fields (one vectorised numpy level-sweep for
  every destination at once), used to reject unreachable/too-far queries in
  O(1) and to prune Yen spur searches that cannot fit under ``max_hops``, and
* a Yen/deviation-style enumeration of shortest simple paths that replicates
  ``networkx.shortest_simple_paths`` **exactly** — same path sets, same
  order, including ties.

Order fidelity is a hard requirement, not a nicety: the path oracles feed
these routes into tournaments whose trajectories are pinned bit-for-bit
across three engines, and the equivalence suite (``tests/test_ksp.py``) pins
the native enumeration against networkx on randomised geometric graphs.
Networkx breaks ties by (path length, heap insertion order), and insertion
order flows from its bidirectional-BFS meet order, which in turn flows from
adjacency *iteration* order.  The snapshot therefore records neighbours in
``graph.adj`` iteration order, and :meth:`_shortest` is a faithful port of
``networkx.algorithms.simple_paths._bidirectional_pred_succ`` for undirected
graphs (alternating smallest-fringe level expansion, first meet wins).

Two query-time features mirror how the mobility subsystem uses subgraphs:

* ``scope`` — restrict the search to a node subset, like
  ``graph.subgraph(scope)`` (scoped adjacency keeps the base iteration
  order);
* ``extra_edges`` — edges appended for this query only, like temporarily
  ``add_edges_from``-ing them (appended neighbours iterate *after* the base
  ones, exactly as a dict-backed networkx graph would).  Hop-field pruning
  is disabled when extra edges are present, since they can shorten routes
  and would invalidate the lower bound.

The truncation contract matches
:func:`repro.network.topology.shortest_intermediate_paths`: enumeration in
increasing length, stop past ``max_hops``, optionally skip direct-neighbour
routes, cap at ``max_paths``.  Candidates that cannot fit under ``max_hops``
are never buffered — they could only pop after every eligible path, where
the consumer stops anyway.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Collection, Iterable, Sequence

import networkx as nx
import numpy as np

__all__ = ["PathSearch", "UNREACHABLE"]

#: Hop-field sentinel for "no route": larger than any real hop count, small
#: enough that ``(i - 1) + UNREACHABLE`` never overflows anything.
UNREACHABLE = 1 << 30


class PathSearch:
    """K-shortest simple paths over a frozen int-indexed graph snapshot.

    Build one per topology epoch (the snapshot does not track later graph
    mutations); queries are read-only and never touch the source graph.
    """

    __slots__ = (
        "node_ids",
        "index",
        "indptr",
        "indices",
        "neighbors",
        "neighbor_sets",
        "identity_ids",
        "_dist_rows",
        "_dist_bound",
        "_dist_complete",
        "_mask_scope",
        "_mask",
        "bfs_builds",
        "queries",
        "deviations_pruned",
    )

    def __init__(self, graph: nx.Graph):
        ids = list(graph)
        self.node_ids = ids
        self.index = {nid: i for i, nid in enumerate(ids)}
        index = self.index
        # CSR adjacency in graph.adj iteration order (the order networkx's
        # own BFS would visit neighbours in — load-bearing for tie order)
        indptr = [0]
        indices: list[int] = []
        for nid in ids:
            indices.extend(index[w] for w in graph.adj[nid])
            indptr.append(len(indices))
        self.indptr = indptr
        self.indices = indices
        self.neighbors = [
            indices[indptr[i] : indptr[i + 1]] for i in range(len(ids))
        ]
        self.neighbor_sets = [set(nbrs) for nbrs in self.neighbors]
        #: ids == indices (nodes are 0..n-1 in order) — true for every
        #: topology this repo builds; lets queries skip id translation
        self.identity_ids = ids == list(range(len(ids)))
        self._dist_rows: list[list[int]] | None = None
        self._dist_bound = -1
        self._dist_complete = False
        self._mask_scope: Collection[int] | None = None
        self._mask: bytearray | None = None
        #: hop-field sweeps run (each is the O(n^2) matmul level sweep)
        self.bfs_builds = 0
        #: top-level path enumerations served by this snapshot
        self.queries = 0
        #: Yen spur searches skipped by the hop-field / beat bounds — work
        #: the pruning provably saved without changing any output
        self.deviations_pruned = 0

    def __len__(self) -> int:
        return len(self.node_ids)

    # -- hop-distance fields ---------------------------------------------------

    def hop_fields(self, bound: int | None = None) -> list[list[int]]:
        """All-pairs BFS hop distances, ``rows[target][source]``.

        Computed per snapshot as a vectorised level sweep: one boolean
        frontier matrix advanced by adjacency matmul until no node is newly
        reached — or until ``bound`` levels, since consumers pruning against
        ``max_hops`` treat every distance beyond it as unreachable anyway.
        Pairs beyond the sweep hold :data:`UNREACHABLE`.  The field is
        cached; a later call with a larger bound extends it.  The graph is
        undirected, so rows double as distance fields *from* every source.
        """
        if self._dist_rows is None or (
            not self._dist_complete
            and (bound is None or bound > self._dist_bound)
        ):
            self.bfs_builds += 1
            n = len(self.node_ids)
            adj = np.zeros((n, n), dtype=bool)
            for i, nbrs in enumerate(self.neighbors):
                if nbrs:
                    adj[i, nbrs] = True
            dist = np.full((n, n), UNREACHABLE, dtype=np.int64)
            np.fill_diagonal(dist, 0)
            reached = np.eye(n, dtype=bool)
            frontier = reached
            hops = 0
            while frontier.any():
                if bound is not None and hops >= bound:
                    break
                hops += 1
                frontier = (frontier @ adj) & ~reached
                dist[frontier] = hops
                reached |= frontier
            else:
                self._dist_complete = True
            self._dist_bound = hops
            self._dist_rows = dist.tolist()
        return self._dist_rows

    def hop_distance(self, source: int, target: int) -> int:
        """BFS hop distance between two node ids (:data:`UNREACHABLE` if none)."""
        return self.hop_fields()[self.index[target]][self.index[source]]

    # -- public queries --------------------------------------------------------

    def intermediate_paths(
        self,
        source: int,
        destination: int,
        max_paths: int,
        max_hops: int,
        scope: Collection[int] | None = None,
        extra_edges: Sequence[tuple[int, int]] = (),
    ) -> list[tuple[int, ...]]:
        """Up to ``max_paths`` shortest simple routes as intermediate tuples.

        Drop-in equivalent of
        :func:`repro.network.topology.shortest_intermediate_paths` run over
        this snapshot (optionally scoped / with query-time extra edges):
        direct-neighbour routes are skipped, enumeration stops past
        ``max_hops``, and unknown endpoints yield ``[]``.
        """
        if max_paths < 1:
            return []
        paths = self._simple_paths(
            source,
            destination,
            max_hops,
            scope,
            extra_edges,
            max_paths,
            collect_short=False,
        )
        if self.identity_ids:
            return [tuple(p[1:-1]) for p in paths]
        ids = self.node_ids
        return [tuple(ids[i] for i in p[1:-1]) for p in paths]

    def simple_paths(
        self,
        source: int,
        destination: int,
        max_hops: int,
        limit: int | None = None,
        scope: Collection[int] | None = None,
        extra_edges: Sequence[tuple[int, int]] = (),
    ) -> list[list[int]]:
        """Full node-id paths in ``nx.shortest_simple_paths`` order.

        The raw enumeration (used by the equivalence suite): every simple
        path of at most ``max_hops`` hops, shortest first, networkx tie
        order, truncated to ``limit`` when given.
        """
        want = (1 << 30) if limit is None else limit
        if want < 1:
            return []
        paths = self._simple_paths(
            source, destination, max_hops, scope, extra_edges, want, True
        )
        ids = self.node_ids
        return [[ids[i] for i in p] for p in paths]

    def covers_all(self, scope: Collection[int]) -> bool:
        """Whether ``scope`` includes every node (restriction is a no-op).

        Shares the memoised scope mask, so for a stable scope object the
        check is two identity comparisons.
        """
        return self._scope_mask(scope) is None

    # -- core ------------------------------------------------------------------

    def _scope_mask(self, scope: Collection[int]) -> bytearray | None:
        """``scope`` as a per-index byte mask; ``None`` when unrestricted.

        Memoises the last scope *object*: oracles pass the same frozenset
        for every draw of a tournament, making the common case free.
        """
        if scope is self._mask_scope:
            return self._mask
        index = self.index
        mask: bytearray | None = bytearray(len(self.node_ids))
        covered = 0
        for nid in scope:
            i = index.get(nid)
            if i is not None:
                mask[i] = 1  # type: ignore[index]
                covered += 1
        if covered == len(self.node_ids):
            mask = None  # scope covers the whole graph: skip the filter
        self._mask_scope = scope
        self._mask = mask
        return mask

    def _simple_paths(
        self,
        source: int,
        destination: int,
        max_hops: int,
        scope: Collection[int] | None,
        extra_edges: Sequence[tuple[int, int]],
        want: int,
        collect_short: bool,
    ) -> list[list[int]]:
        self.queries += 1
        out: list[list[int]] = []
        n = len(self.node_ids)
        if self.identity_ids:
            if not (0 <= source < n and 0 <= destination < n):
                return out
            s, t = source, destination
        else:
            index = self.index
            if source not in index or destination not in index:
                return out
            s, t = index[source], index[destination]
        mask = self._scope_mask(scope) if scope is not None else None
        if mask is not None and not (mask[s] and mask[t]):
            return out
        xadj: dict[int, list[int]] | None = None
        if extra_edges:
            index = self.index
            xadj = {}
            for a_id, b_id in extra_edges:
                a, b = index[a_id], index[b_id]
                xadj.setdefault(a, []).append(b)
                xadj.setdefault(b, []).append(a)
        max_len = max_hops + 1  # node count of a max_hops-hop path
        dist_to_t: list[int] | None = None
        if xadj is None:
            # sound lower bound: scoping/ignoring only lengthens routes
            dist_to_t = self.hop_fields(max_hops)[t]
            if dist_to_t[s] > max_hops:
                return out
        shortest = self._shortest
        list_a: list[list[int]] = []
        # heap entries: (cost, tiebreak counter, path, dedupe key, deviation
        # index) — cost and counter replicate networkx's PathBuffer ordering
        heap: list[tuple[int, int, list[int], tuple[int, ...], int]] = []
        buffered: set[tuple[int, ...]] = set()
        counter = 0
        prev: list[int] | None = None
        prev_dev = 1
        neighbors = self.neighbors
        nbr_sets = self.neighbor_sets
        while True:
            if prev is None:
                # closed-form distance-1/2 shortcuts: with no filters the
                # bidirectional search provably returns the direct edge /
                # first common neighbour in adjacency order — skip the BFS
                d0 = dist_to_t[s] if (dist_to_t is not None and mask is None) else 0
                if d0 == 1:
                    path = [s, t]
                elif d0 == 2:
                    s_nbrs = nbr_sets[s]
                    path = None
                    for w in neighbors[t]:
                        if w in s_nbrs:
                            path = [s, w, t]
                            break
                else:
                    path = shortest(s, t, mask, xadj, None, None, n)
                if path is not None and len(path) <= max_len:
                    key = tuple(path)
                    heappush(heap, (len(path), counter, path, key, 1))
                    buffered.add(key)
                    counter += 1
            else:
                blocked = bytearray(n)  # the round's ignored spur heads
                ig_edges: set[int] = set()
                sharers = list_a  # paths sharing the current root prefix
                # cost such that `need` buffered candidates pop at or before
                # it: a spur whose best possible cost is no better can never
                # surface within the remaining pops (see skip rule below)
                need = want - len(out)
                beat = -1  # recomputed lazily; pushes only strengthen it
                beat_stale = True
                for i in range(1, len(prev)):
                    if beat_stale:
                        if need <= len(heap):
                            beat = sorted(e[0] for e in heap)[need - 1]
                        else:
                            beat = -1
                        beat_stale = False
                    if -1 < beat <= i + 2:
                        # every remaining floor is at least i + 2 (spur heads
                        # are never the target, so dist >= 1): the whole rest
                        # of the round is unobservable — drop it, ignore
                        # bookkeeping included, since nothing reads it now
                        self.deviations_pruned += len(prev) - i
                        break
                    head = prev[i - 1]
                    sharers = [p for p in sharers if p[i - 1] == head]
                    for p in sharers:
                        a, b = p[i - 1], p[i]
                        ig_edges.add(a * n + b)
                        ig_edges.add(b * n + a)
                    # Three output-identical reasons to skip the spur search
                    # (the ignore bookkeeping always proceeds):
                    # * Lawler's rule — positions before prev's own
                    #   deviation point re-run a search an earlier pop of
                    #   the same prefix class already ran; its result is
                    #   still buffered, so the duplicate push would be
                    #   dropped without even consuming a tiebreak counter.
                    # * hop-field bound — no spur from here finishes within
                    #   max_hops, so any result would be discarded unpushed.
                    # * beat bound — the spur's result costs at least
                    #   i + dist(head, t) + 1; if `need` buffered candidates
                    #   already cost no more, enumeration ends before the
                    #   result could ever pop (pushed-earlier entries win
                    #   cost ties), so the candidate is unobservable.
                    if i >= prev_dev:
                        if dist_to_t is None:
                            floor = -1  # extra edges: no sound lower bound
                            d = 0
                        else:
                            d = dist_to_t[head]
                            floor = i + d + 1
                            if floor > max_len + 1:
                                self.deviations_pruned += 1
                                blocked[head] = 1
                                continue
                        if -1 < beat <= floor:
                            self.deviations_pruned += 1
                            blocked[head] = 1
                            continue
                        # the distance-1/2 closed forms, filter-aware: fall
                        # through to the real search when an ignored edge
                        # (or blocked node) breaks the shortcut's premise
                        spur = None
                        direct = False
                        if mask is None and d == 1:
                            if head * n + t not in ig_edges:
                                spur = [head, t]
                                direct = True
                        elif mask is None and d == 2:
                            hn = head * n
                            tn = t * n
                            level = {
                                w
                                for w in neighbors[head]
                                if not blocked[w] and hn + w not in ig_edges
                            }
                            for w in neighbors[t]:
                                if (
                                    w in level
                                    and not blocked[w]
                                    and tn + w not in ig_edges
                                ):
                                    spur = [head, w, t]
                                    direct = True
                                    break
                        if not direct:
                            spur = shortest(
                                head, t, mask, xadj, blocked, ig_edges, n
                            )
                        if spur is not None:
                            full = prev[: i - 1] + spur
                            if len(full) <= max_len:
                                key = tuple(full)
                                if key not in buffered:
                                    heappush(
                                        heap,
                                        (i + len(spur), counter, full, key, i),
                                    )
                                    buffered.add(key)
                                    counter += 1
                                    beat_stale = True
                    blocked[head] = 1
            if not heap:
                break
            _, _, path, key, prev_dev = heappop(heap)
            buffered.discard(key)
            list_a.append(path)
            prev = path
            if collect_short or len(path) >= 3:
                out.append(path)
                if len(out) == want:
                    break
        return out

    def _shortest(
        self,
        s: int,
        t: int,
        mask: bytearray | None,
        xadj: dict[int, list[int]] | None,
        blocked: bytearray | None,
        ig_edges: set[int] | None,
        n: int,
    ) -> list[int] | None:
        """Shortest path as int indices — port of networkx's
        ``_bidirectional_pred_succ`` (undirected), ``None`` when no path.

        The alternating smallest-fringe expansion, in-loop meet check and
        filter stack (scope, then ignored nodes, then ignored edges — all
        order-preserving predicates over the recorded adjacency order) are
        kept exactly, so the returned path matches networkx even among
        equal-length alternatives.  ``blocked`` is the ignored-node set as a
        byte mask; ``ig_edges`` holds both orientations of every ignored
        edge encoded ``u * n + v``, so one membership test replaces two.
        """
        if blocked is not None and (blocked[s] or blocked[t]):
            return None
        if s == t:
            return [s]
        neighbors = self.neighbors
        # the filter set is constant for the whole search: pick one of three
        # specialised discovery loops (plain / ignores-only / fully general)
        # once, instead of re-testing per neighbour
        plain = mask is None and xadj is None
        # -2 unseen, -1 chain terminator, else predecessor/successor index
        pred = [-2] * n
        succ = [-2] * n
        pred[s] = -1
        succ[t] = -1
        forward = [s]
        reverse = [t]
        meet = -1
        while forward and reverse:
            if len(forward) <= len(reverse):
                this_level, forward = forward, []
                fringe, seen, other = forward, pred, succ
            else:
                this_level, reverse = reverse, []
                fringe, seen, other = reverse, succ, pred
            for v in this_level:
                if plain:
                    nbrs = neighbors[v]
                    if ig_edges is None:  # the unfiltered initial search
                        for w in nbrs:
                            if seen[w] == -2:
                                fringe.append(w)
                                seen[w] = v
                            if other[w] != -2:
                                meet = w
                                break
                    else:  # spur search: ignored spur heads + root edges
                        vn = v * n
                        for w in nbrs:
                            if blocked[w] or vn + w in ig_edges:
                                continue
                            if seen[w] == -2:
                                fringe.append(w)
                                seen[w] = v
                            if other[w] != -2:
                                meet = w
                                break
                else:  # scoped subgraph and/or query-time extra edges
                    nbrs = neighbors[v]
                    if xadj is not None and v in xadj:
                        nbrs = nbrs + xadj[v]
                    vn = v * n
                    for w in nbrs:
                        if mask is not None and not mask[w]:
                            continue
                        if blocked is not None and blocked[w]:
                            continue
                        if ig_edges is not None and vn + w in ig_edges:
                            continue
                        if seen[w] == -2:
                            fringe.append(w)
                            seen[w] = v
                        if other[w] != -2:
                            meet = w
                            break
                if meet >= 0:
                    break
            if meet >= 0:
                break
        if meet < 0:
            return None
        # stitch the two half-paths together at the meet node
        path = []
        w = meet
        while w != -1:
            path.append(w)
            w = succ[w]
        head = []
        w = pred[meet]
        while w != -1:
            head.append(w)
            w = pred[w]
        head.reverse()
        return head + path


def reference_simple_paths(
    graph: nx.Graph, source: int, destination: int, max_hops: int
) -> Iterable[list[int]]:
    """Networkx ground truth for :meth:`PathSearch.simple_paths` (tests).

    Yields ``nx.shortest_simple_paths`` output truncated at ``max_hops`` the
    way the repo's consumers truncate it: stop at the first too-long path.
    """
    try:
        for path in nx.shortest_simple_paths(graph, source, destination):
            if len(path) - 1 > max_hops:
                break
            yield path
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return

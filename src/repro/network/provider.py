"""Route-provider layer: cached routes over an epoch-versioned topology.

This module is the middle layer of the oracle stack's three-layer split:

* **topology provider** (bottom) — anything matching
  :class:`TopologyProvider`: an epoch-versioned source of adjacency
  snapshots and route computations.  ``repro.network.topology
  .GeometricTopology`` (static, epoch frozen at 0 unless explicitly
  invalidated) and ``repro.mobility.dynamic.DynamicTopology`` (epoch
  incremented whenever the edge set changes) both satisfy it.
* **route provider** (this module) — :class:`RouteProvider` /
  :class:`StaticRouteProvider`: per-(source, destination) route caches with
  a pluggable :class:`CachePolicy` deciding how stale a cached route may be
  served.
* **draw planner** (top) — :mod:`repro.paths.planner` /
  :mod:`repro.paths.vector`: destination rejection sampling and batched or
  vectorized tournament planning over the provider's routes.

Cache policies
--------------
``exact`` (the default) serves a cached route only while the topology epoch
it was computed under is current — byte-for-byte the historical behavior, so
every committed pinned-seed trajectory is unchanged.  ``approx`` serves a
cached route while the topology has advanced at most ``drift_budget`` epochs
since the route was computed, then **revalidates lazily**: a
stale-beyond-budget entry first gets a cheap edge-existence recheck against
the live graph — surviving routes are re-stamped and served (they exist on
the *current* topology, merely possibly under-offering alternatives), and a
full route search runs only when every cached route actually broke.
Serving slightly-stale routes under a drift bound is the standard answer to
per-step route recomputation in dynamic-network GA work (arXiv:1107.1943);
the resulting trajectories are *statistically equivalent*, not
bit-identical, and are held to that claim by
``tests/test_engine_statistical.py`` through
:mod:`repro.analysis.equivalence` — exactly the contract the turbo engine
already lives under.  A ``drift_budget`` of 0 disables both the staleness
grace and revalidation, making ``approx`` bit-identical to ``exact`` by
construction — pinned by the drift-budget boundary tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Protocol, Sequence, runtime_checkable

__all__ = [
    "ROUTE_CACHE_POLICIES",
    "CachePolicy",
    "ExactPolicy",
    "ApproxPolicy",
    "make_cache_policy",
    "TopologyProvider",
    "RouteProvider",
    "StaticRouteProvider",
]

#: Recognised route-cache policy names (the ``--route-cache`` choices).
ROUTE_CACHE_POLICIES = ("exact", "approx")


@runtime_checkable
class TopologyProvider(Protocol):
    """The bottom layer: epoch-versioned adjacency + route computation.

    ``epoch`` must change whenever the edge set changes (and may stay put
    across position drift that leaves edges intact); ``candidate_paths``
    must be a pure function of the current epoch's graph (plus, for dynamic
    topologies, the node positions behind virtual/boost edges — which is
    exactly why those routes are never cached).
    """

    epoch: int

    def candidate_paths(
        self, source: int, destination: int, max_paths: int, max_hops: int
    ) -> list[tuple[int, ...]]: ...


@dataclass(frozen=True)
class CachePolicy:
    """How stale a cached route may be, in topology epochs.

    ``budget`` is the number of epoch advances a cached entry survives: an
    entry computed at epoch ``e`` is served while
    ``current_epoch - e <= budget``.  The provider folds this into a single
    integer freshness floor, so policy dispatch costs nothing per access.
    """

    name: str
    budget: int

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError(f"drift budget must be >= 0, got {self.budget}")


class ExactPolicy(CachePolicy):
    """Serve cached routes only for the epoch they were computed under."""

    def __init__(self) -> None:
        super().__init__(name="exact", budget=0)


class ApproxPolicy(CachePolicy):
    """Serve cached routes while topology drift stays inside the budget."""

    def __init__(self, drift_budget: int = 8) -> None:
        super().__init__(name="approx", budget=drift_budget)


def make_cache_policy(name: str, drift_budget: int = 8) -> CachePolicy:
    """Build a cache policy from its ``--route-cache`` selector name."""
    if name == "exact":
        return ExactPolicy()
    if name == "approx":
        return ApproxPolicy(drift_budget)
    raise ValueError(
        f"unknown route-cache policy {name!r}"
        f" (expected one of {ROUTE_CACHE_POLICIES})"
    )


class RouteProvider:
    """Routes over a *dynamic* topology, computed on the scope subgraph.

    The provider owns everything :class:`repro.mobility.MobilePathOracle`
    used to fold into its draw path: the participant-scope tracking, the
    per-(source, destination) route cache with its epoch stamps, the
    cache-policy freshness check, and the never-cache rules for
    position-dependent routes (churned-out sources, emergency power boosts).
    The oracle keeps only the draw planning and the topology clock.

    ``sync()`` must be called after any ``topology.step()`` the caller
    issues (the oracle does); it refreshes the integer freshness floor so
    the per-access staleness check is a single comparison.
    """

    __slots__ = (
        "topology",
        "max_paths",
        "max_hops",
        "policy",
        "_cache",
        "_min_epoch",
        "_revalidate",
        "_scope_obj",
        "_scope_snapshot",
        "_scope",
        "cache_hits",
        "cache_misses",
        "stale_hits",
        "revalidations",
        "search_s",
        "route_computes",
        "empty_serves",
        "drift_age_counts",
    )

    def __init__(
        self,
        topology,
        max_paths: int,
        max_hops: int,
        policy: CachePolicy | None = None,
    ):
        self.topology = topology
        self.max_paths = max_paths
        self.max_hops = max_hops
        self.policy = policy if policy is not None else ExactPolicy()
        # (source, destination) -> (paths, epoch the routes were computed at)
        self._cache: dict[tuple[int, int], tuple[list[tuple[int, ...]], int]] = {}
        self._min_epoch = topology.epoch - self.policy.budget
        # lazy revalidation is the approx policy's second lever: an entry
        # *past* the budget gets a cheap edge-existence check against the
        # current graph and is re-stamped if its routes all survived, paying
        # a full route search only when the topology really broke them.  A
        # zero budget disables it, which is what makes approx(0) === exact.
        self._revalidate = self.policy.budget > 0
        self._scope_obj: Sequence[int] | None = None  # identity of last seen
        self._scope_snapshot: list[int] = []  # its contents at that time
        self._scope: frozenset[int] = frozenset()
        self.cache_hits = 0
        self.cache_misses = 0
        #: hits served from an entry older than the current epoch — the
        #: approximation actually biting (always 0 under the exact policy)
        self.stale_hits = 0
        #: entries past the budget that survived the cheap edge-existence
        #: recheck and were re-stamped instead of recomputed
        self.revalidations = 0
        #: cumulative wall seconds spent in topology route search — the
        #: "route search" row of the per-layer profile breakdown
        self.search_s = 0.0
        #: full route searches actually run (a miss can be served without
        #: one only in the unreachable-pair degenerate case, so this tracks
        #: cache_misses; kept separate so the reconciliation is explicit)
        self.route_computes = 0
        #: serves that returned no route at all — each one is a rejected
        #: destination in the planner's rejection-sampling loop
        self.empty_serves = 0
        #: epoch-age distribution of stale serves and revalidations,
        #: ``{age: occurrences}`` — how hard the drift budget is working
        self.drift_age_counts: dict[int, int] = {}

    @property
    def scope(self) -> frozenset[int]:
        """The participant set routes are currently restricted to."""
        return self._scope

    def sync(self) -> None:
        """Refresh the freshness floor after the topology may have stepped."""
        self._min_epoch = self.topology.epoch - self.policy.budget

    def set_policy(
        self, policy: CachePolicy, *, revalidate: bool | None = None
    ) -> CachePolicy:
        """Swap the cache policy in place; returns the previous one.

        Re-derives the freshness floor and the lazy-revalidation flag
        (overridable via ``revalidate``), so the swap takes effect on the
        very next ``routes()`` call.  The route cache itself is kept:
        entries outside the new policy's budget simply stop being served
        as-is — with ``revalidate`` they instead get the cheap
        edge-existence recheck and are re-stamped when their routes
        survived.  ``budget=0`` plus ``revalidate=True`` is how the fused
        engine shares route tables across a generation's tournament stack:
        every served route is verified to exist on the *current* graph, and
        only pairs whose cached routes all broke pay a full search.  The
        caller restores the previous policy afterwards, so the swap is
        scoped to one ``run_generation`` call.
        """
        previous = self.policy
        self.policy = policy
        self._revalidate = policy.budget > 0 if revalidate is None else revalidate
        self.sync()
        return previous

    def rescope(self, participants: Sequence[int]) -> None:
        """Track the participant set routes are restricted to.

        The identity check makes the common case cheap: engines pass the
        same sequence object for every draw of a tournament.  Identity alone
        is not trusted — a caller that mutates the same list in place (node
        churn between rounds) would otherwise keep being served stale routes
        for departed nodes — so it is backed by an exact elementwise
        comparison against a snapshot of the last-seen contents (a C-level
        list compare, O(n) and collision-proof, unlike a hash or sum
        fingerprint).
        """
        if participants is self._scope_obj:
            # allocation-free fast path: engines pass the same list object
            # every draw, so a C-level elementwise compare settles it
            if isinstance(participants, list):
                if self._scope_snapshot == participants:
                    return
            elif self._scope_snapshot == list(participants):
                return
        self._scope_obj = participants
        self._scope_snapshot = list(participants)
        scope = frozenset(self._scope_snapshot)
        if scope != self._scope:
            self._scope = scope
            self._cache.clear()

    def routes(self, source: int, destination: int) -> list[tuple[int, ...]]:
        """Candidate routes for the pair, served per the cache policy."""
        topology = self.topology
        if not topology.is_active(source):
            # a churned-out source routes over position-dependent virtual
            # edges that can drift without an epoch change: never cache
            self.cache_misses += 1
            paths = self._compute(source, destination)
            if not paths:
                self.empty_serves += 1
            return paths
        key = (source, destination)
        epoch = topology.epoch
        entry = self._cache.get(key)
        if entry is not None:
            if entry[1] >= self._min_epoch:
                self.cache_hits += 1
                if entry[1] < epoch:
                    self.stale_hits += 1
                    age = epoch - entry[1]
                    ages = self.drift_age_counts
                    ages[age] = ages.get(age, 0) + 1
                if not entry[0]:
                    self.empty_serves += 1
                return entry[0]
            if self._revalidate and entry[0]:
                survivors = self._surviving(source, destination, entry[0])
                if survivors:
                    # the surviving routes exist on the *current* graph: the
                    # entry is current-consistent again, merely under-offering
                    # alternatives that appeared (or broke) since — the
                    # tolerated approximation.  Re-stamped, so it serves
                    # another budget's worth of draws before the next check.
                    self._cache[key] = (survivors, epoch)
                    self.cache_hits += 1
                    self.revalidations += 1
                    age = epoch - entry[1]
                    ages = self.drift_age_counts
                    ages[age] = ages.get(age, 0) + 1
                    return survivors
        self.cache_misses += 1
        boosts_before = topology.boost_count
        paths = self._compute(source, destination)
        if topology.boost_count == boosts_before:
            # boosted routes ride on a position-dependent nearest-peer link
            # that can drift without an epoch change: only cache unboosted
            self._cache[key] = (paths, epoch)
        if not paths:
            self.empty_serves += 1
        return paths

    def _surviving(
        self,
        source: int,
        destination: int,
        paths: list[tuple[int, ...]],
    ) -> list[tuple[int, ...]]:
        """The cached routes that still exist edge-for-edge, order kept.

        Pure adjacency lookups on the live graph (~100 ns per edge), no
        search.  Edges only ever join active nodes, so churned-out
        intermediates and destinations fail the check automatically.  Empty
        entries are never revalidated (the caller guards): "no route" must
        be recomputed once stale, or a transiently-partitioned pair would
        stay unroutable forever.
        """
        graph = self.topology.graph
        # the raw dict-of-dicts: ``in`` on nx's AtlasView is a Python-level
        # Mapping call, ~5x the plain dict lookup this hot check needs
        adj = getattr(graph, "_adj", None) or graph.adj
        survivors = []
        for path in paths:
            prev = source
            for node in path:
                if node not in adj[prev]:
                    break
                prev = node
            else:
                if destination in adj[prev]:
                    survivors.append(path)
        if len(survivors) == len(paths):
            return paths  # keep the original object (vector-sampler dedup)
        return survivors

    def _compute(self, source: int, destination: int) -> list[tuple[int, ...]]:
        start = perf_counter()
        paths = self.topology.candidate_paths(
            source, destination, self.max_paths, self.max_hops, self._scope
        )
        self.search_s += perf_counter() - start
        self.route_computes += 1
        return paths

    @property
    def cache_info(self) -> tuple[int, int]:
        """(hits, misses) of the per-pair route cache."""
        return self.cache_hits, self.cache_misses


class StaticRouteProvider:
    """Routes over a *static* topology: full-graph routes filtered to scope.

    Unlike :class:`RouteProvider` this does not search the scope-induced
    subgraph — the historical (and pinned-bit-identical) semantics of the
    static oracle are "routes exist on the full graph; a route is usable if
    every intermediate is a participant".  The base per-pair routes are
    cached once per epoch (a static topology's epoch moves only via
    ``invalidate_routes``); on top sits a scope-filtered table keyed by the
    current participant set, shared by the sequential and batched draw
    paths.  ``cache=False`` disables both layers, for benchmarking the raw
    recomputation cost.
    """

    __slots__ = (
        "topology",
        "max_paths",
        "max_hops",
        "caching",
        "_base",
        "_base_epoch",
        "_scope",
        "_scoped",
        "cache_hits",
        "cache_misses",
        "search_s",
        "route_computes",
        "empty_serves",
    )

    def __init__(
        self,
        topology,
        max_paths: int,
        max_hops: int,
        cache: bool = True,
    ):
        self.topology = topology
        self.max_paths = max_paths
        self.max_hops = max_hops
        self.caching = cache
        self._base: dict[tuple[int, int], list[tuple[int, ...]]] = {}
        self._base_epoch = getattr(topology, "epoch", 0)
        self._scope: frozenset[int] | None = None
        self._scoped: dict[tuple[int, int], list[tuple[int, ...]]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.search_s = 0.0
        self.route_computes = 0
        self.empty_serves = 0

    @property
    def scope(self) -> frozenset[int] | None:
        """The participant set the scoped table is filtered against."""
        return self._scope

    def sync(self) -> None:
        """Drop everything if the topology was explicitly invalidated."""
        epoch = getattr(self.topology, "epoch", 0)
        if epoch != self._base_epoch:
            self._base_epoch = epoch
            self._base.clear()
            self._scoped.clear()

    def rescope(self, participants: Sequence[int]) -> None:
        scope = frozenset(participants)
        if scope != self._scope:
            self._scope = scope
            self._scoped.clear()

    def base_routes(self, source: int, destination: int) -> list[tuple[int, ...]]:
        """Full-graph routes for the pair (no scope filter)."""
        if not self.caching:
            self.cache_misses += 1
            return self._compute(source, destination)
        key = (source, destination)
        paths = self._base.get(key)
        if paths is None:
            self.cache_misses += 1
            paths = self._compute(source, destination)
            self._base[key] = paths
        else:
            self.cache_hits += 1
        return paths

    def routes(self, source: int, destination: int) -> list[tuple[int, ...]]:
        """Scope-filtered routes for the pair (requires a prior rescope)."""
        active = self._scope
        if not self.caching:
            base = self.base_routes(source, destination)
            paths = [p for p in base if all(node in active for node in p)]
            if not paths:
                self.empty_serves += 1
            return paths
        key = (source, destination)
        paths = self._scoped.get(key)
        if paths is None:
            base = self.base_routes(source, destination)
            paths = [p for p in base if all(node in active for node in p)]
            self._scoped[key] = paths
        else:
            # keep cache_info meaningful for scoped-table hits too
            self.cache_hits += 1
        if not paths:
            self.empty_serves += 1
        return paths

    def _compute(self, source: int, destination: int) -> list[tuple[int, ...]]:
        start = perf_counter()
        paths = self.topology.candidate_paths(
            source, destination, self.max_paths, self.max_hops
        )
        self.search_s += perf_counter() - start
        self.route_computes += 1
        return paths

    @property
    def cache_info(self) -> tuple[int, int]:
        """(hits, misses) across the base and scoped route tables."""
        return self.cache_hits, self.cache_misses

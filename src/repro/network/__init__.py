"""Geometric-topology extension (low-mobility networks).

The paper chooses intermediates uniformly at random, explicitly to simulate
"a network with a high mobility level, in which topology changes very fast"
(§4.1).  This package provides the complementary regime: nodes placed in the
unit square with a fixed radio range, candidate routes extracted from the
resulting unit-disk graph via networkx shortest simple paths.  Plugging the
:class:`TopologyPathOracle` into either engine turns the paper's abstract
game into a static-topology simulation — an extension ablated in
``benchmarks/bench_topology_extension.py``.
"""

from repro.network.topology import GeometricTopology, TopologyPathOracle

__all__ = ["GeometricTopology", "TopologyPathOracle"]

"""Geometric-topology extension (low-mobility networks).

The paper chooses intermediates uniformly at random, explicitly to simulate
"a network with a high mobility level, in which topology changes very fast"
(§4.1).  This package provides the complementary regime: nodes placed in the
unit square with a fixed radio range, candidate routes extracted from the
resulting unit-disk graph as the first ``max_paths`` shortest simple paths.

Route search runs on :class:`repro.network.ksp.PathSearch`, a native
K-shortest-paths engine over int adjacency arrays whose output (path sets
*and* order) is pinned identical to ``networkx.shortest_simple_paths`` by
``tests/test_ksp.py`` — networkx stays as the reference implementation, out
of the hot loop.  Plugging the :class:`TopologyPathOracle` into any engine
turns the paper's abstract game into a static-topology simulation — an
extension ablated in ``benchmarks/bench_topology_extension.py``.

:mod:`repro.network.provider` is the route-provider layer shared with the
mobility subsystem: per-pair route caches over any epoch-versioned topology
provider, with pluggable ``exact``/``approx`` cache policies.
"""

from repro.network.ksp import PathSearch
from repro.network.provider import (
    ROUTE_CACHE_POLICIES,
    ApproxPolicy,
    CachePolicy,
    ExactPolicy,
    RouteProvider,
    StaticRouteProvider,
    TopologyProvider,
    make_cache_policy,
)
from repro.network.topology import GeometricTopology, TopologyPathOracle

__all__ = [
    "GeometricTopology",
    "PathSearch",
    "TopologyPathOracle",
    "TopologyProvider",
    "RouteProvider",
    "StaticRouteProvider",
    "CachePolicy",
    "ExactPolicy",
    "ApproxPolicy",
    "make_cache_policy",
    "ROUTE_CACHE_POLICIES",
]

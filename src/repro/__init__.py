"""repro — reproduction of *Evolution of Strategy Driven Behavior in Ad Hoc
Networks Using a Genetic Algorithm* (Seredynski, Bouvry, Klopotek; IPPS 2007).

The package implements, from scratch:

* the trust/activity reputation substrate (§3),
* the Ad Hoc Network Game and tournament model (§4),
* the genetic algorithm evolving 13-bit forwarding strategies (§5),
* the full experiment harness reproducing every figure and table of §6,
* the IPDRP baseline the model derives from (ref [12]),
* a geometric-topology extension for low-mobility networks,
* a mobility subsystem (random waypoint, Gauss-Markov, node churn) running
  the game on time-varying topologies through a caching path oracle.

Quickstart
----------
>>> from repro import ExperimentConfig, run_experiment
>>> config = ExperimentConfig.for_case("case1", scale="smoke")
>>> result = run_experiment(config, processes=1)
>>> 0.0 <= result.final_cooperation()[0] <= 1.0
True

See ``examples/`` for richer scenarios and ``python -m repro list`` for the
reproduction CLI.
"""

from repro._version import __version__
from repro.config.parameters import GAConfig, SimulationConfig
from repro.core.activity import Activity
from repro.core.node import (
    AlwaysDropPlayer,
    AlwaysForwardPlayer,
    ConstantlySelfishPlayer,
    NormalPlayer,
    Player,
    RandomPlayer,
    ThresholdPlayer,
)
from repro.core.payoff import PayoffConfig
from repro.core.strategy import Strategy
from repro.experiments.cases import CASES, EvaluationCase, get_case
from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import ReplicationResult, run_replication
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import run_experiment
from repro.game.stats import TournamentStats
from repro.ga.evolution import GeneticAlgorithm
from repro.mobility import (
    DynamicTopology,
    GaussMarkov,
    MobilePathOracle,
    MobilityConfig,
    NodeChurn,
    RandomWaypoint,
)
from repro.network.provider import (
    ROUTE_CACHE_POLICIES,
    ApproxPolicy,
    CachePolicy,
    ExactPolicy,
    RouteProvider,
    StaticRouteProvider,
    make_cache_policy,
)
from repro.paths.distributions import LONGER_PATHS, SHORTER_PATHS
from repro.paths.oracle import GameSetup, RandomPathOracle, ScriptedPathOracle
from repro.reputation.activity import ActivityClassifier
from repro.reputation.records import ReputationTable
from repro.reputation.trust import TrustTable
from repro.sim import FastEngine, ReferenceEngine, make_engine
from repro.tournament.environment import TournamentEnvironment
from repro.tournament.evaluation import evaluate_generation

__all__ = [
    "__version__",
    # core model
    "Strategy",
    "Activity",
    "PayoffConfig",
    "Player",
    "NormalPlayer",
    "ConstantlySelfishPlayer",
    "AlwaysForwardPlayer",
    "AlwaysDropPlayer",
    "RandomPlayer",
    "ThresholdPlayer",
    # reputation
    "ReputationTable",
    "TrustTable",
    "ActivityClassifier",
    # paths
    "SHORTER_PATHS",
    "LONGER_PATHS",
    "GameSetup",
    "RandomPathOracle",
    "ScriptedPathOracle",
    # mobility
    "MobilityConfig",
    "RandomWaypoint",
    "GaussMarkov",
    "NodeChurn",
    "DynamicTopology",
    "MobilePathOracle",
    # route providers (cache policies)
    "RouteProvider",
    "StaticRouteProvider",
    "CachePolicy",
    "ExactPolicy",
    "ApproxPolicy",
    "make_cache_policy",
    "ROUTE_CACHE_POLICIES",
    # simulation
    "ReferenceEngine",
    "FastEngine",
    "make_engine",
    "TournamentEnvironment",
    "evaluate_generation",
    "TournamentStats",
    # GA
    "GeneticAlgorithm",
    "GAConfig",
    "SimulationConfig",
    # experiments
    "EvaluationCase",
    "CASES",
    "get_case",
    "ExperimentConfig",
    "run_replication",
    "ReplicationResult",
    "run_experiment",
    "ExperimentResult",
]

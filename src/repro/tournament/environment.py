"""Tournament environments (§4.4, Table 1).

A *tournament environment* fixes the mix of player types in a tournament of
``tournament_size`` participants: ``n_selfish`` constantly selfish nodes plus
``n_normal = tournament_size - n_selfish`` normal (evolving) nodes.  The four
paper environments TE1–TE4 differ only in the CSN count (0/10/25/30 out
of 50); presets live in :mod:`repro.config.presets`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TournamentEnvironment"]


@dataclass(frozen=True)
class TournamentEnvironment:
    """One tournament environment (TE)."""

    name: str
    tournament_size: int
    n_selfish: int

    def __post_init__(self) -> None:
        if self.tournament_size < 3:
            raise ValueError(
                f"tournament needs >= 3 participants, got {self.tournament_size}"
            )
        if not 0 <= self.n_selfish < self.tournament_size:
            raise ValueError(
                f"n_selfish must be in [0, {self.tournament_size}),"
                f" got {self.n_selfish}"
            )

    @property
    def n_normal(self) -> int:
        """``P_i = T - S_i`` (Fig. 3): normal seats per tournament."""
        return self.tournament_size - self.n_selfish

    @property
    def selfish_fraction(self) -> float:
        """Fraction of tournament seats held by CSN."""
        return self.n_selfish / self.tournament_size

    def __str__(self) -> str:
        return (
            f"{self.name}(T={self.tournament_size}, CSN={self.n_selfish},"
            f" NN={self.n_normal})"
        )

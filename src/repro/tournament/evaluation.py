"""Multi-environment strategy evaluation (§4.4, Fig. 3).

One *generation* of evaluation runs the population through a series of
tournament environments: reputation memory is cleared once up front, then for
each environment the seating scheduler repeatedly draws ``P_i`` normal
players (until everyone played ``L`` times) who sit together with that
environment's ``S_i`` constantly selfish nodes; each seating is a full
``R``-round tournament.  Payoffs accumulate across every tournament a player
sat in; fitness is Eq. (1) over those totals.

The function is engine-agnostic: any object satisfying
:class:`SimulationEngine` works (the reference engine over ``Player``
objects, the flat-array fast engine, or the struct-of-arrays batch engine).
All randomness — seating draws, participant shuffles, oracle draws — is
consumed in an engine-independent order, which is what makes the engines
bit-identical under a shared seed.  The one exception is an engine that
advertises ``supports_generation_fusion`` (the fused engine): it receives
all of an environment's seatings at once, so the seating/shuffle draws are
batched ahead of the oracle draws — a stream reordering covered by that
engine's statistical contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.game.stats import TournamentStats
from repro.paths.oracle import PathOracle
from repro.reputation.exchange import ExchangeConfig
from repro.telemetry.runtime import get_telemetry
from repro.tournament.environment import TournamentEnvironment
from repro.tournament.scheduler import iter_seatings

__all__ = ["SimulationEngine", "EvaluationResult", "evaluate_generation"]


class SimulationEngine(Protocol):
    """What :func:`evaluate_generation` needs from a simulation engine."""

    @property
    def population_ids(self) -> Sequence[int]:
        """Ids of the normal (evolving) players."""
        ...

    def selfish_ids(self, n: int) -> list[int]:
        """Ids of the first ``n`` constantly selfish nodes."""
        ...

    def reset_generation(self) -> None:
        """Clear reputation memory and payoff accumulators (Step 1)."""
        ...

    def run_tournament(
        self,
        participants: Sequence[int],
        rounds: int,
        oracle: PathOracle,
        stats: TournamentStats,
        exchange: ExchangeConfig | None,
        rng: np.random.Generator | None,
    ) -> None:
        """Run one tournament among ``participants``, updating ``stats``."""
        ...

    def fitness(self) -> np.ndarray:
        """Eq. (1) fitness for every population member, aligned with ids."""
        ...


@dataclass
class EvaluationResult:
    """Outcome of evaluating one generation."""

    fitness: np.ndarray
    per_environment: dict[str, TournamentStats]
    overall: TournamentStats

    @property
    def cooperation_level(self) -> float:
        """Generation-wide cooperation level (the Fig. 4 series value)."""
        return self.overall.cooperation_level


def evaluate_generation(
    engine: SimulationEngine,
    environments: Sequence[TournamentEnvironment],
    rounds: int,
    plays_per_environment: int,
    oracle: PathOracle,
    rng: np.random.Generator,
    exchange: ExchangeConfig | None = None,
) -> EvaluationResult:
    """Evaluate the engine's current population across ``environments``."""
    if not environments:
        raise ValueError("need at least one tournament environment")
    engine.reset_generation()
    population = list(engine.population_ids)
    per_env: dict[str, TournamentStats] = {}
    overall = TournamentStats()
    # mobility-aware oracles advance the topology between tournaments when
    # clocked per-tournament; oracles without the hook are left alone
    on_tournament_end = getattr(oracle, "on_tournament_end", None)
    # telemetry seam: one enabled check per generation
    tel = get_telemetry()
    if not tel.enabled:
        tel = None
    gen_span = tel.span("generation") if tel is not None else None
    if gen_span is not None:
        gen_span.__enter__()

    # a fusing engine takes all of an environment's seatings at once (one
    # stacked plan, one slate kernel per round); the seating and shuffle
    # draws are then batched up front, a stream reordering of the same
    # distributions — part of the fused engine's statistical contract
    fused = getattr(engine, "supports_generation_fusion", False)

    for env in environments:
        if env.n_normal > len(population):
            raise ValueError(
                f"{env.name} needs {env.n_normal} normal players,"
                f" population has {len(population)}"
            )
        csn = engine.selfish_ids(env.n_selfish)
        env_stats = TournamentStats()
        if fused:
            seatings = []
            for seating in iter_seatings(
                population, env.n_normal, plays_per_environment, rng
            ):
                participants = seating + csn
                order = rng.permutation(len(participants))
                seatings.append([participants[int(i)] for i in order])
            # the engine owns the per-tournament clocking hook on this path
            # (it must fire between tournament *plans*, which the engine
            # interleaves); spans stay at generation granularity
            engine.run_generation(
                seatings, rounds, oracle, env_stats, exchange, rng
            )
        else:
            for seating in iter_seatings(
                population, env.n_normal, plays_per_environment, rng
            ):
                participants = seating + csn
                # Shuffle so CSN are interleaved in the per-round source
                # order rather than always acting last.
                order = rng.permutation(len(participants))
                participants = [participants[int(i)] for i in order]
                stats = TournamentStats()
                if tel is None:
                    engine.run_tournament(
                        participants, rounds, oracle, stats, exchange, rng
                    )
                else:
                    with tel.span("tournament"):
                        engine.run_tournament(
                            participants, rounds, oracle, stats, exchange, rng
                        )
                env_stats.merge(stats)
                if on_tournament_end is not None:
                    on_tournament_end()
        per_env[env.name] = env_stats
        overall.merge(env_stats)

    if gen_span is not None:
        gen_span.__exit__(None, None, None)
    if tel is not None:
        tel.count("evaluation.generations")
        # ground truth for the engine.games reconciliation: every game is
        # counted exactly once as NN- or CSN-originated by the stats layer
        tel.count(
            "evaluation.games", overall.nn_originated + overall.csn_originated
        )

    return EvaluationResult(
        fitness=engine.fitness(), per_environment=per_env, overall=overall
    )

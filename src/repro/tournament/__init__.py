"""Tournament machinery (§4.4): environments, seating, rounds, evaluation."""

from repro.tournament.environment import TournamentEnvironment
from repro.tournament.evaluation import EvaluationResult, evaluate_generation
from repro.tournament.runner import run_tournament
from repro.tournament.scheduler import iter_seatings

__all__ = [
    "TournamentEnvironment",
    "iter_seatings",
    "run_tournament",
    "evaluate_generation",
    "EvaluationResult",
]

"""Seating scheduler: which normal players sit in which tournament (§4.4).

The evaluation scheme repeatedly draws ``P_i`` normal players uniformly among
those that have played fewer than ``L`` times in the current environment,
until every player has played ``L`` times.  With the paper's N=100, P_i=50 and
the default L=1, each environment holds exactly two tournaments per
generation, partitioning the population.

If at some point fewer than ``P_i`` eligible players remain (possible when
``N * L`` is not a multiple of ``P_i``), the seating is topped up with
uniformly chosen already-complete players — the closest consistent extension
of the paper's under-specified loop, documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = ["iter_seatings"]


def iter_seatings(
    population_ids: Sequence[int],
    seats: int,
    plays_required: int,
    rng: np.random.Generator,
) -> Iterator[list[int]]:
    """Yield seatings (lists of player ids) until all played ``plays_required``.

    Each yielded list has exactly ``seats`` entries in random order.  Players
    never sit twice in the same tournament.
    """
    ids = list(population_ids)
    if seats > len(ids):
        raise ValueError(
            f"cannot seat {seats} players from a population of {len(ids)}"
        )
    if plays_required < 1:
        raise ValueError(f"plays_required must be >= 1, got {plays_required}")
    plays = {pid: 0 for pid in ids}
    while True:
        eligible = [pid for pid in ids if plays[pid] < plays_required]
        if not eligible:
            return
        if len(eligible) >= seats:
            idx = rng.choice(len(eligible), size=seats, replace=False)
            chosen = [eligible[int(i)] for i in idx]
        else:
            done = [pid for pid in ids if plays[pid] >= plays_required]
            idx = rng.choice(len(done), size=seats - len(eligible), replace=False)
            chosen = eligible + [done[int(i)] for i in idx]
        for pid in chosen:
            plays[pid] += 1
        yield chosen

"""Tournament runner over :class:`Player` objects (reference engine core).

Implements the tournament scheme of §4.4: ``R`` rounds; in every round each
participant originates exactly one packet (plays "its own game"), choosing
the best-rated of the candidate paths produced by the oracle; the game is
then played, payoffs are distributed, and reputation spreads via the
watchdog mechanism.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.node import Player
from repro.core.payoff import PayoffConfig
from repro.game.engine import play_game
from repro.game.stats import TournamentStats
from repro.paths.oracle import PathOracle
from repro.paths.rating import best_path_index
from repro.reputation.activity import ActivityClassifier
from repro.reputation.exchange import ExchangeConfig, exchange_reputation
from repro.reputation.trust import TrustTable

__all__ = ["run_tournament"]


def run_tournament(
    players: Mapping[int, Player],
    participants: Sequence[int],
    rounds: int,
    oracle: PathOracle,
    trust_table: TrustTable,
    activity: ActivityClassifier,
    payoffs: PayoffConfig,
    stats: TournamentStats | None = None,
    exchange: ExchangeConfig | None = None,
    rng: np.random.Generator | None = None,
) -> TournamentStats:
    """Run one tournament and return its statistics.

    ``participants`` fixes the source order within every round (Step 1/Step 7
    of the scheme iterate players in a fixed order).  ``rng`` is only needed
    when the second-hand ``exchange`` extension is enabled.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if stats is None:
        stats = TournamentStats()
    selfish = {pid for pid in participants if players[pid].is_selfish}
    do_exchange = exchange is not None and exchange.enabled
    if do_exchange and rng is None:
        raise ValueError("reputation exchange requires an rng")

    for round_no in range(rounds):
        for source_id in participants:
            setup = oracle.draw(source_id, participants)
            source = players[source_id]
            chosen = best_path_index(source.reputation, setup.paths)
            path = setup.paths[chosen]
            stats.record_path_choice(
                source_selfish=source.is_selfish,
                contains_csn=any(node in selfish for node in path),
            )
            play_game(
                players,
                setup,
                chosen,
                trust_table,
                activity,
                payoffs,
                stats=stats,
            )
        if do_exchange and (round_no + 1) % exchange.interval == 0:
            tables = {pid: players[pid].reputation for pid in participants}
            exchange_reputation(tables, participants, exchange, rng)
    return stats

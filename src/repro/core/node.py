"""Player (node) types of §4.3, plus baseline behaviours for benchmarks.

The paper uses two types: *normal nodes* (strategy-driven, evolved) and
*constantly selfish nodes* (CSN — always drop, never evolved).  We add a few
fixed baseline behaviours used by the ablation benches and examples:
always-forward (altruist), always-drop with a different label, a Bernoulli
random forwarder, and a trust-threshold forwarder.

A ``Player`` owns its reputation table and payoff accumulator; the *decision*
made about a packet is produced by :meth:`Player.decide_packet`, which returns
both the forward/discard choice and the trust level used (needed for the
intermediate payoff lookup).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.activity import Activity
from repro.core.fitness import PayoffAccumulator
from repro.core.strategy import Strategy
from repro.reputation.records import ReputationTable

if TYPE_CHECKING:  # annotation-only: keeps core importable before reputation
    from repro.reputation.activity import ActivityClassifier
    from repro.reputation.trust import TrustTable

__all__ = [
    "Decision",
    "Player",
    "NormalPlayer",
    "ConstantlySelfishPlayer",
    "AlwaysForwardPlayer",
    "AlwaysDropPlayer",
    "RandomPlayer",
    "ThresholdPlayer",
]


@dataclass(frozen=True)
class Decision:
    """Outcome of one forwarding decision.

    ``trust`` is the trust level the decider assigned to the source, or
    ``None`` when the source was unknown (the payoff table then applies its
    default trust level).  ``activity`` is ``None`` for unknown sources.
    """

    forward: bool
    trust: Optional[int]
    activity: Optional[Activity]
    source_known: bool


class Player:
    """Base class: identity, reputation memory, payoff accounting."""

    #: True for constantly selfish nodes (excluded from evolution; used by
    #: the statistics counters to attribute requests and rejections).
    is_selfish: bool = False

    def __init__(self, player_id: int):
        self.id = int(player_id)
        self.reputation = ReputationTable()
        self.payoffs = PayoffAccumulator()

    # -- behaviour ---------------------------------------------------------

    def decide_packet(
        self,
        source: int,
        trust_table: TrustTable,
        activity: ActivityClassifier,
    ) -> Decision:
        """Decide whether to forward a packet originated by ``source``.

        Default implementation resolves trust/activity from this player's own
        reputation table and delegates to :meth:`_decide`; unknown sources
        delegate to :meth:`_decide_unknown`.
        """
        if self.reputation.knows(source):
            rate = self.reputation.forwarding_rate(source)
            trust = trust_table.level(rate)
            act = activity.classify(self.reputation, source)
            return Decision(
                forward=self._decide(trust, act),
                trust=trust,
                activity=act,
                source_known=True,
            )
        return Decision(
            forward=self._decide_unknown(),
            trust=None,
            activity=None,
            source_known=False,
        )

    def _decide(self, trust: int, activity: Activity) -> bool:
        raise NotImplementedError

    def _decide_unknown(self) -> bool:
        raise NotImplementedError

    # -- lifecycle ---------------------------------------------------------

    def reset_memory(self) -> None:
        """Clear reputation data (evaluation Step 1, §4.4)."""
        self.reputation.clear()

    def reset_payoffs(self) -> None:
        """Clear payoff accounting (start of a generation)."""
        self.payoffs.reset()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.id})"


class NormalPlayer(Player):
    """A strategy-driven normal node (NN) whose strategy evolves (§4.3)."""

    def __init__(self, player_id: int, strategy: Strategy):
        super().__init__(player_id)
        self.strategy = strategy

    def _decide(self, trust: int, activity: Activity) -> bool:
        return self.strategy.decide(trust, activity)

    def _decide_unknown(self) -> bool:
        return self.strategy.decide_unknown()

    def __repr__(self) -> str:
        return f"NormalPlayer(id={self.id}, strategy='{self.strategy.to_string()}')"


class ConstantlySelfishPlayer(Player):
    """CSN: never cooperates — always drops (§4.3).

    CSN still originate packets (each player sources once per round, and the
    paper's Table 6 reports requests *from* CSN), but their payoffs are
    ignored and they are excluded from selection and reproduction.
    """

    is_selfish = True

    def _decide(self, trust: int, activity: Activity) -> bool:
        return False

    def _decide_unknown(self) -> bool:
        return False


class AlwaysForwardPlayer(Player):
    """Baseline altruist: forwards everything."""

    def _decide(self, trust: int, activity: Activity) -> bool:
        return True

    def _decide_unknown(self) -> bool:
        return True


class AlwaysDropPlayer(Player):
    """Baseline defector (like CSN but counted as a normal node)."""

    def _decide(self, trust: int, activity: Activity) -> bool:
        return False

    def _decide_unknown(self) -> bool:
        return False


class RandomPlayer(Player):
    """Baseline Bernoulli forwarder: forwards with probability ``p``.

    Owns a private generator so its draws never perturb the shared simulation
    stream (keeps engine-equivalence tests exact).
    """

    def __init__(self, player_id: int, p: float, rng: np.random.Generator):
        super().__init__(player_id)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.p = float(p)
        self._rng = rng

    def _decide(self, trust: int, activity: Activity) -> bool:
        return bool(self._rng.random() < self.p)

    def _decide_unknown(self) -> bool:
        return bool(self._rng.random() < self.p)


class ThresholdPlayer(Player):
    """Baseline reciprocator: forwards iff trust >= ``min_trust``.

    Unknown sources are forwarded iff ``forward_unknown`` — with the default
    ``True`` this resembles a generous tit-for-tat over the trust metric.
    """

    def __init__(
        self, player_id: int, min_trust: int = 2, forward_unknown: bool = True
    ):
        super().__init__(player_id)
        self.min_trust = int(min_trust)
        self.forward_unknown = bool(forward_unknown)

    def _decide(self, trust: int, activity: Activity) -> bool:
        return trust >= self.min_trust

    def _decide_unknown(self) -> bool:
        return self.forward_unknown

"""Per-player payoff accounting and the fitness function of Eq. (1).

    fitness = (tps + tpf + tpd) / ne

where ``tps``/``tpf``/``tpd`` are the total payoffs received for sending own
packets, forwarding, and discarding, and ``ne`` is the number of events (own
packets sent + packets forwarded + packets discarded).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PayoffAccumulator"]


@dataclass
class PayoffAccumulator:
    """Mutable accumulator for one player's payoffs within one generation."""

    send_payoff: float = 0.0
    forward_payoff: float = 0.0
    discard_payoff: float = 0.0
    n_sent: int = 0
    n_forwarded: int = 0
    n_discarded: int = 0

    def record_send(self, payoff: float) -> None:
        """Record the source-side payoff of one own game."""
        self.send_payoff += payoff
        self.n_sent += 1

    def record_forward(self, payoff: float) -> None:
        """Record the payoff of one forwarding decision."""
        self.forward_payoff += payoff
        self.n_forwarded += 1

    def record_discard(self, payoff: float) -> None:
        """Record the payoff of one discarding decision."""
        self.discard_payoff += payoff
        self.n_discarded += 1

    @property
    def total_payoff(self) -> float:
        """``tps + tpf + tpd`` of Eq. (1)."""
        return self.send_payoff + self.forward_payoff + self.discard_payoff

    @property
    def n_events(self) -> int:
        """``ne`` of Eq. (1)."""
        return self.n_sent + self.n_forwarded + self.n_discarded

    @property
    def fitness(self) -> float:
        """Average payoff per event; 0.0 for a player with no events."""
        if self.n_events == 0:
            return 0.0
        return self.total_payoff / self.n_events

    def reset(self) -> None:
        """Clear all counters (start of a new generation)."""
        self.send_payoff = 0.0
        self.forward_payoff = 0.0
        self.discard_payoff = 0.0
        self.n_sent = 0
        self.n_forwarded = 0
        self.n_discarded = 0

    def merge(self, other: "PayoffAccumulator") -> None:
        """Fold another accumulator into this one (multi-tournament totals)."""
        self.send_payoff += other.send_payoff
        self.forward_payoff += other.forward_payoff
        self.discard_payoff += other.discard_payoff
        self.n_sent += other.n_sent
        self.n_forwarded += other.n_forwarded
        self.n_discarded += other.n_discarded

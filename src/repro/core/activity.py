"""Activity levels of a source node (§3.2).

The paper defines three activity levels — low, medium, high — assigned by
comparing the source's forwarded-packet count against the observer's mean
over all known nodes.  The classification itself lives in
:mod:`repro.reputation.activity`; this module only defines the level enum so
the core strategy encoding does not depend on the reputation package.
"""

from __future__ import annotations

import enum

__all__ = ["Activity"]


class Activity(enum.IntEnum):
    """Source-node activity level.

    The integer values are the column offsets inside each trust-level block of
    the 13-bit strategy (Fig. 1c): ``LO`` is the first column, ``MI`` the
    second, ``HI`` the third.
    """

    LO = 0
    MI = 1
    HI = 2

    @property
    def label(self) -> str:
        """The paper's two-letter label (``LO`` / ``MI`` / ``HI``)."""
        return self.name

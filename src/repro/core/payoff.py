"""Payoff tables of §4.2 / Fig. 2a.

Two tables exist: one for the source node (payoff depends only on whether the
packet reached the destination) and one for intermediate nodes (payoff depends
on the decision taken and on the trust level assigned to the packet's source).

The intermediate table in the paper's PDF is garbled by text extraction; the
values used here are the monotone reconstruction documented in DESIGN.md §2.1:
forwarding pays more for more-trusted sources (an "investment of trust"),
discarding pays more for less-trusted sources (battery saved, no valuable
relationship lost).  Both rows use the multiset {0.5, 1, 2, 3} that appears in
the original figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.strategy import N_TRUST_LEVELS

__all__ = ["PayoffConfig"]


def _default_forward() -> tuple[float, ...]:
    # index = trust level 0..3
    return (0.5, 1.0, 2.0, 3.0)


def _default_discard() -> tuple[float, ...]:
    return (3.0, 2.0, 1.0, 0.5)


@dataclass(frozen=True)
class PayoffConfig:
    """All payoff parameters of the Ad Hoc Network Game.

    Attributes
    ----------
    source_success:
        Source payoff when its packet reaches the destination (paper: 5).
    source_failure:
        Source payoff when the packet is discarded en route (paper: 0).
    forward_by_trust:
        Intermediate payoff for *forwarding*, indexed by the trust level the
        intermediate assigns to the source (index 0..3).
    discard_by_trust:
        Intermediate payoff for *discarding*, same indexing.
    default_trust:
        Trust level used to pay a decision about an *unknown* source
        (paper §6.1: "unknown nodes have a default trust value assigned to 1").
    """

    source_success: float = 5.0
    source_failure: float = 0.0
    forward_by_trust: tuple[float, ...] = field(default_factory=_default_forward)
    discard_by_trust: tuple[float, ...] = field(default_factory=_default_discard)
    default_trust: int = 1

    def __post_init__(self) -> None:
        for name in ("forward_by_trust", "discard_by_trust"):
            row = tuple(float(v) for v in getattr(self, name))
            if len(row) != N_TRUST_LEVELS:
                raise ValueError(
                    f"{name} must have {N_TRUST_LEVELS} entries, got {len(row)}"
                )
            object.__setattr__(self, name, row)
        if not 0 <= self.default_trust < N_TRUST_LEVELS:
            raise ValueError(
                f"default_trust must be in 0..{N_TRUST_LEVELS - 1},"
                f" got {self.default_trust}"
            )

    # -- lookups -----------------------------------------------------------

    def source_payoff(self, success: bool) -> float:
        """Payoff for the source node given the transmission status."""
        return self.source_success if success else self.source_failure

    def intermediate_payoff(self, forwarded: bool, trust: int | None) -> float:
        """Payoff for an intermediate's decision.

        ``trust`` is the trust level the intermediate assigns to the source;
        ``None`` means the source is unknown and :attr:`default_trust` is used.
        """
        level = self.default_trust if trust is None else int(trust)
        if not 0 <= level < N_TRUST_LEVELS:
            raise ValueError(f"trust level must be in 0..3, got {level}")
        table = self.forward_by_trust if forwarded else self.discard_by_trust
        return table[level]

    @property
    def max_intermediate_payoff(self) -> float:
        """Largest payoff any intermediate decision can earn."""
        return max(*self.forward_by_trust, *self.discard_by_trust)

    @property
    def max_payoff(self) -> float:
        """Largest payoff any single event can earn (bounds fitness)."""
        return max(
            self.source_success, self.source_failure, self.max_intermediate_payoff
        )

    @classmethod
    def without_reputation(cls) -> "PayoffConfig":
        """Payoffs for a network *without* a reputation enforcement system.

        §4.2: "If such system was not used, the payoff for selfish behavior
        (discarding packets) would always be higher than for forwarding" —
        modelled as a flat discard payoff above a flat forward payoff.  Used
        by the `bench_ablation_reputation` experiment.
        """
        return cls(
            forward_by_trust=(0.5, 0.5, 0.5, 0.5),
            discard_by_trust=(3.0, 3.0, 3.0, 3.0),
        )

"""Core domain model: strategies, players, payoffs, fitness.

This package implements §3.3 (strategy coding), §4.2 (payoffs and fitness)
and §4.3 (node types) of the paper.
"""

from repro.core.activity import Activity
from repro.core.fitness import PayoffAccumulator
from repro.core.node import (
    AlwaysDropPlayer,
    AlwaysForwardPlayer,
    ConstantlySelfishPlayer,
    NormalPlayer,
    Player,
    RandomPlayer,
    ThresholdPlayer,
)
from repro.core.payoff import PayoffConfig
from repro.core.strategy import (
    N_ACTIVITY_LEVELS,
    N_TRUST_LEVELS,
    STRATEGY_LENGTH,
    UNKNOWN_BIT,
    Strategy,
)

__all__ = [
    "Activity",
    "Strategy",
    "STRATEGY_LENGTH",
    "N_TRUST_LEVELS",
    "N_ACTIVITY_LEVELS",
    "UNKNOWN_BIT",
    "PayoffConfig",
    "PayoffAccumulator",
    "Player",
    "NormalPlayer",
    "ConstantlySelfishPlayer",
    "AlwaysForwardPlayer",
    "AlwaysDropPlayer",
    "RandomPlayer",
    "ThresholdPlayer",
]

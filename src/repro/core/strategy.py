"""The 13-bit forwarding strategy of §3.3 / Fig. 1c.

A strategy decides whether an intermediate node forwards or discards a packet
based on two properties of the packet's *source*: the trust level the deciding
node assigns to the source (0..3) and the source's activity level (LO/MI/HI).

Bit layout (bit index = ``trust * 3 + activity``)::

    bit:      0   1   2   3   4   5   6   7   8   9   10  11  12
    trust:    0   0   0   1   1   1   2   2   2   3   3   3   unknown
    activity: LO  MI  HI  LO  MI  HI  LO  MI  HI  LO  MI  HI  -

Bit value 1 means *forward* (the paper's ``F``), 0 means *discard* (``D``).
Bit 12 is the decision against an unknown source (no reputation data).

The paper's worked example (Fig. 1c) — strategy ``DDD FFF DDD FDD F`` with
trust level 3 and activity LO — maps to bit 9, value ``F``; this exact case is
asserted in ``tests/test_paper_examples.py``.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.activity import Activity
from repro.utils.bitstring import (
    bits_from_int,
    bits_from_string,
    bits_to_int,
    bits_to_string,
    validate_bits,
)

__all__ = [
    "Strategy",
    "STRATEGY_LENGTH",
    "N_TRUST_LEVELS",
    "N_ACTIVITY_LEVELS",
    "UNKNOWN_BIT",
    "gene_index",
]

N_TRUST_LEVELS = 4
N_ACTIVITY_LEVELS = 3
#: Bit holding the decision against an unknown source node.
UNKNOWN_BIT = N_TRUST_LEVELS * N_ACTIVITY_LEVELS
STRATEGY_LENGTH = UNKNOWN_BIT + 1
#: Display grouping used by the paper: four trust blocks plus the unknown bit.
DISPLAY_GROUPS = (3, 3, 3, 3, 1)


def gene_index(trust: int, activity: Activity | int) -> int:
    """Return the strategy bit index for a (trust, activity) pair."""
    trust = int(trust)
    activity = int(activity)
    if not 0 <= trust < N_TRUST_LEVELS:
        raise ValueError(f"trust level must be in 0..{N_TRUST_LEVELS - 1}, got {trust}")
    if not 0 <= activity < N_ACTIVITY_LEVELS:
        raise ValueError(
            f"activity level must be in 0..{N_ACTIVITY_LEVELS - 1}, got {activity}"
        )
    return trust * N_ACTIVITY_LEVELS + activity


class Strategy:
    """Immutable 13-bit forwarding strategy.

    Instances are hashable and comparable, so they can be counted directly
    (used by the Table 7–9 strategy censuses).
    """

    __slots__ = ("_bits",)

    def __init__(self, bits: Sequence[int]):
        self._bits = validate_bits(bits, STRATEGY_LENGTH)

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_string(cls, text: str) -> "Strategy":
        """Parse the paper's display form, e.g. ``"010 101 101 111 1"``."""
        return cls(bits_from_string(text, STRATEGY_LENGTH))

    @classmethod
    def from_int(cls, value: int) -> "Strategy":
        """Unpack from the compact integer form (bit 0 = lowest bit)."""
        return cls(bits_from_int(value, STRATEGY_LENGTH))

    @classmethod
    def random(cls, rng: np.random.Generator) -> "Strategy":
        """A uniformly random strategy (initial GA population, §5)."""
        return cls(tuple(int(b) for b in rng.integers(0, 2, size=STRATEGY_LENGTH)))

    @classmethod
    def all_forward(cls) -> "Strategy":
        """The fully cooperative strategy (forwards in every situation)."""
        return cls((1,) * STRATEGY_LENGTH)

    @classmethod
    def all_drop(cls) -> "Strategy":
        """The fully selfish strategy (discards in every situation)."""
        return cls((0,) * STRATEGY_LENGTH)

    # -- decisions ---------------------------------------------------------

    def decide(self, trust: int, activity: Activity | int) -> bool:
        """Forward (``True``) or discard (``False``) for a known source."""
        return bool(self._bits[gene_index(trust, activity)])

    def decide_unknown(self) -> bool:
        """Decision against a source with no reputation data (bit 12)."""
        return bool(self._bits[UNKNOWN_BIT])

    # -- views -------------------------------------------------------------

    @property
    def bits(self) -> tuple[int, ...]:
        """The 13 bits, bit 0 first."""
        return self._bits

    def sub_strategy(self, trust: int) -> str:
        """The 3-bit block for one trust level, e.g. ``"111"``.

        Tables 8 and 9 of the paper analyse these blocks ("sub-strategies");
        the block's bits are ordered LO, MI, HI.
        """
        if not 0 <= trust < N_TRUST_LEVELS:
            raise ValueError(f"trust level must be in 0..3, got {trust}")
        start = trust * N_ACTIVITY_LEVELS
        return "".join(str(b) for b in self._bits[start : start + N_ACTIVITY_LEVELS])

    def forwarding_fraction(self) -> float:
        """Fraction of the 13 situations in which this strategy forwards."""
        return sum(self._bits) / STRATEGY_LENGTH

    def to_int(self) -> int:
        """Pack into an integer (inverse of :meth:`from_int`)."""
        return bits_to_int(self._bits)

    def to_string(self, grouped: bool = True) -> str:
        """Render as the paper's display form (grouped) or raw 13 chars."""
        return bits_to_string(self._bits, DISPLAY_GROUPS if grouped else 0)

    def as_array(self) -> np.ndarray:
        """The bits as a ``uint8`` numpy array (used by the fast engine)."""
        return np.array(self._bits, dtype=np.uint8)

    # -- dunder ------------------------------------------------------------

    def __iter__(self) -> Iterator[int]:
        return iter(self._bits)

    def __len__(self) -> int:
        return STRATEGY_LENGTH

    def __getitem__(self, index: int) -> int:
        return self._bits[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Strategy):
            return NotImplemented
        return self._bits == other._bits

    def __hash__(self) -> int:
        return hash(self._bits)

    def __repr__(self) -> str:
        return f"Strategy('{self.to_string()}')"

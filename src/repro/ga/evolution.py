"""The generational GA step of §5.

Per generation: fitness of each player's strategy is its average payoff over
all tournaments (Eq. 1, computed by the evaluation); then N pairs of parents
are selected, one-point crossover is applied with probability ``p_c``, one of
the two children is kept at random, and uniform bit-flip mutation with
probability ``p_m`` per bit finishes the offspring.  Constantly selfish nodes
never enter selection or reproduction.

This class is genome-agnostic: it maps bit tuples to bit tuples.  The ad hoc
experiment wraps it over 13-bit strategies; the IPDRP baseline over 5-bit
strategies.
"""

from __future__ import annotations

from time import perf_counter
from typing import Sequence

import numpy as np

from repro.config.parameters import GAConfig
from repro.ga.operators import mutate, one_point_crossover
from repro.ga.selection import select_index
from repro.ga.vector import initial_population_matrix, next_generation_matrix
from repro.telemetry.runtime import get_telemetry

__all__ = ["GeneticAlgorithm"]

Bits = tuple[int, ...]


class GeneticAlgorithm:
    """Stateless generational step; all state lives in (population, fitness)."""

    def __init__(self, config: GAConfig):
        self.config = config

    def initial_population(
        self, genome_length: int, rng: np.random.Generator
    ) -> list[Bits]:
        """Uniformly random initial strategies (§5).

        Drawn as one matrix: ``integers(0, 2, size=(P, L))`` fills row by
        row in C order, so this is bit-identical to the per-row loop it
        replaced and pinned trajectories are unchanged.
        """
        bits = initial_population_matrix(
            self.config.population_size, genome_length, rng
        )
        return [tuple(int(b) for b in row) for row in bits]

    def next_generation(
        self,
        population: Sequence[Bits],
        fitness: np.ndarray,
        rng: np.random.Generator,
    ) -> list[Bits]:
        """Produce the next population from the current one and its fitness."""
        cfg = self.config
        if len(population) != cfg.population_size:
            raise ValueError(
                f"population size {len(population)} != configured"
                f" {cfg.population_size}"
            )
        # GAConfig validates this bound, but a duck-typed config would
        # otherwise sail through: the elite extend below is not bounded by
        # the offspring loop, so an oversized elite set silently grows the
        # population
        if not 0 <= cfg.elitism <= cfg.population_size:
            raise ValueError(
                f"elitism ({cfg.elitism}) must be between 0 and the"
                f" population size ({cfg.population_size}); an oversized"
                " elite set would grow the population"
            )
        fitness = np.asarray(fitness, dtype=float)
        if len(fitness) != len(population):
            raise ValueError("fitness length must match population length")

        offspring: list[Bits] = []
        if cfg.elitism:
            # Highest-fitness strategies copied unchanged (ablation only;
            # the paper itself uses no elitism).
            elite_order = np.argsort(-fitness, kind="stable")[: cfg.elitism]
            offspring.extend(tuple(population[int(i)]) for i in elite_order)

        # telemetry seam: the instrumented loop consumes the rng in exactly
        # the same order as the plain one, so enabling telemetry cannot
        # perturb a pinned trajectory
        tel = get_telemetry()
        if not tel.enabled:
            while len(offspring) < cfg.population_size:
                i = select_index(cfg.selection, fitness, rng, cfg.tournament_size)
                j = select_index(cfg.selection, fitness, rng, cfg.tournament_size)
                parent_a, parent_b = population[i], population[j]
                if rng.random() < cfg.crossover_rate:
                    child_a, child_b = one_point_crossover(parent_a, parent_b, rng)
                else:
                    child_a, child_b = tuple(parent_a), tuple(parent_b)
                child = child_a if rng.random() < 0.5 else child_b
                offspring.append(mutate(child, cfg.mutation_rate, rng))
            return offspring

        sel_s = cx_s = mut_s = 0.0
        crossovers = 0
        while len(offspring) < cfg.population_size:
            t0 = perf_counter()
            i = select_index(cfg.selection, fitness, rng, cfg.tournament_size)
            j = select_index(cfg.selection, fitness, rng, cfg.tournament_size)
            t1 = perf_counter()
            parent_a, parent_b = population[i], population[j]
            if rng.random() < cfg.crossover_rate:
                child_a, child_b = one_point_crossover(parent_a, parent_b, rng)
                crossovers += 1
            else:
                child_a, child_b = tuple(parent_a), tuple(parent_b)
            t2 = perf_counter()
            child = child_a if rng.random() < 0.5 else child_b
            offspring.append(mutate(child, cfg.mutation_rate, rng))
            t3 = perf_counter()
            sel_s += t1 - t0
            cx_s += t2 - t1
            mut_s += t3 - t2
        tel.timer_add("ga.selection_s", sel_s)
        tel.timer_add("ga.crossover_s", cx_s)
        tel.timer_add("ga.mutation_s", mut_s)
        tel.count("ga.generations")
        tel.count("ga.crossovers", crossovers)
        tel.set_gauge("ga.diversity", len(set(offspring)) / len(offspring))
        return offspring

    def next_generation_vectorized(
        self,
        population: Sequence[Bits],
        fitness: np.ndarray,
        rng: np.random.Generator,
    ) -> list[Bits]:
        """The generation step as one matrix pass (fused-engine companion).

        Same operators and elitism rule as :meth:`next_generation`, but the
        generator is consumed phase-by-phase instead of child-by-child
        (see :func:`repro.ga.vector.next_generation_matrix`), so
        trajectories diverge from the scalar loop — the same statistical
        contract as the fused engine that pairs with it.
        """
        tel = get_telemetry()
        if not tel.enabled:
            out = next_generation_matrix(population, fitness, self.config, rng)
        else:
            t0 = perf_counter()
            out = next_generation_matrix(population, fitness, self.config, rng)
            tel.timer_add("ga.vector_step_s", perf_counter() - t0)
            tel.count("ga.generations")
            tel.set_gauge(
                "ga.diversity", len(np.unique(out, axis=0)) / len(out)
            )
        return [tuple(int(b) for b in row) for row in out]

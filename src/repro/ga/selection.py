"""Parent selection.

The paper uses tournament selection ("we apply similar evolutionary technique
as in IPDRP [12] except that we use a tournament selection instead of a
roulette one", §5); roulette-wheel selection is implemented as well for the
selection ablation bench and the IPDRP baseline.
"""

from __future__ import annotations

import numpy as np

__all__ = ["tournament_select_index", "roulette_select_index", "select_index"]


def tournament_select_index(
    fitness: np.ndarray, rng: np.random.Generator, size: int = 2
) -> int:
    """Pick ``size`` contenders uniformly with replacement; fittest wins.

    Ties go to the contender drawn first (stable, and unbiased because the
    draw order is itself uniform).
    """
    fitness = np.asarray(fitness, dtype=float)
    if fitness.ndim != 1 or len(fitness) == 0:
        raise ValueError("fitness must be a non-empty 1-D array")
    if size < 1:
        raise ValueError(f"tournament size must be >= 1, got {size}")
    contenders = rng.integers(0, len(fitness), size=size)
    best = int(contenders[0])
    for c in contenders[1:]:
        c = int(c)
        if fitness[c] > fitness[best]:
            best = c
    return best


def roulette_select_index(fitness: np.ndarray, rng: np.random.Generator) -> int:
    """Fitness-proportionate selection.

    Requires non-negative fitness (true here: every payoff in the game is
    non-negative, so Eq. (1) is non-negative).  A population with zero total
    fitness degenerates to a uniform pick.
    """
    fitness = np.asarray(fitness, dtype=float)
    if fitness.ndim != 1 or len(fitness) == 0:
        raise ValueError("fitness must be a non-empty 1-D array")
    if (fitness < 0).any():
        raise ValueError("roulette selection requires non-negative fitness")
    total = fitness.sum()
    if total <= 0.0:
        return int(rng.integers(0, len(fitness)))
    u = rng.random() * total
    return int(
        np.searchsorted(np.cumsum(fitness), u, side="right").clip(
            0, len(fitness) - 1
        )
    )


def select_index(
    method: str,
    fitness: np.ndarray,
    rng: np.random.Generator,
    tournament_size: int = 2,
) -> int:
    """Dispatch on the configured selection method name."""
    if method == "tournament":
        return tournament_select_index(fitness, rng, tournament_size)
    if method == "roulette":
        return roulette_select_index(fitness, rng)
    raise ValueError(f"unknown selection method {method!r}")

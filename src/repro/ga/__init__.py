"""Genetic algorithm (§5): selection, one-point crossover, bit-flip mutation.

Implemented from scratch on tuple-of-bits genomes; generic enough to drive
both the 13-bit ad hoc strategies and the 5-bit IPDRP baseline strategies.
"""

from repro.ga.evolution import GeneticAlgorithm
from repro.ga.history import GenerationRecord, History
from repro.ga.operators import mutate, one_point_crossover
from repro.ga.selection import (
    roulette_select_index,
    select_index,
    tournament_select_index,
)

__all__ = [
    "one_point_crossover",
    "mutate",
    "tournament_select_index",
    "roulette_select_index",
    "select_index",
    "GeneticAlgorithm",
    "History",
    "GenerationRecord",
]

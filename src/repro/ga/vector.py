"""Vectorized GA operators over the ``(population, genome)`` int8 matrix.

Companion to the scalar :mod:`repro.ga.operators` / :mod:`repro.ga.selection`
pair, built for the generation-fused evaluation path (``--engine fused``):
instead of one Python call per parent/child, every operator acts on the whole
strategy matrix in one numpy pass.

Two levels of contract, deliberately distinct:

* **Per-operator bit-identity.**  Each operator here consumes the shared
  generator through exactly the same method calls as its scalar twin run in
  a loop — numpy's ``Generator`` fills a batched request elementwise in C
  order, so ``rng.integers(0, 2, size=(P, L))`` equals ``P`` sequential
  ``rng.integers(0, 2, size=L)`` calls, and likewise for ``random`` and
  bounded-integer draws.  ``tests/test_ga_vector.py`` pins every operator
  bit-identical to the scalar path under a shared rng (hypothesis,
  derandomized).
* **Phase-ordered generation step.**  :func:`next_generation_matrix` runs
  selection for *all* offspring first, then the crossover gates, then the
  cuts, child picks and the mutation matrix — the scalar loop interleaves
  those draws per child, so the full step is *stream-divergent* (it draws
  the same distributions in a different order).  That is the same
  statistical relaxation the fused engine rides, gated by the equivalence
  tier in ``tests/test_engine_statistical.py``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "initial_population_matrix",
    "mutate_matrix",
    "one_point_crossover_matrix",
    "tournament_select_indices",
    "roulette_select_indices",
    "select_indices",
    "next_generation_matrix",
    "next_generation_tensor",
]


def initial_population_matrix(
    population_size: int, genome_length: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniformly random initial strategies as a ``(P, L)`` int8 matrix.

    Bit-identical to ``P`` sequential ``rng.integers(0, 2, size=L)`` rows.
    """
    if population_size < 1:
        raise ValueError(f"population size must be >= 1, got {population_size}")
    if genome_length < 1:
        raise ValueError(f"genome length must be >= 1, got {genome_length}")
    return rng.integers(
        0, 2, size=(population_size, genome_length), dtype=np.int64
    ).astype(np.int8)


def mutate_matrix(
    genomes: np.ndarray, rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Uniform bit-flip mutation over every row at once.

    Consumes exactly one uniform per bit (whether or not it flips), row by
    row in C order — bit-identical to :func:`repro.ga.operators.mutate`
    applied per row on the same generator.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"mutation rate must be in [0, 1], got {rate}")
    genomes = np.asarray(genomes, dtype=np.int8)
    draws = rng.random(genomes.shape)
    return np.where(draws < rate, 1 - genomes, genomes)


def one_point_crossover_matrix(
    a: np.ndarray, b: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """One-point crossover across ``N`` parent pairs in one pass.

    One cut per pair, uniform on ``1 .. L-1`` — bit-identical to
    :func:`repro.ga.operators.one_point_crossover` per pair (one bounded
    integer each, batched).  Returns both children per pair.
    """
    a = np.asarray(a, dtype=np.int8)
    b = np.asarray(b, dtype=np.int8)
    if a.shape != b.shape:
        raise ValueError(f"parent shape mismatch: {a.shape} vs {b.shape}")
    if a.ndim != 2 or a.shape[1] < 2:
        raise ValueError("crossover needs (N, L >= 2) parent matrices")
    n, length = a.shape
    cuts = rng.integers(1, length, size=n)
    keep_a = np.arange(length)[None, :] < cuts[:, None]
    return np.where(keep_a, a, b), np.where(keep_a, b, a)


def tournament_select_indices(
    fitness: np.ndarray, rng: np.random.Generator, n: int, size: int = 2
) -> np.ndarray:
    """``n`` tournament selections in one batch; fittest contender wins.

    ``argmax`` returns the first maximum, so ties go to the contender drawn
    first — the same stable rule as the scalar loop, and the contender
    block is bit-identical to ``n`` sequential ``integers(0, P, size=size)``
    calls.
    """
    fitness = np.asarray(fitness, dtype=float)
    if fitness.ndim != 1 or len(fitness) == 0:
        raise ValueError("fitness must be a non-empty 1-D array")
    if size < 1:
        raise ValueError(f"tournament size must be >= 1, got {size}")
    contenders = rng.integers(0, len(fitness), size=(n, size))
    winners = np.argmax(fitness[contenders], axis=1)
    return contenders[np.arange(n), winners]


def roulette_select_indices(
    fitness: np.ndarray, rng: np.random.Generator, n: int
) -> np.ndarray:
    """``n`` fitness-proportionate selections in one batch.

    The scalar loop recomputes the same total and cumulative sum per call
    (fitness is constant within a generation step), so one batched uniform
    block + searchsorted is bit-identical to ``n`` sequential calls.
    """
    fitness = np.asarray(fitness, dtype=float)
    if fitness.ndim != 1 or len(fitness) == 0:
        raise ValueError("fitness must be a non-empty 1-D array")
    if (fitness < 0).any():
        raise ValueError("roulette selection requires non-negative fitness")
    total = fitness.sum()
    if total <= 0.0:
        return rng.integers(0, len(fitness), size=n)
    us = rng.random(n) * total
    return np.searchsorted(np.cumsum(fitness), us, side="right").clip(
        0, len(fitness) - 1
    )


def select_indices(
    method: str,
    fitness: np.ndarray,
    rng: np.random.Generator,
    n: int,
    tournament_size: int = 2,
) -> np.ndarray:
    """Batched dispatch on the configured selection method name."""
    if method == "tournament":
        return tournament_select_indices(fitness, rng, n, tournament_size)
    if method == "roulette":
        return roulette_select_indices(fitness, rng, n)
    raise ValueError(f"unknown selection method {method!r}")


def next_generation_matrix(
    population: Sequence[Sequence[int]] | np.ndarray,
    fitness: np.ndarray,
    cfg,
    rng: np.random.Generator,
) -> np.ndarray:
    """One whole GA generation step on the strategy matrix (§5 semantics).

    Phase order (each phase one batched draw): parent selection for every
    offspring pair, crossover gates, cut points for the crossing pairs,
    child picks, then the mutation matrix.  Per-offspring semantics are
    identical to :meth:`repro.ga.evolution.GeneticAlgorithm.next_generation`
    — same operators, same elitism rule — but the generator is consumed
    phase-by-phase instead of child-by-child, so trajectories diverge from
    the scalar loop (statistical contract).
    """
    pop = np.asarray(population, dtype=np.int8)
    if pop.ndim != 2:
        raise ValueError("population must be a (P, L) bit matrix")
    if len(pop) != cfg.population_size:
        raise ValueError(
            f"population size {len(pop)} != configured {cfg.population_size}"
        )
    if not 0 <= cfg.elitism <= cfg.population_size:
        raise ValueError(
            f"elitism ({cfg.elitism}) must be between 0 and the population"
            f" size ({cfg.population_size}); an oversized elite set would"
            " grow the population"
        )
    fitness = np.asarray(fitness, dtype=float)
    if len(fitness) != len(pop):
        raise ValueError("fitness length must match population length")

    if cfg.elitism:
        elite_order = np.argsort(-fitness, kind="stable")[: cfg.elitism]
        elites = pop[elite_order]
    else:
        elites = pop[:0]
    n_off = cfg.population_size - len(elites)
    if n_off == 0:
        # the scalar loop never runs either: no rng consumed
        return elites.copy()

    idx = select_indices(
        cfg.selection, fitness, rng, 2 * n_off, cfg.tournament_size
    )
    parent_a = pop[idx[0::2]]
    parent_b = pop[idx[1::2]]
    cross = rng.random(n_off) < cfg.crossover_rate
    child_a = parent_a.copy()
    child_b = parent_b.copy()
    if cross.any():
        ca, cb = one_point_crossover_matrix(
            parent_a[cross], parent_b[cross], rng
        )
        child_a[cross] = ca
        child_b[cross] = cb
    pick_a = rng.random(n_off) < 0.5
    children = np.where(pick_a[:, None], child_a, child_b)
    children = mutate_matrix(children, cfg.mutation_rate, rng)
    return np.concatenate([elites, children]) if len(elites) else children


def next_generation_tensor(
    populations: np.ndarray,
    fitness: np.ndarray,
    cfg,
    rngs: Sequence[np.random.Generator],
) -> np.ndarray:
    """One GA generation step for ``R`` stacked replications at once.

    ``populations`` is an ``(R, P, L)`` strategy tensor, ``fitness`` the
    matching ``(R, P)`` matrix, and ``rngs`` one independent generator per
    replication.  Replication ``r`` consumes ``rngs[r]`` through *exactly*
    the draws of :func:`next_generation_matrix` — the phases run
    replication-major inside each phase, but a generator only ever sees its
    own replication's requests, so row ``r`` of the result is bit-identical
    to ``next_generation_matrix(populations[r], fitness[r], cfg, rngs[r])``
    (pinned by ``tests/test_ga_vector.py``).  The matrix arithmetic
    (parent gather, crossover compose, child pick, mutation apply) runs
    batched over the whole ``(R, n_off, L)`` stack, which is what the
    cross-replication stacked evaluation path buys over ``R`` separate
    matrix steps.
    """
    pops = np.asarray(populations, dtype=np.int8)
    if pops.ndim != 3:
        raise ValueError("populations must be an (R, P, L) bit tensor")
    n_rep, p, length = pops.shape
    if len(rngs) != n_rep:
        raise ValueError(
            f"need one rng per replication: {n_rep} populations, {len(rngs)} rngs"
        )
    if p != cfg.population_size:
        raise ValueError(
            f"population size {p} != configured {cfg.population_size}"
        )
    if not 0 <= cfg.elitism <= cfg.population_size:
        raise ValueError(
            f"elitism ({cfg.elitism}) must be between 0 and the population"
            f" size ({cfg.population_size}); an oversized elite set would"
            " grow the population"
        )
    fitness = np.asarray(fitness, dtype=float)
    if fitness.shape != (n_rep, p):
        raise ValueError(
            f"fitness shape {fitness.shape} != populations {(n_rep, p)}"
        )

    if cfg.elitism:
        elite_order = np.argsort(-fitness, axis=1, kind="stable")[:, : cfg.elitism]
        elites = np.take_along_axis(pops, elite_order[:, :, None], axis=1)
    else:
        elites = pops[:, :0]
    n_off = cfg.population_size - elites.shape[1]
    if n_off == 0:
        # the matrix step never draws either: no rng consumed
        return elites.copy()

    idx = np.stack(
        [
            select_indices(
                cfg.selection, fitness[r], rngs[r], 2 * n_off, cfg.tournament_size
            )
            for r in range(n_rep)
        ]
    )
    rep_ix = np.arange(n_rep)[:, None]
    parent_a = pops[rep_ix, idx[:, 0::2]]
    parent_b = pops[rep_ix, idx[:, 1::2]]
    cross = np.stack(
        [rngs[r].random(n_off) < cfg.crossover_rate for r in range(n_rep)]
    )
    child_a = parent_a.copy()
    child_b = parent_b.copy()
    # cut points are drawn only for replications with crossing pairs,
    # matching the matrix step's conditional one_point_crossover draw
    n_cross = cross.sum(axis=1)
    cuts = np.empty(int(n_cross.sum()), dtype=np.int64)
    done = 0
    for r in range(n_rep):
        k = int(n_cross[r])
        if k:
            cuts[done : done + k] = rngs[r].integers(1, length, size=k)
            done += k
    if done:
        keep_a = np.arange(length)[None, :] < cuts[:, None]
        fa = parent_a[cross]
        fb = parent_b[cross]
        child_a[cross] = np.where(keep_a, fa, fb)
        child_b[cross] = np.where(keep_a, fb, fa)
    pick_a = np.stack([rngs[r].random(n_off) < 0.5 for r in range(n_rep)])
    children = np.where(pick_a[:, :, None], child_a, child_b)
    draws = np.stack([rngs[r].random((n_off, length)) for r in range(n_rep)])
    children = np.where(draws < cfg.mutation_rate, 1 - children, children)
    if elites.shape[1]:
        return np.concatenate([elites, children], axis=1)
    return children

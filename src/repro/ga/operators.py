"""Variation operators: standard one-point crossover and uniform bit-flip
mutation (§5).

Operators act on plain bit tuples; the callers own the conversion to/from
:class:`~repro.core.strategy.Strategy` so these stay genome-length agnostic.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["one_point_crossover", "mutate"]

Bits = tuple[int, ...]


def one_point_crossover(
    a: Sequence[int], b: Sequence[int], rng: np.random.Generator
) -> tuple[Bits, Bits]:
    """Standard one-point crossover.

    The cut point is uniform on ``1 .. L-1`` so both children always contain
    genetic material from both parents (a cut at 0 or L would clone them).
    Returns both children; §5 keeps one of the two at random.
    """
    a = tuple(a)
    b = tuple(b)
    if len(a) != len(b):
        raise ValueError(f"parent length mismatch: {len(a)} vs {len(b)}")
    if len(a) < 2:
        raise ValueError("crossover needs genomes of length >= 2")
    cut = int(rng.integers(1, len(a)))
    return a[:cut] + b[cut:], b[:cut] + a[cut:]


def mutate(bits: Sequence[int], rate: float, rng: np.random.Generator) -> Bits:
    """Uniform bit-flip mutation: each bit flips independently with ``rate``.

    Always consumes exactly ``len(bits)`` uniforms so the random stream
    advances identically whether or not any bit flips (keeps replications
    reproducible under parameter changes that don't touch the flow).
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"mutation rate must be in [0, 1], got {rate}")
    draws = rng.random(len(bits))
    return tuple(1 - b if u < rate else b for b, u in zip(bits, draws))

"""Per-generation evolution records (the data behind Fig. 4).

A :class:`History` collects one :class:`GenerationRecord` per generation:
overall and per-environment cooperation levels, fitness summary, and the mean
forwarding fraction of the population's strategies.  Histories serialise to
plain dicts for the JSON result files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = ["GenerationRecord", "History"]


@dataclass(frozen=True)
class GenerationRecord:
    """Summary of one evaluated generation."""

    generation: int
    cooperation: float
    cooperation_per_env: dict[str, float]
    mean_fitness: float
    best_fitness: float
    mean_forwarding_fraction: float

    def to_dict(self) -> dict:
        return {
            "generation": self.generation,
            "cooperation": self.cooperation,
            "cooperation_per_env": dict(self.cooperation_per_env),
            "mean_fitness": self.mean_fitness,
            "best_fitness": self.best_fitness,
            "mean_forwarding_fraction": self.mean_forwarding_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GenerationRecord":
        return cls(
            generation=int(data["generation"]),
            cooperation=float(data["cooperation"]),
            cooperation_per_env={
                k: float(v) for k, v in data["cooperation_per_env"].items()
            },
            mean_fitness=float(data["mean_fitness"]),
            best_fitness=float(data["best_fitness"]),
            mean_forwarding_fraction=float(data["mean_forwarding_fraction"]),
        )


@dataclass
class History:
    """All generation records of one replication, in order."""

    records: list[GenerationRecord] = field(default_factory=list)

    def append(self, record: GenerationRecord) -> None:
        if self.records and record.generation != self.records[-1].generation + 1:
            raise ValueError(
                f"non-contiguous generation {record.generation} after"
                f" {self.records[-1].generation}"
            )
        self.records.append(record)

    @property
    def n_generations(self) -> int:
        return len(self.records)

    def cooperation_series(self) -> np.ndarray:
        """Cooperation level per generation (one Fig. 4 curve)."""
        return np.array([r.cooperation for r in self.records], dtype=float)

    def cooperation_series_env(self, env: str) -> np.ndarray:
        """Per-environment cooperation series (Table 5 uses the last value)."""
        return np.array(
            [r.cooperation_per_env[env] for r in self.records], dtype=float
        )

    def environments(self) -> Sequence[str]:
        """Environment names present in the records."""
        return list(self.records[0].cooperation_per_env) if self.records else []

    @property
    def final(self) -> GenerationRecord:
        if not self.records:
            raise ValueError("empty history has no final record")
        return self.records[-1]

    def to_dict(self) -> dict:
        return {"records": [r.to_dict() for r in self.records]}

    @classmethod
    def from_dict(cls, data: dict) -> "History":
        history = cls()
        for rec in data["records"]:
            history.append(GenerationRecord.from_dict(rec))
        return history

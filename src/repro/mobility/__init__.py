"""Mobility subsystem: dynamic topologies for the ad hoc network game.

The paper's oracle models *maximal* mobility (fresh random intermediates
every packet, §4.1) and :mod:`repro.network` models *zero* mobility (a
static unit-disk graph).  This package fills the continuum in between:

* :mod:`repro.mobility.models` — :class:`RandomWaypoint` and
  :class:`GaussMarkov` node movement, plus :class:`NodeChurn` (nodes leave
  and rejoin), all deterministic under a shared ``np.random.Generator``;
* :mod:`repro.mobility.dynamic` — :class:`DynamicTopology`, a unit-disk
  graph repaired incrementally as nodes move, versioned by ``epoch``;
* :mod:`repro.mobility.oracle` — :class:`MobilePathOracle`, a caching path
  oracle (invalidated on epoch change) that keeps the engine-facing
  :class:`repro.paths.oracle.PathOracle` contract, so both simulation
  engines run on a moving network unmodified.

Scenario knobs live in :class:`MobilityConfig` (embedded in
``SimulationConfig``); named presets in :data:`repro.config.presets.MOBILITY_PRESETS`.
"""

from repro.config.mobility import MOBILITY_MODELS, MobilityConfig
from repro.mobility.dynamic import DynamicTopology
from repro.mobility.factory import build_model, build_oracle, build_topology
from repro.mobility.models import GaussMarkov, MobilityModel, NodeChurn, RandomWaypoint
from repro.mobility.oracle import MobilePathOracle

__all__ = [
    "MOBILITY_MODELS",
    "MobilityConfig",
    "MobilityModel",
    "RandomWaypoint",
    "GaussMarkov",
    "NodeChurn",
    "DynamicTopology",
    "MobilePathOracle",
    "build_model",
    "build_topology",
    "build_oracle",
]

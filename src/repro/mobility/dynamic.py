"""Time-varying unit-disk topology driven by a mobility model.

:class:`DynamicTopology` owns the authoritative node positions and the
derived :mod:`networkx` graph.  ``step()`` advances positions through the
mobility model and repairs the graph *incrementally*: only nodes that moved
more than ``tolerance`` since their edges were last computed (or whose churn
state flipped) have their incident edges rebuilt — an O(moved x n) update
instead of the O(n^2) full rebuild.

``epoch`` is the edge-set version number: it increments only when the edge
set actually changes, so consumers like
:class:`repro.mobility.oracle.MobilePathOracle` can cache route computations
and pay nothing while the network is effectively static (waypoint pauses,
sub-tolerance drift).  With a nonzero tolerance, edge lengths are accurate to
within ``2 * tolerance`` — the documented fidelity/speed trade-off.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.mobility.models import MobilityModel
from repro.network.ksp import PathSearch

__all__ = ["DynamicTopology"]


class DynamicTopology:
    """A unit-disk graph whose nodes move under a :class:`MobilityModel`."""

    def __init__(
        self,
        node_ids: Sequence[int],
        radio_range: float,
        model: MobilityModel,
        rng: np.random.Generator,
        dt: float = 1.0,
        tolerance: float = 0.0,
        require_connected_start: bool = True,
        max_reset_attempts: int = 50,
    ):
        if not 0.0 < radio_range <= np.sqrt(2.0):
            raise ValueError(
                f"radio_range must be in (0, sqrt(2)], got {radio_range}"
            )
        if dt <= 0.0:
            raise ValueError(f"dt must be > 0, got {dt}")
        if tolerance < 0.0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        ids = list(node_ids)
        if len(ids) < 3:
            raise ValueError("a topology needs at least 3 nodes")
        self.radio_range = float(radio_range)
        self.node_ids = ids
        self._index = {nid: i for i, nid in enumerate(ids)}
        self.model = model
        self.rng = rng
        self.dt = float(dt)
        self.tolerance = float(tolerance)
        self.epoch = 0
        #: total ``step()`` calls — unlike ``epoch`` this moves even when
        #: the edge set survives a step, so consumers caching anything
        #: *position*-dependent (virtual/boost routes) can invalidate on it
        self.steps = 0
        self.boost_count = 0  # emergency power boosts (isolated sources)
        #: cumulative edge churn across epoch rebuilds
        self.edges_added = 0
        self.edges_removed = 0
        #: (bfs_builds, queries, deviations_pruned) accumulated from
        #: route-search snapshots already replaced by an epoch rebuild —
        #: folded so counters survive the snapshot's retirement
        self._ksp_retired = (0, 0, 0)
        # movement can disconnect the graph later (that is the point of the
        # subsystem), but starting connected avoids stillborn scenarios
        for _ in range(max_reset_attempts):
            self._pos = np.array(model.reset(len(ids), rng), dtype=float)
            self._active = self._current_active()
            self.graph = self._full_build()
            if not require_connected_start or nx.is_connected(self.graph):
                break
        else:
            raise RuntimeError(
                f"could not place a connected topology in"
                f" {max_reset_attempts} attempts; increase radio_range"
            )
        # positions/activity at the last per-node edge computation
        self._anchor = self._pos.copy()
        self._anchor_active = self._active.copy()
        self._search: PathSearch | None = None
        self._search_epoch = -1

    def path_search(self) -> PathSearch:
        """The native route-search snapshot of the current epoch's graph.

        Rebuilt only when ``epoch`` changes (the edge set really moved);
        queries never mutate the graph, so the snapshot stays valid for the
        whole epoch — including around virtual-edge and power-boost queries,
        which ride in as query-time extra edges instead of graph edits.
        """
        if self._search is None or self._search_epoch != self.epoch:
            old = self._search
            if old is not None:
                b, q, p = self._ksp_retired
                self._ksp_retired = (
                    b + old.bfs_builds,
                    q + old.queries,
                    p + old.deviations_pruned,
                )
            self._search = PathSearch(self.graph)
            self._search_epoch = self.epoch
        return self._search

    # -- state access ----------------------------------------------------------

    @property
    def positions(self) -> dict[int, tuple[float, float]]:
        """Current positions keyed by node id (GeometricTopology-compatible)."""
        return {
            nid: (float(x), float(y))
            for nid, (x, y) in zip(self.node_ids, self._pos)
        }

    def position_array(self) -> np.ndarray:
        """Current positions as an ``(n, 2)`` array (copy), in id order."""
        return self._pos.copy()

    def active_ids(self) -> list[int]:
        """Ids of nodes currently present (all, unless churn is active)."""
        return [nid for nid, a in zip(self.node_ids, self._active) if a]

    def degree_stats(self) -> tuple[float, int, int]:
        """(mean, min, max) node degree — useful for choosing radio_range."""
        degrees = [d for _, d in self.graph.degree()]
        return float(np.mean(degrees)), int(min(degrees)), int(max(degrees))

    def is_active(self, node_id: int) -> bool:
        """Whether the node is currently present (always True without churn)."""
        if self._all_active:
            return True
        return bool(self._active[self._index[node_id]])

    def candidate_paths(
        self,
        source: int,
        destination: int,
        max_paths: int,
        max_hops: int,
        restrict_to: frozenset[int] | None = None,
    ) -> list[tuple[int, ...]]:
        """Up to ``max_paths`` shortest simple routes as intermediate tuples.

        ``restrict_to`` routes over the subgraph induced by the given node
        ids (e.g. the current tournament's participants — routes are
        discovered among nodes actually taking part in the network).

        A churned-out node keeps originating packets (its radio is on while
        it transmits), so an inactive *source* is virtually re-linked to its
        in-range active neighbours for the query; inactive destinations and
        intermediates stay unreachable.
        """
        i = self._index[source]
        extras: list[tuple[int, int]] = (
            [] if self._active[i] else self._virtual_edges(i)
        )
        search = self.path_search()
        if restrict_to is not None and search.covers_all(restrict_to):
            restrict_to = None  # scope covers the graph: restriction no-op
        if self._scoped_degree(source, extras, restrict_to) == 0:
            # emergency power boost: a source with no reachable peer in
            # scope raises transmit power until its nearest participating
            # node hears it
            attach = self._nearest_peer(i, restrict_to)
            if attach is None:
                return []
            self.boost_count += 1
            extras = extras + [(source, attach)]
        return search.intermediate_paths(
            source, destination, max_paths, max_hops, restrict_to, extras
        )

    def _scoped_degree(
        self,
        source: int,
        extras: Sequence[tuple[int, int]],
        restrict_to: frozenset[int] | None,
    ) -> int:
        """Degree of ``source`` within scope, extra edges included — what
        ``graph.subgraph(restrict_to).degree(source)`` saw when virtual
        edges were temporarily materialised."""
        if restrict_to is None:
            return len(self.graph.adj[source]) + len(extras)
        degree = sum(1 for w in self.graph.adj[source] if w in restrict_to)
        degree += sum(1 for _, b in extras if b in restrict_to)
        return degree

    def _nearest_peer(
        self, i: int, restrict_to: frozenset[int] | None
    ) -> int | None:
        """The active node (within scope) geometrically closest to index ``i``."""
        d2 = np.sum((self._pos - self._pos[i]) ** 2, axis=1)
        best: int | None = None
        best_d2 = np.inf
        for j in np.flatnonzero(self._active):
            nid = self.node_ids[int(j)]
            if int(j) == i or (restrict_to is not None and nid not in restrict_to):
                continue
            if d2[j] < best_d2:
                best, best_d2 = nid, float(d2[j])
        return best

    def _virtual_edges(self, i: int) -> list[tuple[int, int]]:
        """Edges node index ``i`` would have were its radio on."""
        d2 = np.sum((self._pos - self._pos[i]) ** 2, axis=1)
        within = (d2 <= self.radio_range**2) & self._active
        a = self.node_ids[i]
        return [
            (a, self.node_ids[int(j)]) for j in np.flatnonzero(within) if int(j) != i
        ]

    # -- dynamics --------------------------------------------------------------

    def step(self) -> bool:
        """Advance positions one step; repair the graph; return whether the
        edge set changed (in which case ``epoch`` was incremented)."""
        self.steps += 1
        self._pos = np.array(
            self.model.step(self._pos, self.dt, self.rng), dtype=float
        )
        self._active = self._current_active()
        moved = (
            np.sum((self._pos - self._anchor) ** 2, axis=1) > self.tolerance**2
        )
        dirty = moved | (self._active != self._anchor_active)
        if not dirty.any():
            return False
        changed = self._rebuild_edges(np.flatnonzero(dirty))
        self._anchor[dirty] = self._pos[dirty]
        self._anchor_active[dirty] = self._active[dirty]
        if changed:
            self.epoch += 1
        return changed

    def _current_active(self) -> np.ndarray:
        mask_fn = getattr(self.model, "active_mask", None)
        if mask_fn is None:
            active = np.ones(len(self.node_ids), dtype=bool)
        else:
            active = np.array(mask_fn(), dtype=bool)
        # hot-path flag: lets is_active() skip numpy scalar indexing when
        # every node is present (always, unless churn is configured)
        self._all_active = bool(active.all())
        return active

    def _full_build(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(self.node_ids)
        d2 = np.sum((self._pos[:, None, :] - self._pos[None, :, :]) ** 2, axis=-1)
        adjacent = (
            (d2 <= self.radio_range**2)
            & self._active[:, None]
            & self._active[None, :]
        )
        ids = self.node_ids
        rows, cols = np.nonzero(np.triu(adjacent, k=1))
        graph.add_edges_from((ids[i], ids[j]) for i, j in zip(rows, cols))
        return graph

    def _rebuild_edges(self, dirty: np.ndarray) -> bool:
        """Recompute the incident edges of the ``dirty`` node indices.

        Returns whether the graph's edge set changed.  The ``new_edges``
        insertion sequence is load-bearing: edge-addition order sets the
        graph's adjacency iteration order, which is the route-search tie
        order — so it is kept exactly as the distance scan emits it.
        """
        ids = self.node_ids
        adj = self.graph.adj
        old_edges = {
            (a, b) if a < b else (b, a)
            for i in dirty.tolist()
            for a in (ids[i],)
            for b in adj[a]
        }
        d2 = np.sum(
            (self._pos[dirty, None, :] - self._pos[None, :, :]) ** 2, axis=-1
        )
        within = (
            (d2 <= self.radio_range**2)
            & self._active[dirty, None]
            & self._active[None, :]
        )
        new_edges = set()
        add_edge = new_edges.add
        for row, i in enumerate(dirty.tolist()):
            a = ids[i]
            for j in np.flatnonzero(within[row]).tolist():
                if j != i:
                    b = ids[j]
                    add_edge((a, b) if a < b else (b, a))
        if new_edges == old_edges:
            return False
        removed = old_edges - new_edges
        added = new_edges - old_edges
        self.graph.remove_edges_from(removed)
        self.graph.add_edges_from(added)
        self.edges_removed += len(removed)
        self.edges_added += len(added)
        return True

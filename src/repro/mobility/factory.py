"""Build mobility models, topologies and oracles from a :class:`MobilityConfig`."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config.mobility import MobilityConfig
from repro.mobility.dynamic import DynamicTopology
from repro.mobility.models import GaussMarkov, MobilityModel, NodeChurn, RandomWaypoint
from repro.mobility.oracle import MobilePathOracle

__all__ = ["build_model", "build_topology", "build_oracle"]


def build_model(config: MobilityConfig) -> MobilityModel:
    """The configured mobility model, churn-wrapped when churn is enabled."""
    if config.model == "waypoint":
        model: MobilityModel = RandomWaypoint(
            config.speed_min, config.speed_max, config.pause_time
        )
    elif config.model == "gauss-markov":
        model = GaussMarkov(
            config.mean_speed,
            config.alpha,
            config.speed_sigma,
            config.direction_sigma,
        )
    else:
        raise ValueError(
            f"no mobility model for config.model={config.model!r}"
            " (use RandomPathOracle when mobility is 'none')"
        )
    if config.churn_leave > 0.0:
        model = NodeChurn(model, config.churn_leave, config.churn_return)
    return model


def build_topology(
    config: MobilityConfig, node_ids: Sequence[int], rng: np.random.Generator
) -> DynamicTopology:
    """A :class:`DynamicTopology` over ``node_ids`` per the config."""
    return build_topology_with_model(config, node_ids, build_model(config), rng)


def build_topology_with_model(
    config: MobilityConfig,
    node_ids: Sequence[int],
    model: MobilityModel,
    rng: np.random.Generator,
) -> DynamicTopology:
    return DynamicTopology(
        node_ids,
        config.radio_range,
        model,
        rng,
        tolerance=config.tolerance,
    )


def build_oracle(
    config: MobilityConfig, node_ids: Sequence[int], rng: np.random.Generator
) -> MobilePathOracle:
    """A fully wired :class:`MobilePathOracle` for the given node ids."""
    return MobilePathOracle(
        build_topology(config, node_ids, rng),
        rng,
        max_paths=config.max_paths,
        max_hops=config.max_hops,
        step_every=config.step_every,
        route_cache=config.route_cache,
        drift_budget=config.drift_budget,
    )

"""Mobility models: how node positions evolve between topology steps.

A :class:`MobilityModel` owns the per-node kinematic state (waypoints,
velocities, pause timers) and advances a position array one step at a time;
:class:`repro.mobility.dynamic.DynamicTopology` owns the authoritative
positions and the derived unit-disk graph.  All randomness flows through the
``np.random.Generator`` passed to ``reset``/``step``, and every step consumes
the stream in a fixed, state-determined order — two instances driven by
identically-seeded generators trace identical trajectories (asserted by
``tests/test_mobility_models.py``).

Models:

* :class:`RandomWaypoint` — the classic MANET benchmark: pick a uniform
  destination, travel at a uniform speed, pause, repeat.
* :class:`GaussMarkov` — temporally correlated speed/heading with memory
  ``alpha``; boundaries reflect both position and heading.
* :class:`NodeChurn` — wraps any model; nodes leave the network (radio off)
  and rejoin with per-step probabilities, exposed via ``active_mask``.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["MobilityModel", "RandomWaypoint", "GaussMarkov", "NodeChurn"]


@runtime_checkable
class MobilityModel(Protocol):
    """Protocol implemented by all mobility models."""

    def reset(self, n_nodes: int, rng: np.random.Generator) -> np.ndarray:
        """(Re)initialise per-node state; return initial positions (n, 2)."""
        ...

    def step(
        self, positions: np.ndarray, dt: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Advance ``positions`` by one step of ``dt``; return new positions."""
        ...


class RandomWaypoint:
    """Random waypoint mobility in the unit square.

    Each node travels in a straight line toward a uniformly drawn waypoint at
    a per-leg speed uniform in ``[speed_min, speed_max]``; on arrival it
    pauses for ``pause_time`` before starting the next leg (zero speed for
    all nodes yields a stationary network, handy for cache tests).
    """

    def __init__(self, speed_min: float, speed_max: float, pause_time: float = 0.0):
        if not 0.0 <= speed_min <= speed_max:
            raise ValueError(
                f"need 0 <= speed_min <= speed_max, got {speed_min}/{speed_max}"
            )
        if pause_time < 0.0:
            raise ValueError(f"pause_time must be >= 0, got {pause_time}")
        self.speed_min = float(speed_min)
        self.speed_max = float(speed_max)
        self.pause_time = float(pause_time)
        self._targets: np.ndarray | None = None
        self._speeds: np.ndarray | None = None
        self._pause_left: np.ndarray | None = None

    def reset(self, n_nodes: int, rng: np.random.Generator) -> np.ndarray:
        positions = rng.random((n_nodes, 2))
        self._targets = rng.random((n_nodes, 2))
        self._speeds = rng.uniform(self.speed_min, self.speed_max, n_nodes)
        self._pause_left = np.zeros(n_nodes)
        return positions

    def step(
        self, positions: np.ndarray, dt: float, rng: np.random.Generator
    ) -> np.ndarray:
        if self._targets is None:
            raise RuntimeError("call reset() before step()")
        pos = np.array(positions, dtype=float, copy=True)
        paused = self._pause_left > 0.0
        self._pause_left[paused] -= dt
        idx = np.flatnonzero(~paused)
        if idx.size:
            delta = self._targets[idx] - pos[idx]
            dist = np.hypot(delta[:, 0], delta[:, 1])
            step_len = self._speeds[idx] * dt
            arrive = dist <= step_len
            go = ~arrive
            if go.any():
                pos[idx[go]] += delta[go] * (step_len[go] / dist[go])[:, None]
            arrived = idx[arrive]
            if arrived.size:
                # snap to the waypoint, start the pause, draw the next leg
                pos[arrived] = self._targets[arrived]
                self._pause_left[arrived] = self.pause_time
                self._targets[arrived] = rng.random((arrived.size, 2))
                self._speeds[arrived] = rng.uniform(
                    self.speed_min, self.speed_max, arrived.size
                )
        return pos


class GaussMarkov:
    """Gauss–Markov mobility: speed and heading with temporal correlation.

    ``s_t = a*s_{t-1} + (1-a)*mean + sqrt(1-a^2)*sigma*N(0,1)`` for both the
    scalar speed and the heading angle; ``alpha`` near 1 gives smooth inertial
    motion, near 0 a memoryless random walk.  Positions reflect off the unit
    square, flipping both the heading and its long-term mean so nodes head
    back inside.
    """

    def __init__(
        self,
        mean_speed: float,
        alpha: float = 0.85,
        speed_sigma: float = 0.005,
        direction_sigma: float = 0.4,
    ):
        if mean_speed < 0.0 or speed_sigma < 0.0 or direction_sigma < 0.0:
            raise ValueError("mean_speed and sigmas must be >= 0")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.mean_speed = float(mean_speed)
        self.alpha = float(alpha)
        self.speed_sigma = float(speed_sigma)
        self.direction_sigma = float(direction_sigma)
        self._speed: np.ndarray | None = None
        self._dir: np.ndarray | None = None
        self._mean_dir: np.ndarray | None = None

    def reset(self, n_nodes: int, rng: np.random.Generator) -> np.ndarray:
        positions = rng.random((n_nodes, 2))
        self._speed = np.full(n_nodes, self.mean_speed)
        self._dir = rng.uniform(0.0, 2.0 * np.pi, n_nodes)
        self._mean_dir = self._dir.copy()
        return positions

    def step(
        self, positions: np.ndarray, dt: float, rng: np.random.Generator
    ) -> np.ndarray:
        if self._speed is None:
            raise RuntimeError("call reset() before step()")
        n = len(self._speed)
        a = self.alpha
        noise = np.sqrt(1.0 - a * a)
        self._speed = (
            a * self._speed
            + (1.0 - a) * self.mean_speed
            + noise * self.speed_sigma * rng.standard_normal(n)
        )
        np.clip(self._speed, 0.0, None, out=self._speed)
        self._dir = (
            a * self._dir
            + (1.0 - a) * self._mean_dir
            + noise * self.direction_sigma * rng.standard_normal(n)
        )
        pos = np.array(positions, dtype=float, copy=True)
        pos[:, 0] += dt * self._speed * np.cos(self._dir)
        pos[:, 1] += dt * self._speed * np.sin(self._dir)
        self._reflect(pos)
        return pos

    def _reflect(self, pos: np.ndarray) -> None:
        for axis in (0, 1):
            low = pos[:, axis] < 0.0
            high = pos[:, axis] > 1.0
            pos[low, axis] = -pos[low, axis]
            pos[high, axis] = 2.0 - pos[high, axis]
            hit = low | high
            if hit.any():
                if axis == 0:
                    self._dir[hit] = np.pi - self._dir[hit]
                else:
                    self._dir[hit] = -self._dir[hit]
                self._mean_dir[hit] = self._dir[hit]
        # one reflection suffices for realistic speeds; clamp pathological ones
        np.clip(pos, 0.0, 1.0, out=pos)


class NodeChurn:
    """Wrapper adding leave/rejoin churn to any mobility model.

    Each step, every present node leaves the network with probability
    ``leave_prob`` and every absent node rejoins with probability
    ``return_prob``.  Absent nodes keep moving (their position state lives in
    the wrapped model) but their radio is off: ``active_mask`` reports them
    inactive and :class:`DynamicTopology` drops their edges.
    """

    def __init__(self, model: MobilityModel, leave_prob: float, return_prob: float):
        for name, value in (("leave_prob", leave_prob), ("return_prob", return_prob)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.model = model
        self.leave_prob = float(leave_prob)
        self.return_prob = float(return_prob)
        self._away: np.ndarray | None = None

    def reset(self, n_nodes: int, rng: np.random.Generator) -> np.ndarray:
        self._away = np.zeros(n_nodes, dtype=bool)
        return self.model.reset(n_nodes, rng)

    def step(
        self, positions: np.ndarray, dt: float, rng: np.random.Generator
    ) -> np.ndarray:
        if self._away is None:
            raise RuntimeError("call reset() before step()")
        pos = self.model.step(positions, dt, rng)
        u = rng.random(len(self._away))
        self._away = np.where(self._away, u >= self.return_prob, u < self.leave_prob)
        return pos

    def active_mask(self) -> np.ndarray:
        """Boolean mask of nodes currently present in the network."""
        if self._away is None:
            raise RuntimeError("call reset() before active_mask()")
        return ~self._away

"""Path oracle over a :class:`DynamicTopology` — a thin draw layer.

:class:`MobilePathOracle` keeps the :class:`repro.paths.oracle.PathOracle`
contract, so every simulation engine runs on a moving network unmodified.
Since the layered refactor it is a *composition* of the three oracle
layers rather than a monolith:

* the **topology provider** is the :class:`DynamicTopology` (epoch-versioned
  adjacency, stepped by the oracle's clock);
* the **route provider** is a :class:`repro.network.provider.RouteProvider`
  computing routes on the subgraph induced by the current participants,
  cached per (source, destination) pair under a pluggable cache policy —
  ``exact`` (serve a cached route only for the epoch it was computed under;
  bit-identical to the historical behavior and the default) or ``approx``
  (serve cached routes while the topology has drifted at most
  ``drift_budget`` epochs, revalidating lazily; statistically equivalent,
  gated by ``tests/test_engine_statistical.py``);
* the **draw planner** is :mod:`repro.paths.planner` (sequential and
  batched rejection-sampling destination draws) plus the vectorized
  whole-tournament sampler in :mod:`repro.paths.vector` used by the turbo
  engine.

Topology stepping is clocked in one of three ways (``step_every``):

* ``"round"``  — once per tournament round, detected from the draw count
  (each participant draws exactly once per round, and both engines call
  ``draw`` in the same order, so the step schedule is engine-independent);
* ``"tournament"`` — once per tournament, via the ``on_tournament_end`` hook
  called by :func:`repro.tournament.evaluation.evaluate_generation`;
* an integer ``n`` — once every ``n`` draws.
"""

from __future__ import annotations

from time import perf_counter
from typing import Sequence

import numpy as np

from repro.mobility.dynamic import DynamicTopology
from repro.network.provider import CachePolicy, RouteProvider, make_cache_policy
from repro.paths.oracle import GameSetup, PlannedGame
from repro.paths.planner import draw_setup, plan_round

__all__ = ["MobilePathOracle"]


class MobilePathOracle:
    """Path oracle backed by a time-varying :class:`DynamicTopology`."""

    def __init__(
        self,
        topology: DynamicTopology,
        rng: np.random.Generator,
        max_paths: int = 3,
        max_hops: int = 10,
        max_draws: int = 64,
        step_every: str | int = "round",
        route_cache: str | CachePolicy = "exact",
        drift_budget: int = 8,
    ):
        if isinstance(step_every, str):
            if step_every not in ("round", "tournament"):
                raise ValueError(
                    f"step_every must be an int, 'round' or 'tournament',"
                    f" got {step_every!r}"
                )
        elif step_every < 1:
            raise ValueError(f"step_every must be >= 1, got {step_every}")
        self.topology = topology
        self.rng = rng
        self.max_paths = max_paths
        self.max_hops = max_hops
        self.max_draws = max_draws
        self.step_every = step_every
        policy = (
            route_cache
            if isinstance(route_cache, CachePolicy)
            else make_cache_policy(route_cache, drift_budget)
        )
        self.provider = RouteProvider(topology, max_paths, max_hops, policy)
        self._draws_since_step = 0
        #: cumulative wall seconds inside ``topology.step()`` — the
        #: "topology step" row of the per-layer profile breakdown
        self.step_s = 0.0

    # -- PathOracle contract ---------------------------------------------------

    def draw(self, source: int, participants: Sequence[int]) -> GameSetup:
        others = [p for p in participants if p != source]
        if not others:
            raise ValueError("need at least one potential destination")
        threshold = (
            len(participants) if self.step_every == "round" else self.step_every
        )
        if isinstance(threshold, int) and self._draws_since_step >= threshold:
            self._step_topology()
        self._draws_since_step += 1
        provider = self.provider
        provider.rescope(participants)
        provider.sync()
        destination, paths = draw_setup(
            self.rng, source, others, provider.routes, self.max_draws
        )
        return GameSetup(
            source=source, destination=destination, paths=tuple(paths)
        )

    # -- batched drawing (struct-of-arrays engines) ----------------------------

    def draw_tournament(
        self, sources: Sequence[int], participants: Sequence[int]
    ) -> list[PlannedGame]:
        """Draw a whole round's (or tournament's) games in one batch.

        **Stream-identical** to calling :meth:`draw` once per source: the
        per-draw sequence — destination ``integers`` draws, rejection
        redraws, and crucially the draw-count-clocked ``topology.step()``
        calls (which may consume the same generator) — is replicated
        exactly (the planner's ``tick`` hook fires at the same draw counts),
        so pre-drawing moves only the timing of the draws, never their
        values or the topology's trajectory.
        """
        # hoisted per-draw invariants: participants cannot change while this
        # call runs, so one rescope serves the whole plan and the step
        # threshold is constant
        threshold = (
            len(participants) if self.step_every == "round" else self.step_every
        )
        clocked = isinstance(threshold, int)
        provider = self.provider
        provider.rescope(participants)
        provider.sync()

        def tick() -> None:
            if clocked and self._draws_since_step >= threshold:
                self._step_topology()
            self._draws_since_step += 1

        return plan_round(
            self.rng,
            sources,
            participants,
            provider.routes,
            self.max_draws,
            tick=tick,
        )

    # -- topology clocking -----------------------------------------------------

    def _step_topology(self) -> None:
        """One clocked topology step, with the provider resynced after."""
        start = perf_counter()
        self.topology.step()
        self.step_s += perf_counter() - start
        self._draws_since_step = 0
        self.provider.sync()

    def on_tournament_end(self) -> None:
        """Hook called by the evaluation loop after every tournament."""
        if self.step_every == "tournament":
            self.advance_epoch()

    def advance_epoch(self) -> None:
        """Step the topology once, explicitly (external/manual clocking)."""
        self._step_topology()

    # -- route-provider delegates (back-compat introspection surface) ----------

    @property
    def route_cache(self) -> str:
        """The active cache policy's selector name (``exact``/``approx``)."""
        return self.provider.policy.name

    def _rescope(self, participants: Sequence[int]) -> None:
        self.provider.rescope(participants)

    def _candidate_paths(
        self, source: int, destination: int
    ) -> list[tuple[int, ...]]:
        return self.provider.routes(source, destination)

    @property
    def _cache(self) -> dict:
        return self.provider._cache

    @property
    def _scope(self) -> frozenset[int]:
        return self.provider.scope

    @property
    def cache_hits(self) -> int:
        return self.provider.cache_hits

    @property
    def cache_misses(self) -> int:
        return self.provider.cache_misses

    @property
    def cache_info(self) -> tuple[int, int]:
        """(hits, misses) of the per-pair route cache."""
        return self.provider.cache_info

"""Path oracle over a :class:`DynamicTopology` — caching, epoch-invalidated.

:class:`MobilePathOracle` keeps the :class:`repro.paths.oracle.PathOracle`
contract, so both simulation engines run on a moving network unmodified.
Routes are computed on the subgraph induced by the current participants
(routing only discovers nodes that are actually in the network), cached per
(source, destination) pair, and the cache is flushed only when the
topology's ``epoch`` changes (i.e. the edge set really changed) or a new
tournament brings a different participant set — static phases pay zero
route recomputation.

Topology stepping is clocked in one of three ways (``step_every``):

* ``"round"``  — once per tournament round, detected from the draw count
  (each participant draws exactly once per round, and both engines call
  ``draw`` in the same order, so the step schedule is engine-independent);
* ``"tournament"`` — once per tournament, via the ``on_tournament_end`` hook
  called by :func:`repro.tournament.evaluation.evaluate_generation`;
* an integer ``n`` — once every ``n`` draws.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mobility.dynamic import DynamicTopology
from repro.paths.oracle import GameSetup, PlannedGame

__all__ = ["MobilePathOracle"]


class MobilePathOracle:
    """Path oracle backed by a time-varying :class:`DynamicTopology`."""

    def __init__(
        self,
        topology: DynamicTopology,
        rng: np.random.Generator,
        max_paths: int = 3,
        max_hops: int = 10,
        max_draws: int = 64,
        step_every: str | int = "round",
    ):
        if isinstance(step_every, str):
            if step_every not in ("round", "tournament"):
                raise ValueError(
                    f"step_every must be an int, 'round' or 'tournament',"
                    f" got {step_every!r}"
                )
        elif step_every < 1:
            raise ValueError(f"step_every must be >= 1, got {step_every}")
        self.topology = topology
        self.rng = rng
        self.max_paths = max_paths
        self.max_hops = max_hops
        self.max_draws = max_draws
        self.step_every = step_every
        self._cache: dict[tuple[int, int], list[tuple[int, ...]]] = {}
        self._cache_epoch = topology.epoch
        self._draws_since_step = 0
        self._scope_obj: Sequence[int] | None = None  # identity of last seen
        self._scope_snapshot: list[int] = []  # its contents at that time
        self._scope: frozenset[int] = frozenset()
        self.cache_hits = 0
        self.cache_misses = 0

    # -- PathOracle contract ---------------------------------------------------

    def draw(self, source: int, participants: Sequence[int]) -> GameSetup:
        others = [p for p in participants if p != source]
        if not others:
            raise ValueError("need at least one potential destination")
        threshold = (
            len(participants) if self.step_every == "round" else self.step_every
        )
        if isinstance(threshold, int) and self._draws_since_step >= threshold:
            self.topology.step()
            self._draws_since_step = 0
        self._draws_since_step += 1
        self._rescope(participants)
        self._validate_cache()
        for _ in range(self.max_draws):
            destination = others[int(self.rng.integers(len(others)))]
            paths = self._candidate_paths(source, destination)
            if paths:
                return GameSetup(
                    source=source, destination=destination, paths=tuple(paths)
                )
        raise RuntimeError(
            f"no routable destination found for source {source} after"
            f" {self.max_draws} draws; topology too sparse for this game"
        )

    # -- batched drawing (struct-of-arrays engines) ----------------------------

    def draw_tournament(
        self, sources: Sequence[int], participants: Sequence[int]
    ) -> list[PlannedGame]:
        """Draw a whole round's (or tournament's) games in one batch.

        **Stream-identical** to calling :meth:`draw` once per source: the
        per-draw sequence — destination ``integers`` draws, rejection
        redraws, and crucially the draw-count-clocked ``topology.step()``
        calls (which may consume the same generator) — is replicated
        exactly, so pre-drawing moves only the timing of the draws, never
        their values or the topology's trajectory.  The speedup is per-game
        overhead removal: cached ``others`` pools and no ``GameSetup``
        construction/validation.
        """
        rng = self.rng
        integers = rng.integers
        max_draws = self.max_draws
        step_every = self.step_every
        candidate_paths = self._candidate_paths
        topology = self.topology
        # hoisted per-draw invariants: participants cannot change while this
        # call runs, so one rescope serves the whole plan, the step threshold
        # is constant, and the cache only needs re-validation after a step
        threshold = len(participants) if step_every == "round" else step_every
        clocked = isinstance(threshold, int)
        self._rescope(participants)
        self._validate_cache()
        others_cache: dict[int, list[int]] = {}
        cache_get = others_cache.get
        plan: list[PlannedGame] = []
        append = plan.append
        for source in sources:
            others = cache_get(source)
            if others is None:
                others = [p for p in participants if p != source]
                others_cache[source] = others
            if not others:
                raise ValueError("need at least one potential destination")
            if clocked and self._draws_since_step >= threshold:
                topology.step()
                self._draws_since_step = 0
                self._validate_cache()
            self._draws_since_step += 1
            n_others = len(others)
            for _ in range(max_draws):
                destination = others[int(integers(n_others))]
                paths = candidate_paths(source, destination)
                if paths:
                    append((source, destination, paths))
                    break
            else:
                raise RuntimeError(
                    f"no routable destination found for source {source} after"
                    f" {max_draws} draws; topology too sparse for this game"
                )
        return plan

    # -- topology clocking -----------------------------------------------------

    def on_tournament_end(self) -> None:
        """Hook called by the evaluation loop after every tournament."""
        if self.step_every == "tournament":
            self.advance_epoch()

    def advance_epoch(self) -> None:
        """Step the topology once, explicitly (external/manual clocking)."""
        self.topology.step()
        self._draws_since_step = 0

    # -- caching ---------------------------------------------------------------

    def _rescope(self, participants: Sequence[int]) -> None:
        """Track the participant set routes are restricted to.

        The identity check makes the common case cheap: both engines pass
        the same sequence object for every draw of a tournament.  Identity
        alone is not trusted — a caller that mutates the same list in place
        (node churn between rounds) would otherwise keep being served stale
        routes for departed nodes — so it is backed by an exact elementwise
        comparison against a snapshot of the last-seen contents (a C-level
        list compare, O(n) and collision-proof, unlike a hash or sum
        fingerprint).
        """
        if participants is self._scope_obj:
            # allocation-free fast path: engines pass the same list object
            # every draw, so a C-level elementwise compare settles it
            if isinstance(participants, list):
                if self._scope_snapshot == participants:
                    return
            elif self._scope_snapshot == list(participants):
                return
        self._scope_obj = participants
        self._scope_snapshot = list(participants)
        scope = frozenset(self._scope_snapshot)
        if scope != self._scope:
            self._scope = scope
            self._cache.clear()

    def _validate_cache(self) -> None:
        if self.topology.epoch != self._cache_epoch:
            self._cache.clear()
            self._cache_epoch = self.topology.epoch

    def _candidate_paths(self, source: int, destination: int) -> list[tuple[int, ...]]:
        if not self.topology.is_active(source):
            # a churned-out source routes over position-dependent virtual
            # edges that can drift without an epoch change: never cache
            self.cache_misses += 1
            return self.topology.candidate_paths(
                source, destination, self.max_paths, self.max_hops, self._scope
            )
        key = (source, destination)
        paths = self._cache.get(key)
        if paths is not None:
            self.cache_hits += 1
            return paths
        self.cache_misses += 1
        boosts_before = self.topology.boost_count
        paths = self.topology.candidate_paths(
            source, destination, self.max_paths, self.max_hops, self._scope
        )
        if self.topology.boost_count == boosts_before:
            # boosted routes ride on a position-dependent nearest-peer link
            # that can drift without an epoch change: only cache unboosted ones
            self._cache[key] = paths
        return paths

    @property
    def cache_info(self) -> tuple[int, int]:
        """(hits, misses) of the per-pair route cache."""
        return self.cache_hits, self.cache_misses

"""The Ad Hoc Network Game (§4.1–4.2): one packet, one source, a path of
intermediates deciding in sequence, payoffs and watchdog reputation updates."""

from repro.game.engine import play_game
from repro.game.result import GameResult
from repro.game.stats import RequestCounters, TournamentStats

__all__ = ["play_game", "GameResult", "TournamentStats", "RequestCounters"]

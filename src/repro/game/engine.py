"""Reference implementation of one Ad Hoc Network Game (§4.1–4.2, §3.1).

Game flow
---------
1. The source has already chosen a path (best reputation rating; done by the
   tournament runner so the choice can be counted in the statistics).
2. Intermediates decide in path order.  A node that receives the packet makes
   a *decision* (forward / discard) driven by its trust in the source and the
   source's activity level; the first discard ends the game.
3. Payoffs: the source is paid on transmission status (success 5 / failure 0);
   every intermediate that made a decision is paid from the intermediate
   payoff table using the trust level it assigned to the source.
4. Watchdog reputation updates (Fig. 1a):

   * success — the source and every intermediate record one *forwarded*
     observation about every other intermediate;
   * failure at path position ``k`` — the alert propagates upstream only:
     the source and the intermediates *before* ``k`` record an observation
     about every decider other than themselves (``forwarded`` for positions
     ``< k``, dropped for position ``k``).  Nodes after the drop saw nothing;
     the dropper itself records nothing.

The fast engine (:mod:`repro.sim.fast`) reimplements exactly this function on
flat arrays; ``tests/test_engine_equivalence.py`` proves the two agree
bit-for-bit on identical inputs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.node import Decision, Player
from repro.core.payoff import PayoffConfig
from repro.game.result import GameResult
from repro.game.stats import TournamentStats
from repro.paths.oracle import GameSetup
from repro.reputation.activity import ActivityClassifier
from repro.reputation.trust import TrustTable

__all__ = ["play_game"]


def play_game(
    players: Mapping[int, Player],
    setup: GameSetup,
    chosen_path_index: int,
    trust_table: TrustTable,
    activity: ActivityClassifier,
    payoffs: PayoffConfig,
    stats: TournamentStats | None = None,
    update_reputation: bool = True,
) -> GameResult:
    """Play one game over ``setup.paths[chosen_path_index]``.

    ``players`` maps node id to :class:`Player` for every node involved.
    Mutates player payoff accumulators and (unless ``update_reputation`` is
    off) reputation tables; optionally updates ``stats``.
    """
    source = players[setup.source]
    path: Sequence[int] = setup.paths[chosen_path_index]

    decisions: list[Decision] = []
    success = True
    for node_id in path:
        intermediate = players[node_id]
        decision = intermediate.decide_packet(setup.source, trust_table, activity)
        decisions.append(decision)
        if stats is not None:
            stats.record_request(
                source_selfish=source.is_selfish,
                responder_selfish=intermediate.is_selfish,
                forwarded=decision.forward,
            )
        if not decision.forward:
            success = False
            break

    # -- payoffs (§4.2) ----------------------------------------------------
    source.payoffs.record_send(payoffs.source_payoff(success))
    for node_id, decision in zip(path, decisions):
        amount = payoffs.intermediate_payoff(decision.forward, decision.trust)
        acc = players[node_id].payoffs
        if decision.forward:
            acc.record_forward(amount)
        else:
            acc.record_discard(amount)

    # -- watchdog reputation updates (§3.1, Fig. 1a) -------------------------
    if update_reputation:
        n_decided = len(decisions)
        deciders = path[:n_decided]
        if success:
            updaters = [setup.source, *deciders]
        else:
            # Alert travels upstream: source plus intermediates strictly
            # before the dropper (the last decider).
            updaters = [setup.source, *deciders[: n_decided - 1]]
        for updater_id in updaters:
            table = players[updater_id].reputation
            for node_id, decision in zip(deciders, decisions):
                if node_id != updater_id:
                    table.record(node_id, decision.forward)

    if stats is not None:
        stats.record_game(source_selfish=source.is_selfish, success=success)

    return GameResult(
        setup=setup,
        chosen_path_index=chosen_path_index,
        decisions=tuple(decisions),
        success=success,
    )

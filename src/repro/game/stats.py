"""Mergeable statistics counters for tournaments and generations.

These counters are the raw material for the paper's evaluation artefacts:

* cooperation level (Fig. 4, Table 5) — packets originated by normal nodes
  that reached their destination;
* CSN-free chosen paths (Table 5) — whether the source managed to route
  around constantly selfish nodes;
* responses to forwarding requests by source type (Table 6).

Both simulation engines update a :class:`TournamentStats` through the same
call sequence, so engine-equivalence tests can compare the counters field by
field.  ``merge`` folds tournaments into environments, environments into
generations, and replications into experiment aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RequestCounters", "TournamentStats"]


@dataclass
class RequestCounters:
    """Responses to forwarding requests from one class of source (Table 6).

    A *request* is a packet arriving at an intermediate node that must decide;
    nodes downstream of a drop never receive the packet and are not counted.
    """

    accepted_by_nn: int = 0
    accepted_by_csn: int = 0  # structurally zero for pure CSN, kept for generality
    rejected_by_nn: int = 0
    rejected_by_csn: int = 0

    def record(self, responder_selfish: bool, forwarded: bool) -> None:
        """Count one request handled by a normal (or selfish) responder."""
        if forwarded:
            if responder_selfish:
                self.accepted_by_csn += 1
            else:
                self.accepted_by_nn += 1
        else:
            if responder_selfish:
                self.rejected_by_csn += 1
            else:
                self.rejected_by_nn += 1

    @property
    def total(self) -> int:
        return (
            self.accepted_by_nn
            + self.accepted_by_csn
            + self.rejected_by_nn
            + self.rejected_by_csn
        )

    @property
    def accepted(self) -> int:
        return self.accepted_by_nn + self.accepted_by_csn

    def fraction_accepted(self) -> float:
        """Fraction of requests accepted (0.0 when no requests occurred)."""
        return self.accepted / self.total if self.total else 0.0

    def fraction_rejected_by_nn(self) -> float:
        return self.rejected_by_nn / self.total if self.total else 0.0

    def fraction_rejected_by_csn(self) -> float:
        return self.rejected_by_csn / self.total if self.total else 0.0

    def merge(self, other: "RequestCounters") -> None:
        self.accepted_by_nn += other.accepted_by_nn
        self.accepted_by_csn += other.accepted_by_csn
        self.rejected_by_nn += other.rejected_by_nn
        self.rejected_by_csn += other.rejected_by_csn

    def to_dict(self) -> dict[str, int]:
        return {
            "accepted_by_nn": self.accepted_by_nn,
            "accepted_by_csn": self.accepted_by_csn,
            "rejected_by_nn": self.rejected_by_nn,
            "rejected_by_csn": self.rejected_by_csn,
        }

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "RequestCounters":
        return cls(**{k: int(v) for k, v in data.items()})


@dataclass
class TournamentStats:
    """All counters gathered while playing games."""

    # packet delivery, by source type (nn = normal node, csn = selfish)
    nn_originated: int = 0
    nn_delivered: int = 0
    csn_originated: int = 0
    csn_delivered: int = 0
    # chosen-path composition, by source type
    nn_paths_chosen: int = 0
    nn_csn_free_paths: int = 0
    csn_paths_chosen: int = 0
    csn_csn_free_paths: int = 0
    # forwarding requests, by source type
    requests_from_nn: RequestCounters = field(default_factory=RequestCounters)
    requests_from_csn: RequestCounters = field(default_factory=RequestCounters)

    # -- recording ---------------------------------------------------------

    def record_path_choice(self, source_selfish: bool, contains_csn: bool) -> None:
        """Count the composition of the path the source actually chose."""
        if source_selfish:
            self.csn_paths_chosen += 1
            if not contains_csn:
                self.csn_csn_free_paths += 1
        else:
            self.nn_paths_chosen += 1
            if not contains_csn:
                self.nn_csn_free_paths += 1

    def record_request(
        self, source_selfish: bool, responder_selfish: bool, forwarded: bool
    ) -> None:
        """Count one forwarding request and its outcome."""
        counters = self.requests_from_csn if source_selfish else self.requests_from_nn
        counters.record(responder_selfish, forwarded)

    def record_game(self, source_selfish: bool, success: bool) -> None:
        """Count one finished game (packet delivered or dropped)."""
        if source_selfish:
            self.csn_originated += 1
            if success:
                self.csn_delivered += 1
        else:
            self.nn_originated += 1
            if success:
                self.nn_delivered += 1

    # -- derived metrics -----------------------------------------------------

    @property
    def cooperation_level(self) -> float:
        """§6.2: fraction of NN-originated packets that reached the destination."""
        if self.nn_originated == 0:
            return 0.0
        return self.nn_delivered / self.nn_originated

    @property
    def csn_delivery_level(self) -> float:
        """Fraction of CSN-originated packets delivered (paper: near zero)."""
        if self.csn_originated == 0:
            return 0.0
        return self.csn_delivered / self.csn_originated

    @property
    def nn_csn_free_fraction(self) -> float:
        """Table 5's "CSN-free paths": chosen NN paths containing no CSN."""
        if self.nn_paths_chosen == 0:
            return 0.0
        return self.nn_csn_free_paths / self.nn_paths_chosen

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "TournamentStats") -> None:
        self.nn_originated += other.nn_originated
        self.nn_delivered += other.nn_delivered
        self.csn_originated += other.csn_originated
        self.csn_delivered += other.csn_delivered
        self.nn_paths_chosen += other.nn_paths_chosen
        self.nn_csn_free_paths += other.nn_csn_free_paths
        self.csn_paths_chosen += other.csn_paths_chosen
        self.csn_csn_free_paths += other.csn_csn_free_paths
        self.requests_from_nn.merge(other.requests_from_nn)
        self.requests_from_csn.merge(other.requests_from_csn)

    def to_dict(self) -> dict:
        return {
            "nn_originated": self.nn_originated,
            "nn_delivered": self.nn_delivered,
            "csn_originated": self.csn_originated,
            "csn_delivered": self.csn_delivered,
            "nn_paths_chosen": self.nn_paths_chosen,
            "nn_csn_free_paths": self.nn_csn_free_paths,
            "csn_paths_chosen": self.csn_paths_chosen,
            "csn_csn_free_paths": self.csn_csn_free_paths,
            "requests_from_nn": self.requests_from_nn.to_dict(),
            "requests_from_csn": self.requests_from_csn.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TournamentStats":
        stats = cls(
            **{
                k: int(v)
                for k, v in data.items()
                if k not in ("requests_from_nn", "requests_from_csn")
            }
        )
        stats.requests_from_nn = RequestCounters.from_dict(data["requests_from_nn"])
        stats.requests_from_csn = RequestCounters.from_dict(data["requests_from_csn"])
        return stats

"""Result records produced by a single Ad Hoc Network Game."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.node import Decision
from repro.paths.oracle import GameSetup

__all__ = ["GameResult"]


@dataclass(frozen=True)
class GameResult:
    """Everything that happened in one game.

    ``decisions`` is aligned with the first ``len(decisions)`` intermediates
    of the chosen path: only nodes that actually received the packet made a
    decision.  ``drop_index`` is the path position of the node that discarded
    the packet, or ``None`` on success.
    """

    setup: GameSetup
    chosen_path_index: int
    decisions: tuple[Decision, ...]
    success: bool

    @property
    def chosen_path(self) -> tuple[int, ...]:
        return self.setup.paths[self.chosen_path_index]

    @property
    def drop_index(self) -> int | None:
        """Index into the chosen path of the dropping node, if any."""
        if self.success:
            return None
        return len(self.decisions) - 1

    @property
    def dropper(self) -> int | None:
        """Id of the node that discarded the packet, if any."""
        idx = self.drop_index
        return None if idx is None else self.chosen_path[idx]

    def __post_init__(self) -> None:
        path = self.setup.paths[self.chosen_path_index]
        if len(self.decisions) > len(path):
            raise ValueError("more decisions than intermediates on the path")
        if self.success and len(self.decisions) != len(path):
            raise ValueError("successful game must have a decision per hop")

"""The paper's parameter tables, encoded as presets.

* Table 1 — tournament environments TE1–TE4 (CSN / normal node counts);
* Table 2 — hop-length distributions (in :mod:`repro.paths.distributions`);
* Table 3 — alternate-path counts (ibid.);
* §6.1 "Parameters of GA" — population 100, tournament size 50, crossover
  0.9, mutation 0.001, 300 rounds, 500 generations, 60 repetitions.

``tests/test_config_presets.py`` asserts these presets against the paper's
published numbers, so any drift fails loudly.

The mobility preset group is an *extension* (the paper has no explicit
topology): named :class:`repro.mobility.MobilityConfig` bundles whose
densities are sized for the paper's 100-node population (radio range 0.3 is
~2.5x the unit-square connectivity threshold at n=100, so transient
partitions are vanishingly rare).
"""

from __future__ import annotations

from repro.config.mobility import MobilityConfig
from repro.reputation.exchange import ExchangeConfig
from repro.tournament.environment import TournamentEnvironment

__all__ = [
    "PAPER_TOURNAMENT_SIZE",
    "PAPER_POPULATION",
    "PAPER_ROUNDS",
    "PAPER_GENERATIONS",
    "PAPER_REPLICATIONS",
    "PAPER_CROSSOVER_RATE",
    "PAPER_MUTATION_RATE",
    "TE1",
    "TE2",
    "TE3",
    "TE4",
    "paper_environments",
    "environment_with_csn",
    "MOBILITY_PRESETS",
    "mobility_preset",
    "EXCHANGE_PRESETS",
    "exchange_preset",
]

#: §6.1: players per tournament (both NN and CSN).
PAPER_TOURNAMENT_SIZE = 50
#: §6.1: total number of normal nodes (the GA population size).
PAPER_POPULATION = 100
#: §6.1: rounds per tournament.
PAPER_ROUNDS = 300
#: §6.1: GA generations.
PAPER_GENERATIONS = 500
#: §6.1: independent repetitions averaged in every reported figure.
PAPER_REPLICATIONS = 60
#: §6.1: one-point crossover probability.
PAPER_CROSSOVER_RATE = 0.9
#: §6.1: per-bit mutation probability.
PAPER_MUTATION_RATE = 0.001

# Table 1: number of CSN per environment (out of 50 seats).
TE1 = TournamentEnvironment("TE1", PAPER_TOURNAMENT_SIZE, 0)
TE2 = TournamentEnvironment("TE2", PAPER_TOURNAMENT_SIZE, 10)
TE3 = TournamentEnvironment("TE3", PAPER_TOURNAMENT_SIZE, 25)
TE4 = TournamentEnvironment("TE4", PAPER_TOURNAMENT_SIZE, 30)


def paper_environments() -> tuple[TournamentEnvironment, ...]:
    """All four Table 1 environments, in order."""
    return (TE1, TE2, TE3, TE4)


def environment_with_csn(
    n_selfish: int, tournament_size: int = PAPER_TOURNAMENT_SIZE
) -> TournamentEnvironment:
    """A single custom environment (used by sweeps and evaluation case 2)."""
    return TournamentEnvironment(
        f"TE(csn={n_selfish})", tournament_size, n_selfish
    )


#: Named mobility scenarios (extension).  "none" is the paper's random
#: oracle; the others drive a DynamicTopology through a MobilePathOracle.
MOBILITY_PRESETS: dict[str, MobilityConfig] = {
    "none": MobilityConfig(),
    "waypoint": MobilityConfig(model="waypoint"),
    "gauss-markov": MobilityConfig(model="gauss-markov"),
    "churn": MobilityConfig(model="waypoint", churn_leave=0.01, churn_return=0.5),
}


def mobility_preset(name: str) -> MobilityConfig:
    """Look up a mobility preset by name (``"none"``, ``"waypoint"``, ...)."""
    try:
        return MOBILITY_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown mobility preset {name!r};"
            f" available: {sorted(MOBILITY_PRESETS)}"
        ) from None


#: Named second-hand reputation exchange regimes (extension, refs [1][10]).
#: "none" is the paper's first-hand-only collection; "core" reproduces
#: CORE's positive-observations-only gossip; "full" also spreads negative
#: second-hand reports, CONFIDANT-style.
EXCHANGE_PRESETS: dict[str, ExchangeConfig] = {
    "none": ExchangeConfig(),
    "core": ExchangeConfig(enabled=True, interval=5, fanout=2, positive_only=True),
    "full": ExchangeConfig(enabled=True, interval=5, fanout=2, positive_only=False),
}


def exchange_preset(name: str) -> ExchangeConfig:
    """Look up an exchange preset by name (``"none"``, ``"core"``, ``"full"``)."""
    try:
        return EXCHANGE_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown exchange preset {name!r};"
            f" available: {sorted(EXCHANGE_PRESETS)}"
        ) from None

"""Configuration dataclasses for the GA and the simulation substrate.

Both are immutable, validated on construction, and round-trip through plain
dicts (for JSON result files).  Defaults are the paper's values.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any

from repro.config.presets import (
    PAPER_CROSSOVER_RATE,
    PAPER_MUTATION_RATE,
    PAPER_POPULATION,
    PAPER_ROUNDS,
)
from repro.config.mobility import MobilityConfig
from repro.core.payoff import PayoffConfig
from repro.reputation.exchange import ExchangeConfig
from repro.utils.validation import check_probability

__all__ = ["GAConfig", "SimulationConfig"]

_SELECTION_METHODS = ("tournament", "roulette")
_PATH_MODES = ("shorter", "longer")


@dataclass(frozen=True)
class GAConfig:
    """Genetic algorithm parameters (§5, §6.1).

    ``elitism`` (number of top strategies copied unchanged) defaults to 0 —
    the paper uses none — and exists for the ablation benches.
    """

    population_size: int = PAPER_POPULATION
    crossover_rate: float = PAPER_CROSSOVER_RATE
    mutation_rate: float = PAPER_MUTATION_RATE
    selection: str = "tournament"
    tournament_size: int = 2
    elitism: int = 0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError(
                f"population_size must be >= 2, got {self.population_size}"
            )
        check_probability(self.crossover_rate, "crossover_rate")
        check_probability(self.mutation_rate, "mutation_rate")
        if self.selection not in _SELECTION_METHODS:
            raise ValueError(
                f"selection must be one of {_SELECTION_METHODS}, got {self.selection!r}"
            )
        if self.tournament_size < 1:
            raise ValueError(
                f"tournament_size must be >= 1, got {self.tournament_size}"
            )
        if not 0 <= self.elitism <= self.population_size:
            raise ValueError(
                f"elitism must be in [0, population_size], got {self.elitism}"
            )

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "GAConfig":
        return cls(**data)

    def with_(self, **changes: Any) -> "GAConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class SimulationConfig:
    """Everything about how one generation is evaluated in the network game.

    ``mobility`` selects the network substrate: with ``model="none"`` (the
    default, the paper's setting) games run on the random path oracle; any
    other model runs them on a :class:`repro.mobility.DynamicTopology`
    through the caching :class:`repro.mobility.MobilePathOracle`, in which
    case ``path_mode`` only matters for bookkeeping (routes come from the
    topology, not from the hop distributions).
    """

    rounds: int = PAPER_ROUNDS
    plays_per_environment: int = 1  # the paper's unspecified L (DESIGN.md §2.10)
    path_mode: str = "shorter"
    trust_bounds: tuple[float, ...] = (0.3, 0.6, 0.9)
    activity_band: float = 0.2
    payoffs: PayoffConfig = field(default_factory=PayoffConfig)
    exchange: ExchangeConfig = field(default_factory=ExchangeConfig)
    mobility: MobilityConfig = field(default_factory=MobilityConfig)

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.plays_per_environment < 1:
            raise ValueError(
                f"plays_per_environment must be >= 1,"
                f" got {self.plays_per_environment}"
            )
        if self.path_mode not in _PATH_MODES:
            raise ValueError(
                f"path_mode must be one of {_PATH_MODES}, got {self.path_mode!r}"
            )
        object.__setattr__(
            self, "trust_bounds", tuple(float(b) for b in self.trust_bounds)
        )

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        # JSON has no tuples; emit lists so to_dict(from_dict(x)) == x holds
        # across a JSON round-trip.
        data["trust_bounds"] = list(self.trust_bounds)
        data["payoffs"]["forward_by_trust"] = list(self.payoffs.forward_by_trust)
        data["payoffs"]["discard_by_trust"] = list(self.payoffs.discard_by_trust)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SimulationConfig":
        data = dict(data)
        if isinstance(data.get("payoffs"), dict):
            payoffs = dict(data["payoffs"])
            for key in ("forward_by_trust", "discard_by_trust"):
                if key in payoffs:
                    payoffs[key] = tuple(payoffs[key])
            data["payoffs"] = PayoffConfig(**payoffs)
        if isinstance(data.get("exchange"), dict):
            data["exchange"] = ExchangeConfig(**data["exchange"])
        if isinstance(data.get("mobility"), dict):
            data["mobility"] = MobilityConfig(**data["mobility"])
        if "trust_bounds" in data:
            data["trust_bounds"] = tuple(data["trust_bounds"])
        return cls(**data)

    def with_(self, **changes: Any) -> "SimulationConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

"""Configuration: dataclasses for every tunable, plus the paper's presets."""

from repro.config.mobility import MobilityConfig
from repro.config.parameters import GAConfig, SimulationConfig
from repro.config.presets import (
    MOBILITY_PRESETS,
    PAPER_GENERATIONS,
    PAPER_POPULATION,
    PAPER_REPLICATIONS,
    PAPER_ROUNDS,
    PAPER_TOURNAMENT_SIZE,
    TE1,
    TE2,
    TE3,
    TE4,
    environment_with_csn,
    mobility_preset,
    paper_environments,
)

__all__ = [
    "GAConfig",
    "SimulationConfig",
    "MobilityConfig",
    "MOBILITY_PRESETS",
    "mobility_preset",
    "TE1",
    "TE2",
    "TE3",
    "TE4",
    "paper_environments",
    "environment_with_csn",
    "PAPER_POPULATION",
    "PAPER_TOURNAMENT_SIZE",
    "PAPER_ROUNDS",
    "PAPER_GENERATIONS",
    "PAPER_REPLICATIONS",
]

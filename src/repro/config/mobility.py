"""Mobility scenario configuration.

:class:`MobilityConfig` is the single knob bundle for the mobility subsystem:
which model moves the nodes, how fast, how the unit-disk graph is derived
from positions, and how often the topology advances relative to the game.
It lives here (a dependency-free leaf of :mod:`repro.config`) rather than in
:mod:`repro.mobility` so that embedding it in ``SimulationConfig`` and the
preset tables does not drag the whole simulation stack into the config
import chain; :mod:`repro.mobility` re-exports it as the canonical name.

Speeds and ranges are in unit-square lengths per topology step (one step is
one simulated "tick" of node movement; see ``step_every`` for how ticks map
onto game rounds).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any

__all__ = ["MobilityConfig", "MOBILITY_MODELS", "ROUTE_CACHE_POLICIES"]

#: Recognised mobility model names ("none" means the paper's random oracle).
MOBILITY_MODELS = ("none", "waypoint", "gauss-markov")

#: Recognised route-cache policy names.  Mirrored (and kept in lockstep by
#: a test) from :data:`repro.network.provider.ROUTE_CACHE_POLICIES` so this
#: module stays a dependency-free leaf of :mod:`repro.config`.
ROUTE_CACHE_POLICIES = ("exact", "approx")

_STEP_MODES = ("round", "tournament")


@dataclass(frozen=True)
class MobilityConfig:
    """Everything about how (and whether) nodes move.

    ``step_every`` controls when the topology advances: ``"round"`` steps it
    once per tournament round (detected by the oracle from the draw count),
    ``"tournament"`` once per tournament (driven by the evaluation loop), and
    an integer ``n`` once every ``n`` oracle draws.
    """

    model: str = "none"
    # RandomWaypoint parameters
    speed_min: float = 0.005
    speed_max: float = 0.02
    pause_time: float = 2.0
    # GaussMarkov parameters
    mean_speed: float = 0.01
    alpha: float = 0.85
    speed_sigma: float = 0.005
    direction_sigma: float = 0.4
    # node churn (0.0 disables; applies on top of either model)
    churn_leave: float = 0.0
    churn_return: float = 0.5
    # unit-disk graph derivation
    radio_range: float = 0.3
    tolerance: float = 0.0
    # oracle parameters
    max_paths: int = 3
    max_hops: int = 10
    step_every: str | int = "round"
    # route-provider cache policy: "exact" serves cached routes only for the
    # epoch they were computed under (bit-identical, the default); "approx"
    # serves them while the topology has drifted at most drift_budget epochs
    # (statistically equivalent, validated like the turbo engine)
    route_cache: str = "exact"
    drift_budget: int = 8

    def __post_init__(self) -> None:
        if self.model not in MOBILITY_MODELS:
            raise ValueError(
                f"model must be one of {MOBILITY_MODELS}, got {self.model!r}"
            )
        if not 0.0 <= self.speed_min <= self.speed_max:
            raise ValueError(
                f"need 0 <= speed_min <= speed_max,"
                f" got {self.speed_min}/{self.speed_max}"
            )
        if self.pause_time < 0.0:
            raise ValueError(f"pause_time must be >= 0, got {self.pause_time}")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.mean_speed < 0.0 or self.speed_sigma < 0.0:
            raise ValueError("mean_speed and speed_sigma must be >= 0")
        for name in ("churn_leave", "churn_return"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.tolerance < 0.0:
            raise ValueError(f"tolerance must be >= 0, got {self.tolerance}")
        if self.max_paths < 1 or self.max_hops < 2:
            raise ValueError("need max_paths >= 1 and max_hops >= 2")
        if isinstance(self.step_every, str):
            if self.step_every not in _STEP_MODES:
                raise ValueError(
                    f"step_every must be an int or one of {_STEP_MODES},"
                    f" got {self.step_every!r}"
                )
        elif self.step_every < 1:
            raise ValueError(f"step_every must be >= 1, got {self.step_every}")
        if self.route_cache not in ROUTE_CACHE_POLICIES:
            raise ValueError(
                f"route_cache must be one of {ROUTE_CACHE_POLICIES},"
                f" got {self.route_cache!r}"
            )
        if self.drift_budget < 0:
            raise ValueError(
                f"drift_budget must be >= 0, got {self.drift_budget}"
            )

    @property
    def enabled(self) -> bool:
        """Whether a mobility model (rather than the random oracle) is active."""
        return self.model != "none"

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MobilityConfig":
        return cls(**data)

    def with_(self, **changes: Any) -> "MobilityConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

"""Experiment results: aggregation over replications and JSON persistence.

The paper reports every number as the average of 60 independent runs; this
module provides the corresponding aggregations over however many
replications were configured:

* mean cooperation series over generations (Fig. 4 curves),
* final per-environment cooperation and CSN-free path fractions (Table 5),
* pooled forwarding-request fractions (Table 6),
* final populations for the strategy censuses (Tables 7–9).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.experiments.replication import ReplicationResult
from repro.game.stats import RequestCounters, TournamentStats

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """All replications of one experiment plus its config summary."""

    config: dict  # ExperimentConfig.describe() output (JSON-friendly)
    replications: list[ReplicationResult]
    #: experiment-wide aggregated telemetry (``None`` unless the run was
    #: telemetry-enabled): ``{"metrics": <merged registry snapshot>,
    #: "events": [...], "dropped_events": ..., "wall_s": ...}``
    telemetry: dict | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.replications:
            raise ValueError("an experiment needs at least one replication")
        lengths = {r.history.n_generations for r in self.replications}
        if len(lengths) != 1:
            raise ValueError(f"replications disagree on generations: {lengths}")

    # -- Fig. 4 ----------------------------------------------------------------

    def cooperation_matrix(self) -> np.ndarray:
        """(replications, generations) cooperation levels."""
        return np.vstack([r.history.cooperation_series() for r in self.replications])

    def mean_cooperation_series(self) -> np.ndarray:
        """Mean cooperation per generation over replications (a Fig. 4 curve)."""
        return self.cooperation_matrix().mean(axis=0)

    def final_cooperation(self) -> tuple[float, float]:
        """(mean, std) of the last generation's cooperation level."""
        finals = self.cooperation_matrix()[:, -1]
        return float(finals.mean()), float(finals.std())

    # -- Table 5 -----------------------------------------------------------------

    def environments(self) -> list[str]:
        return list(self.replications[0].final_per_env)

    def final_env_stats(self, env: str) -> TournamentStats:
        """Final-generation stats for one environment, pooled over replications."""
        pooled = TournamentStats()
        for rep in self.replications:
            pooled.merge(rep.final_per_env[env])
        return pooled

    def per_env_cooperation(self) -> dict[str, float]:
        """Final cooperation level per environment (Table 5, cols 2–3)."""
        return {
            env: self.final_env_stats(env).cooperation_level
            for env in self.environments()
        }

    def per_env_csn_free(self) -> dict[str, float]:
        """Final CSN-free chosen-path fraction per environment (Table 5, cols 4–5)."""
        return {
            env: self.final_env_stats(env).nn_csn_free_fraction
            for env in self.environments()
        }

    # -- Table 6 -----------------------------------------------------------------

    def pooled_requests(self) -> tuple[RequestCounters, RequestCounters]:
        """Final-generation request counters pooled over envs and replications.

        Returns ``(from_normal_nodes, from_csn)``.
        """
        from_nn = RequestCounters()
        from_csn = RequestCounters()
        for rep in self.replications:
            from_nn.merge(rep.final_overall.requests_from_nn)
            from_csn.merge(rep.final_overall.requests_from_csn)
        return from_nn, from_csn

    # -- Tables 7-9 ----------------------------------------------------------------

    def final_populations(self) -> list[list[int]]:
        """The final strategy population of every replication (packed ints)."""
        return [list(r.final_population) for r in self.replications]

    # -- persistence ------------------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "config": self.config,
            "replications": [r.to_dict() for r in self.replications],
        }
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        return cls(
            config=data["config"],
            replications=[
                ReplicationResult.from_dict(r) for r in data["replications"]
            ],
            telemetry=data.get("telemetry"),
        )

    def save(self, path: str | Path) -> Path:
        """Write the result as JSON; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict()))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentResult":
        return cls.from_dict(json.loads(Path(path).read_text()))

    @classmethod
    def merge_runs(cls, results: Iterable["ExperimentResult"]) -> "ExperimentResult":
        """Concatenate replications of several runs of the *same* config."""
        results = list(results)
        if not results:
            raise ValueError("nothing to merge")
        base = results[0].config
        reps: list[ReplicationResult] = []
        for res in results:
            if res.config.get("case") != base.get("case"):
                raise ValueError("cannot merge results from different cases")
            reps.extend(res.replications)
        return cls(config=base, replications=reps)

"""Checkpoint/resume for replications: durable generation-boundary snapshots.

A 500-generation replication that dies at generation 499 should lose one
generation, not five hundred.  :class:`CheckpointStore` persists everything a
replication needs to continue — the GA population, the shared random
generator, the path oracle (reputation matrices are rebuilt per generation by
``engine.reset_generation``, so the oracle and rng are the only cross-
generation simulation state), the history so far, the last evaluated
generation's per-environment statistics, and a telemetry registry snapshot —
into a content-addressed layout keyed by the run's ``config_hash``::

    <root>/<config_hash[:16]>/rep0003/gen000042.pkl    # pickled state blob
    <root>/<config_hash[:16]>/rep0003/gen000042.json   # manifest (validated)

The manifest is an exact-key contract
(:func:`repro.utils.validation.validate_checkpoint_manifest`) carrying the
blob's sha256, so a torn write or bit rot is detected *before* unpickling;
corrupt or partial checkpoints are skipped in favour of the newest intact
one.  Both files are written to a temporary name and atomically renamed —
the manifest last — so a crash mid-write can never produce a manifest that
points at a missing or half-written blob.

Bit-identity contract
---------------------
The rng, the oracle and the last generation's statistics are pickled in a
*single* blob, so the object identity between the replication loop's
generator and the oracle's (they share one ``np.random.Generator``) survives
the round trip.  A run resumed from any generation boundary is therefore
bit-identical to an uninterrupted run — pinned by
``tests/test_experiments_checkpoint.py`` across engines and oracles, and
enforced end-to-end by the CI ``fault-tolerance`` job
(``scripts/ci_crash_resume.py``).

Crash injection
---------------
Setting ``REPRO_CHECKPOINT_CRASH_AFTER=N`` SIGKILLs the current process the
moment it finishes writing its ``N``-th checkpoint — a deterministic way for
tests and CI to die mid-run with intact checkpoints on disk.  Unset (the
default) it does nothing.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import signal
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.telemetry.manifest import config_hash
from repro.utils.validation import validate_checkpoint_manifest

__all__ = ["CheckpointStore", "Checkpoint", "CHECKPOINT_VERSION", "CRASH_ENV"]

#: Checkpoint schema version (bump on any state-blob or manifest change).
CHECKPOINT_VERSION = 1

#: Environment variable enabling deterministic crash injection (see module
#: docstring); counts checkpoints written by *this process*.
CRASH_ENV = "REPRO_CHECKPOINT_CRASH_AFTER"

_checkpoints_written = 0  # process-wide, for crash injection only


@dataclass(frozen=True)
class Checkpoint:
    """One intact checkpoint: its manifest plus the restored state blob."""

    generation: int
    state: dict[str, Any]
    manifest: dict[str, Any]


class CheckpointStore:
    """Content-addressed store of replication checkpoints under ``root``."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # -- layout ---------------------------------------------------------------

    @staticmethod
    def key_for(config) -> str:
        """The content address of a config (its ``config_hash`` prefix).

        Two configs that simulate identically (telemetry settings aside —
        they never change results) share a key; any change to the case,
        seed, engine, scale or simulation parameters yields a fresh one, so
        a resumed run can never pick up another experiment's state.
        """
        return config_hash(config.describe())[:16]

    def replication_dir(self, config, replication: int) -> Path:
        return self.root / self.key_for(config) / f"rep{replication:04d}"

    def has_checkpoints(self, config) -> bool:
        """Whether any replication of ``config`` left a checkpoint here.

        The cheap existence probe behind the CLI's ``--resume`` guard: a
        resume against a store with nothing matching this config's hash is
        a misconfiguration (wrong directory, changed parameters), not a
        quiet fresh start.
        """
        return any((self.root / self.key_for(config)).glob("rep*/gen*.json"))

    # -- write ----------------------------------------------------------------

    def save(
        self,
        config,
        replication: int,
        generation: int,
        state: dict[str, Any],
        keep: int = 2,
    ) -> Path:
        """Persist ``state`` for a generation boundary; returns the manifest
        path.

        ``keep`` bounds the number of checkpoints retained per replication
        (newest first); older ones are pruned after the new pair lands.
        """
        if generation < 0:
            raise ValueError(f"generation must be >= 0, got {generation}")
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        rep_dir = self.replication_dir(config, replication)
        rep_dir.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        state_name = f"gen{generation:06d}.pkl"
        manifest = validate_checkpoint_manifest(
            {
                "checkpoint_version": CHECKPOINT_VERSION,
                "config_hash": config_hash(config.describe()),
                "replication": int(replication),
                "generation": int(generation),
                "state_file": state_name,
                "state_sha256": hashlib.sha256(blob).hexdigest(),
            },
            name=f"rep{replication} gen{generation} checkpoint",
        )
        # blob first, manifest second, both via atomic rename: a crash at
        # any point leaves either no manifest or a manifest whose blob is
        # already complete on disk
        _atomic_write_bytes(rep_dir / state_name, blob)
        manifest_path = rep_dir / f"gen{generation:06d}.json"
        _atomic_write_bytes(
            manifest_path,
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode(),
        )
        self._prune(rep_dir, keep)
        _crash_if_injected()
        return manifest_path

    @staticmethod
    def _prune(rep_dir: Path, keep: int) -> None:
        manifests = sorted(rep_dir.glob("gen*.json"))
        for stale in manifests[:-keep]:
            # manifest first: once it is gone the blob is unreferenced and
            # its disappearance can never strand a reader
            stale.unlink(missing_ok=True)
            stale.with_suffix(".pkl").unlink(missing_ok=True)

    # -- read -----------------------------------------------------------------

    def load_latest(self, config, replication: int) -> Checkpoint | None:
        """The newest intact checkpoint for ``(config, replication)``.

        Walks manifests newest-first, skipping any that fail schema
        validation, belong to a different config hash, reference a missing
        blob, or whose blob digest disagrees with the manifest.  Returns
        ``None`` when nothing usable exists.
        """
        rep_dir = self.replication_dir(config, replication)
        if not rep_dir.is_dir():
            return None
        expected_hash = config_hash(config.describe())
        for manifest_path in sorted(rep_dir.glob("gen*.json"), reverse=True):
            checkpoint = self._load_one(
                manifest_path, expected_hash, replication
            )
            if checkpoint is not None:
                return checkpoint
        return None

    @staticmethod
    def _load_one(
        manifest_path: Path, expected_hash: str, replication: int
    ) -> Checkpoint | None:
        try:
            manifest = validate_checkpoint_manifest(
                json.loads(manifest_path.read_text()), name=str(manifest_path)
            )
        except (OSError, json.JSONDecodeError, ValueError):
            return None
        if (
            manifest["config_hash"] != expected_hash
            or manifest["replication"] != replication
        ):
            return None
        blob_path = manifest_path.parent / manifest["state_file"]
        try:
            blob = blob_path.read_bytes()
        except OSError:
            return None
        if hashlib.sha256(blob).hexdigest() != manifest["state_sha256"]:
            return None
        try:
            state = pickle.loads(blob)
        except Exception:
            return None
        if not isinstance(state, dict):
            return None
        return Checkpoint(
            generation=manifest["generation"], state=state, manifest=manifest
        )


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via a same-directory temp file + rename."""
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def _crash_if_injected() -> None:
    """SIGKILL this process if crash injection says its quota is reached."""
    quota = os.environ.get(CRASH_ENV)
    if not quota:
        return
    global _checkpoints_written
    _checkpoints_written += 1
    if _checkpoints_written >= int(quota):
        os.kill(os.getpid(), signal.SIGKILL)

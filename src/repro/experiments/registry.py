"""Reproduction registry: one entry per paper artefact (figure/table).

A :class:`ReproductionSession` owns the expensive per-case experiment runs
and shares them between artefacts (Fig. 4 needs cases 1–4; Tables 5–9 reuse
cases 3–4), optionally persisting raw results as JSON so reports can be
re-rendered without re-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.analysis import reporting
from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import run_experiment
from repro.parallel.progress import ProgressPrinter
from repro.telemetry.manifest import write_run_manifest

__all__ = ["ARTEFACTS", "ArtefactSpec", "ReproductionSession"]


@dataclass(frozen=True)
class ArtefactSpec:
    """One reproducible paper artefact."""

    artefact_id: str
    title: str
    cases: tuple[str, ...]
    render: Callable[["ReproductionSession"], str]

    def __str__(self) -> str:
        return f"{self.artefact_id}: {self.title} (cases: {', '.join(self.cases)})"


class ReproductionSession:
    """Runs and caches the per-case experiments behind all artefacts."""

    def __init__(
        self,
        scale: str = "default",
        seed: int = 2007,
        engine: str = "fast",
        kernel: str | None = None,
        processes: int | None = None,
        cache_dir: str | Path | None = None,
        verbose: bool = False,
        route_cache: str | None = None,
        drift_budget: int | None = None,
        telemetry: bool = False,
        telemetry_dir: str | Path | None = None,
        shards: int | None = None,
        checkpoint_dir: str | Path | None = None,
        resume: bool = True,
    ):
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; available: {sorted(SCALES)}")
        self.scale = scale
        self.seed = seed
        self.engine = engine
        # kernel backend for turbo/fused engines (None keeps the config
        # default, "auto")
        self.kernel = kernel
        self.processes = processes
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.verbose = verbose
        # mobile-oracle route-cache overrides (None keeps the config default,
        # i.e. the bit-identical exact policy)
        self.route_cache = route_cache
        self.drift_budget = drift_budget
        #: when set, every freshly-run case records metrics and leaves a
        #: schema-validated manifest + JSONL metric dump in telemetry_dir
        self.telemetry = telemetry
        self.telemetry_dir = Path(
            telemetry_dir if telemetry_dir is not None else "results/telemetry"
        )
        #: shard count handed to :func:`run_experiment` (None = one pool
        #: task per replication)
        self.shards = shards
        #: checkpoint store root (None disables checkpoint/resume); with
        #: ``resume`` every fresh run continues from intact checkpoints
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.resume = resume
        #: manifest paths written this session, keyed by case name
        self.manifests: dict[str, Path] = {}
        self._results: dict[str, ExperimentResult] = {}

    # -- case execution -------------------------------------------------------

    def config_for(self, case_name: str) -> ExperimentConfig:
        # resolved through the scenario layer, so an artefact case, the
        # equivalent scenario file, and a service submission can never
        # diverge (same overrides order, same config_hash)
        from repro.scenarios import build_scenario_payload, resolve_scenario

        payload = build_scenario_payload(
            case_name,
            self.scale,
            overrides={
                "seed": self.seed,
                "engine": self.engine,
                "kernel": self.kernel,
                "route_cache": self.route_cache,
                "drift_budget": self.drift_budget,
                "telemetry": True if self.telemetry else None,
            },
        )
        return resolve_scenario(payload).config

    def _cache_path(self, case_name: str) -> Path | None:
        if self.cache_dir is None:
            return None
        if self.route_cache in (None, "exact"):
            suffix = ""
        else:
            # the budget changes the results: a budget-8 run must never be
            # served a cached budget-240 result (or vice versa)
            budget = "" if self.drift_budget is None else f"{self.drift_budget}"
            suffix = f"_{self.route_cache}{budget}"
        if self.kernel not in (None, "auto", "numpy"):
            # a compiled-kernel run is only statistically equivalent — never
            # serve it from (or into) the reference-kernel cache slot
            suffix += f"_{self.kernel}"
        return (
            self.cache_dir
            / f"{case_name}_{self.scale}_seed{self.seed}{suffix}.json"
        )

    def result_for(self, case_name: str) -> ExperimentResult:
        """The experiment result for a case, computed/loaded at most once."""
        if case_name in self._results:
            return self._results[case_name]
        cache = self._cache_path(case_name)
        if cache is not None and cache.exists():
            result = ExperimentResult.load(cache)
        else:
            progress = (
                ProgressPrinter(f"{case_name} [{self.scale}]") if self.verbose else None
            )
            result = run_experiment(
                self.config_for(case_name),
                processes=self.processes,
                progress=progress,
                shards=self.shards,
                checkpoint_dir=self.checkpoint_dir,
                resume=self.resume,
            )
            if cache is not None:
                result.save(cache)
        if result.telemetry is not None:
            self.manifests[case_name] = write_run_manifest(
                self.telemetry_dir,
                f"{case_name}_{self.scale}",
                result.config,
                result.telemetry,
                run_extra={
                    "checkpoint_dir": (
                        str(self.checkpoint_dir)
                        if self.checkpoint_dir is not None
                        else "none"
                    )
                },
            )
        self._results[case_name] = result
        return result

    # -- artefacts -------------------------------------------------------------

    def render(self, artefact_id: str) -> str:
        """Run whatever the artefact needs and return its printable report."""
        spec = ARTEFACTS.get(artefact_id)
        if spec is None:
            raise KeyError(
                f"unknown artefact {artefact_id!r}; available: {sorted(ARTEFACTS)}"
            )
        return spec.render(self)

    def render_all(self) -> dict[str, str]:
        """All artefact reports, in registry order."""
        return {aid: self.render(aid) for aid in ARTEFACTS}


# -- artefact render functions ----------------------------------------------


def _render_fig4(session: ReproductionSession) -> str:
    results = {
        name: session.result_for(name)
        for name in ("case1", "case2", "case3", "case4")
    }
    return reporting.render_fig4(results)


def _render_table5(session: ReproductionSession) -> str:
    return reporting.render_table5(
        session.result_for("case3"), session.result_for("case4")
    )


def _render_table6(session: ReproductionSession) -> str:
    return reporting.render_table6(
        session.result_for("case3"), session.result_for("case4")
    )


def _render_table7(session: ReproductionSession) -> str:
    return reporting.render_table7(
        session.result_for("case3"), session.result_for("case4")
    )


def _render_table8(session: ReproductionSession) -> str:
    return reporting.render_table8_9(
        session.result_for("case3"), "case 3 (short paths) - Table 8"
    )


def _render_table9(session: ReproductionSession) -> str:
    return reporting.render_table8_9(
        session.result_for("case4"), "case 4 (long paths) - Table 9"
    )


def _render_mobility(session: ReproductionSession) -> str:
    results = {
        name: session.result_for(name)
        for name in ("case1", "mobile_waypoint", "mobile_gauss")
    }
    return reporting.render_mobility(results)


def _render_exchange(session: ReproductionSession) -> str:
    results = {
        name: session.result_for(name)
        for name in ("exchange_off", "exchange_core", "exchange_full")
    }
    return reporting.render_exchange(results)


#: Every reproducible artefact, keyed by id.
ARTEFACTS: dict[str, ArtefactSpec] = {
    "fig4": ArtefactSpec(
        "fig4",
        "The evolution of cooperation (all evaluation cases)",
        ("case1", "case2", "case3", "case4"),
        _render_fig4,
    ),
    "table5": ArtefactSpec(
        "table5",
        "Cooperation levels per environment (cases 3-4)",
        ("case3", "case4"),
        _render_table5,
    ),
    "table6": ArtefactSpec(
        "table6",
        "Response to packet forwarding requests (cases 3-4)",
        ("case3", "case4"),
        _render_table6,
    ),
    "table7": ArtefactSpec(
        "table7",
        "Most popular evolved strategies (cases 3-4)",
        ("case3", "case4"),
        _render_table7,
    ),
    "table8": ArtefactSpec(
        "table8",
        "Evolved sub-strategies, case 3 (short paths)",
        ("case3",),
        _render_table8,
    ),
    "table9": ArtefactSpec(
        "table9",
        "Evolved sub-strategies, case 4 (long paths)",
        ("case4",),
        _render_table9,
    ),
    "mobility": ArtefactSpec(
        "mobility",
        "Extension: cooperation under node mobility (waypoint, Gauss-Markov)",
        ("case1", "mobile_waypoint", "mobile_gauss"),
        _render_mobility,
    ),
    "exchange": ArtefactSpec(
        "exchange",
        "Extension: second-hand reputation exchange (off, CORE, CONFIDANT)",
        ("exchange_off", "exchange_core", "exchange_full"),
        _render_exchange,
    ),
}

"""Top-level experiment configuration.

An :class:`ExperimentConfig` pins everything a replication needs — the
evaluation case, GA parameters, simulation parameters, engine choice, scale
and master seed — so that a replication is a pure function of
``(config, replication_index)``.

Scale presets
-------------
``paper``    — the paper's full scale (500 generations x 300 rounds x 60
               replications); hours of CPU, provided for completeness.
``default``  — the documented reduced scale used for the shipped
               reproduction (EXPERIMENTS.md): same population and
               environments, fewer generations/rounds/replications.
``smoke``    — seconds-scale sanity runs for tests and CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.config.parameters import GAConfig, SimulationConfig
from repro.config.presets import PAPER_GENERATIONS, PAPER_REPLICATIONS
from repro.experiments.cases import EvaluationCase, get_case
from repro.telemetry.config import TelemetryConfig

__all__ = ["ExperimentConfig", "SCALES"]

#: (generations, rounds, replications) per scale preset.
SCALES: dict[str, tuple[int, int, int]] = {
    "paper": (PAPER_GENERATIONS, 300, PAPER_REPLICATIONS),
    "default": (60, 100, 4),
    "smoke": (3, 8, 1),
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Complete, self-contained description of one experiment."""

    case: EvaluationCase
    generations: int = 60
    replications: int = 4
    seed: int = 2007  # the paper's publication year, for flavour
    engine: str = "fast"
    #: compute-kernel backend for engines that support pluggable kernels
    #: (turbo/fused/stacked): "numpy" is the always-available bit-pinned
    #: reference, "numba" the optional compiled backend (``.[kernels]``
    #: extra, statistical-equivalence contract), "auto" picks numba when
    #: installed.  Pin "numpy" when cross-machine bit-reproducibility
    #: matters — "auto" resolves per machine.
    kernel: str = "auto"
    ga: GAConfig = field(default_factory=GAConfig)
    sim: SimulationConfig = field(default_factory=SimulationConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)

    def __post_init__(self) -> None:
        if self.generations < 1:
            raise ValueError(f"generations must be >= 1, got {self.generations}")
        if self.replications < 1:
            raise ValueError(f"replications must be >= 1, got {self.replications}")
        from repro.sim import ENGINES

        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {sorted(ENGINES)}, got {self.engine!r}"
            )
        from repro.sim.kernels import KERNEL_NAMES

        if self.kernel not in KERNEL_NAMES:
            raise ValueError(
                f"kernel must be one of {sorted(KERNEL_NAMES)},"
                f" got {self.kernel!r}"
            )
        if self.kernel == "numba" and not getattr(
            ENGINES[self.engine], "supports_kernel_backends", False
        ):
            raise ValueError(
                f"engine {self.engine!r} does not support kernel backends;"
                " kernel='numba' requires engine 'turbo' or 'fused'"
            )
        if self.sim.path_mode != self.case.path_mode:
            # keep sim in line with the case definition
            object.__setattr__(
                self, "sim", self.sim.with_(path_mode=self.case.path_mode)
            )
        if self.case.mobility != "none" and not self.sim.mobility.enabled:
            # the case names a mobility preset and the sim does not override
            from repro.config.presets import mobility_preset

            object.__setattr__(
                self,
                "sim",
                self.sim.with_(mobility=mobility_preset(self.case.mobility)),
            )
        if self.case.exchange != "none" and not self.sim.exchange.enabled:
            # the case names an exchange preset and the sim does not override
            from repro.config.presets import exchange_preset

            object.__setattr__(
                self,
                "sim",
                self.sim.with_(exchange=exchange_preset(self.case.exchange)),
            )
        for env in self.case.environments:
            if env.n_normal > self.ga.population_size:
                raise ValueError(
                    f"{env.name} needs {env.n_normal} normal players but the"
                    f" population has only {self.ga.population_size}"
                )

    # -- construction helpers -------------------------------------------------

    @classmethod
    def for_case(
        cls,
        case: str | EvaluationCase,
        scale: str = "default",
        **overrides: Any,
    ) -> "ExperimentConfig":
        """Build a config for a paper case at a named scale."""
        if isinstance(case, str):
            case = get_case(case)
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; available: {sorted(SCALES)}")
        generations, rounds, replications = SCALES[scale]
        config = cls(
            case=case,
            generations=overrides.pop("generations", generations),
            replications=overrides.pop("replications", replications),
            sim=overrides.pop(
                "sim", SimulationConfig(rounds=rounds, path_mode=case.path_mode)
            ),
            **overrides,
        )
        return config

    def with_(self, **changes: Any) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def with_route_cache(
        self,
        route_cache: str | None = None,
        drift_budget: int | None = None,
    ) -> "ExperimentConfig":
        """A copy with the mobile oracle's route-cache policy overridden.

        ``None`` keeps the current value; the single place the CLI and the
        reproduction session thread ``--route-cache``/``--drift-budget``
        through, so the two can never diverge.
        """
        overrides: dict[str, Any] = {}
        if route_cache is not None:
            overrides["route_cache"] = route_cache
        if drift_budget is not None:
            overrides["drift_budget"] = drift_budget
        if not overrides:
            return self
        return self.with_(
            sim=self.sim.with_(mobility=self.sim.mobility.with_(**overrides))
        )

    # -- summary ---------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """A JSON-friendly summary stored alongside results."""
        return {
            "case": self.case.name,
            "path_mode": self.case.path_mode,
            "environments": [
                {
                    "name": env.name,
                    "tournament_size": env.tournament_size,
                    "n_selfish": env.n_selfish,
                }
                for env in self.case.environments
            ],
            "generations": self.generations,
            "replications": self.replications,
            "seed": self.seed,
            "engine": self.engine,
            "kernel": self.kernel,
            "ga": self.ga.to_dict(),
            "sim": self.sim.to_dict(),
            "telemetry": self.telemetry.to_dict(),
        }

"""Experiment harness: the paper's evaluation cases, replication running,
result aggregation and the per-artefact reproduction registry."""

from repro.experiments.cases import CASES, EvaluationCase, get_case
from repro.experiments.checkpoint import Checkpoint, CheckpointStore
from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import ReplicationResult, run_replication
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import run_experiment

__all__ = [
    "EvaluationCase",
    "CASES",
    "get_case",
    "Checkpoint",
    "CheckpointStore",
    "ExperimentConfig",
    "run_replication",
    "ReplicationResult",
    "ExperimentResult",
    "run_experiment",
]

"""One independent replication: random initial strategies evolved for G
generations, with full per-generation bookkeeping.

A replication is a pure function of ``(config, replication_index)``: its
generator is derived from the master seed and the index via
``SeedSequence(seed, spawn_key=(index,))``, so results do not depend on
worker count or execution order (see :mod:`repro.parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.core.strategy import STRATEGY_LENGTH, Strategy
from repro.experiments.config import ExperimentConfig
from repro.game.stats import TournamentStats
from repro.ga.evolution import GeneticAlgorithm
from repro.ga.history import GenerationRecord, History
from repro.mobility import build_oracle
from repro.paths.distributions import HOP_MODES
from repro.paths.oracle import PathOracle, RandomPathOracle
from repro.reputation.activity import ActivityClassifier
from repro.reputation.trust import TrustTable
from repro.sim import make_engine
from repro.telemetry.harvest import harvest_oracle
from repro.telemetry.runtime import telemetry_session
from repro.tournament.evaluation import evaluate_generation
from repro.utils.rng import derive_generator

__all__ = ["ReplicationResult", "run_replication"]


@dataclass
class ReplicationResult:
    """Everything recorded about one replication."""

    replication: int
    history: History
    final_population: list[int]  # strategies of the last *evaluated* generation
    final_per_env: dict[str, TournamentStats]  # last generation's stats
    final_overall: TournamentStats
    #: telemetry export for this replication (``None`` unless the config
    #: enabled telemetry): ``{"metrics": ..., "events": ...,
    #: "dropped_events": ..., "wall_s": ...}`` — picklable, so workers ship
    #: it back to the parent for experiment-wide aggregation
    telemetry: dict | None = field(default=None, compare=False)

    def final_strategies(self) -> list[Strategy]:
        """The last evaluated population as :class:`Strategy` objects."""
        return [Strategy.from_int(v) for v in self.final_population]

    def to_dict(self) -> dict:
        data = {
            "replication": self.replication,
            "history": self.history.to_dict(),
            "final_population": list(self.final_population),
            "final_per_env": {
                name: stats.to_dict() for name, stats in self.final_per_env.items()
            },
            "final_overall": self.final_overall.to_dict(),
        }
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ReplicationResult":
        return cls(
            replication=int(data["replication"]),
            history=History.from_dict(data["history"]),
            final_population=[int(v) for v in data["final_population"]],
            final_per_env={
                name: TournamentStats.from_dict(stats)
                for name, stats in data["final_per_env"].items()
            },
            final_overall=TournamentStats.from_dict(data["final_overall"]),
            telemetry=data.get("telemetry"),
        )


def run_replication(config: ExperimentConfig, replication: int) -> ReplicationResult:
    """Run one full replication of ``config``.

    The population is evaluated ``config.generations`` times with
    ``config.generations - 1`` GA steps in between, so the reported final
    statistics and final population describe the same (last evaluated)
    generation.

    With telemetry enabled in the config, the replication runs inside its
    own :func:`telemetry_session` (each worker process records
    independently), harvests the oracle stack's layer counters at the end,
    and ships the picklable export on ``result.telemetry``.
    """
    if not config.telemetry.enabled:
        result, _oracle = _run_replication(config, replication)
        return result
    t0 = perf_counter()
    with telemetry_session(config.telemetry) as tel:
        result, oracle = _run_replication(config, replication)
        harvest_oracle(tel, oracle)
        export = tel.export()
    export["wall_s"] = perf_counter() - t0
    result.telemetry = export
    return result


def _run_replication(
    config: ExperimentConfig, replication: int
) -> tuple[ReplicationResult, PathOracle]:
    rng = derive_generator(config.seed, (replication,))
    sim = config.sim
    trust_table = TrustTable(bounds=sim.trust_bounds)
    activity = ActivityClassifier(band=sim.activity_band)
    engine = make_engine(
        config.engine,
        n_population=config.ga.population_size,
        max_selfish=config.case.max_selfish,
        trust_table=trust_table,
        activity=activity,
        payoffs=sim.payoffs,
    )
    if sim.mobility.enabled:
        # a moving unit-disk network over every node that can ever play
        node_ids = list(range(config.ga.population_size + config.case.max_selfish))
        oracle: PathOracle = build_oracle(sim.mobility, node_ids, rng)
    else:
        oracle = RandomPathOracle(rng, HOP_MODES[sim.path_mode])
    ga = GeneticAlgorithm(config.ga)
    population = ga.initial_population(STRATEGY_LENGTH, rng)

    history = History()
    last_result = None
    for generation in range(config.generations):
        strategies = [Strategy(bits) for bits in population]
        engine.set_strategies(strategies)
        result = evaluate_generation(
            engine,
            config.case.environments,
            rounds=sim.rounds,
            plays_per_environment=sim.plays_per_environment,
            oracle=oracle,
            rng=rng,
            exchange=sim.exchange,
        )
        history.append(
            GenerationRecord(
                generation=generation,
                cooperation=result.cooperation_level,
                cooperation_per_env={
                    name: stats.cooperation_level
                    for name, stats in result.per_environment.items()
                },
                mean_fitness=float(np.mean(result.fitness)),
                best_fitness=float(np.max(result.fitness)),
                mean_forwarding_fraction=float(
                    np.mean([s.forwarding_fraction() for s in strategies])
                ),
            )
        )
        last_result = result
        if generation < config.generations - 1:
            population = ga.next_generation(population, result.fitness, rng)

    assert last_result is not None
    result = ReplicationResult(
        replication=replication,
        history=history,
        final_population=[Strategy(bits).to_int() for bits in population],
        final_per_env=last_result.per_environment,
        final_overall=last_result.overall,
    )
    return result, oracle

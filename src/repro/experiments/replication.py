"""One independent replication: random initial strategies evolved for G
generations, with full per-generation bookkeeping.

A replication is a pure function of ``(config, replication_index)``: its
generator is derived from the master seed and the index via
``SeedSequence(seed, spawn_key=(index,))``, so results do not depend on
worker count or execution order (see :mod:`repro.parallel`).

With a ``checkpoint_dir``, the replication snapshots its complete state at
every generation boundary (population, rng, oracle, history, last
generation's statistics, telemetry registry) through
:class:`repro.experiments.checkpoint.CheckpointStore`, and — unless
``resume=False`` — continues from the newest intact checkpoint instead of
generation 0.  A resumed run is bit-identical to an uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.core.strategy import STRATEGY_LENGTH, Strategy
from repro.experiments.checkpoint import CheckpointStore
from repro.experiments.config import ExperimentConfig
from repro.game.stats import TournamentStats
from repro.ga.evolution import GeneticAlgorithm
from repro.ga.history import GenerationRecord, History
from repro.mobility import build_oracle
from repro.paths.distributions import HOP_MODES
from repro.paths.oracle import PathOracle, RandomPathOracle
from repro.reputation.activity import ActivityClassifier
from repro.reputation.trust import TrustTable
from repro.sim import make_engine
from repro.telemetry.harvest import harvest_oracle
from repro.telemetry.manifest import config_hash
from repro.telemetry.runtime import get_telemetry, telemetry_session
from repro.tournament.evaluation import evaluate_generation
from repro.utils.rng import derive_generator

__all__ = ["ReplicationResult", "run_replication"]


@dataclass
class ReplicationResult:
    """Everything recorded about one replication."""

    replication: int
    history: History
    final_population: list[int]  # strategies of the last *evaluated* generation
    final_per_env: dict[str, TournamentStats]  # last generation's stats
    final_overall: TournamentStats
    #: telemetry export for this replication (``None`` unless the config
    #: enabled telemetry): ``{"metrics": ..., "events": ...,
    #: "dropped_events": ..., "wall_s": ...}`` — picklable, so workers ship
    #: it back to the parent for experiment-wide aggregation
    telemetry: dict | None = field(default=None, compare=False)
    #: checkpoint provenance (``None`` unless the run had a checkpoint_dir):
    #: ``{"config_hash": ..., "resumed_from_generation": int|None,
    #: "checkpoints_written": int}`` — excluded from equality so a resumed
    #: run compares equal to the uninterrupted run it must match
    checkpoint: dict | None = field(default=None, compare=False)

    def final_strategies(self) -> list[Strategy]:
        """The last evaluated population as :class:`Strategy` objects."""
        return [Strategy.from_int(v) for v in self.final_population]

    def to_dict(self) -> dict:
        data = {
            "replication": self.replication,
            "history": self.history.to_dict(),
            "final_population": list(self.final_population),
            "final_per_env": {
                name: stats.to_dict() for name, stats in self.final_per_env.items()
            },
            "final_overall": self.final_overall.to_dict(),
        }
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry
        if self.checkpoint is not None:
            data["checkpoint"] = self.checkpoint
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ReplicationResult":
        return cls(
            replication=int(data["replication"]),
            history=History.from_dict(data["history"]),
            final_population=[int(v) for v in data["final_population"]],
            final_per_env={
                name: TournamentStats.from_dict(stats)
                for name, stats in data["final_per_env"].items()
            },
            final_overall=TournamentStats.from_dict(data["final_overall"]),
            telemetry=data.get("telemetry"),
            checkpoint=data.get("checkpoint"),
        )


def run_replication(
    config: ExperimentConfig,
    replication: int,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = 1,
    resume: bool = True,
) -> ReplicationResult:
    """Run one full replication of ``config``.

    The population is evaluated ``config.generations`` times with
    ``config.generations - 1`` GA steps in between, so the reported final
    statistics and final population describe the same (last evaluated)
    generation.

    With a ``checkpoint_dir``, state is persisted every ``checkpoint_every``
    generation boundaries (the final boundary always, so a finished run can
    be reconstituted without re-simulation); ``resume=True`` continues from
    the newest intact checkpoint.  Resumed trajectories are bit-identical to
    uninterrupted ones.

    With telemetry enabled in the config, the replication runs inside its
    own :func:`telemetry_session` (each worker process records
    independently), harvests the oracle stack's layer counters at the end,
    and ships the picklable export on ``result.telemetry``.
    """
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    if not config.telemetry.enabled:
        result, _oracle = _run_replication(
            config, replication, checkpoint_dir, checkpoint_every, resume
        )
        return result
    t0 = perf_counter()
    with telemetry_session(config.telemetry) as tel:
        result, oracle = _run_replication(
            config, replication, checkpoint_dir, checkpoint_every, resume
        )
        harvest_oracle(tel, oracle)
        export = tel.export()
    export["wall_s"] = perf_counter() - t0
    result.telemetry = export
    return result


def _run_replication(
    config: ExperimentConfig,
    replication: int,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = 1,
    resume: bool = True,
) -> tuple[ReplicationResult, PathOracle]:
    store = (
        CheckpointStore(checkpoint_dir) if checkpoint_dir is not None else None
    )
    restored = (
        store.load_latest(config, replication)
        if store is not None and resume
        else None
    )
    sim = config.sim
    trust_table = TrustTable(bounds=sim.trust_bounds)
    activity = ActivityClassifier(band=sim.activity_band)
    engine = make_engine(
        config.engine,
        n_population=config.ga.population_size,
        max_selfish=config.case.max_selfish,
        trust_table=trust_table,
        activity=activity,
        payoffs=sim.payoffs,
    )
    ga = GeneticAlgorithm(config.ga)
    # the fused engine pairs with the phase-vectorized GA step — same
    # statistical contract, gated together in the equivalence tier; every
    # other engine keeps the scalar, stream-pinned loop
    vector_ga = getattr(engine, "supports_generation_fusion", False)
    tel = get_telemetry()
    if not tel.enabled:
        tel = None

    last_per_env: dict[str, TournamentStats] | None = None
    last_overall: TournamentStats | None = None
    if restored is not None:
        # the single-blob pickle preserved the rng/oracle object sharing, so
        # the restored pair consumes the random stream exactly as the
        # original would have
        state = restored.state
        rng = state["rng"]
        oracle: PathOracle = state["oracle"]
        population = state["population"]
        history: History = state["history"]
        last_per_env = state["last_per_env"]
        last_overall = state["last_overall"]
        start_generation = restored.generation + 1
        if tel is not None and state.get("telemetry_metrics"):
            # carry the interrupted run's counters so the resumed session
            # reports whole-logical-run totals (oracle-layer counters ride
            # inside the pickled oracle and are harvested once, at the end)
            tel.registry.merge(state["telemetry_metrics"])
            tel.count("checkpoint.resumes")
    else:
        rng = derive_generator(config.seed, (replication,))
        if sim.mobility.enabled:
            # a moving unit-disk network over every node that can ever play
            node_ids = list(range(config.ga.population_size + config.case.max_selfish))
            oracle = build_oracle(sim.mobility, node_ids, rng)
        else:
            oracle = RandomPathOracle(rng, HOP_MODES[sim.path_mode])
        population = ga.initial_population(STRATEGY_LENGTH, rng)
        history = History()
        start_generation = 0

    checkpoints_written = 0
    for generation in range(start_generation, config.generations):
        strategies = [Strategy(bits) for bits in population]
        engine.set_strategies(strategies)
        result = evaluate_generation(
            engine,
            config.case.environments,
            rounds=sim.rounds,
            plays_per_environment=sim.plays_per_environment,
            oracle=oracle,
            rng=rng,
            exchange=sim.exchange,
        )
        history.append(
            GenerationRecord(
                generation=generation,
                cooperation=result.cooperation_level,
                cooperation_per_env={
                    name: stats.cooperation_level
                    for name, stats in result.per_environment.items()
                },
                mean_fitness=float(np.mean(result.fitness)),
                best_fitness=float(np.max(result.fitness)),
                mean_forwarding_fraction=float(
                    np.mean([s.forwarding_fraction() for s in strategies])
                ),
            )
        )
        last_per_env = result.per_environment
        last_overall = result.overall
        if generation < config.generations - 1:
            population = (
                ga.next_generation_vectorized(population, result.fitness, rng)
                if vector_ga
                else ga.next_generation(population, result.fitness, rng)
            )
        if store is not None and (
            (generation + 1) % checkpoint_every == 0
            or generation == config.generations - 1
        ):
            store.save(
                config,
                replication,
                generation,
                {
                    "population": population,
                    "rng": rng,
                    "oracle": oracle,
                    "history": history,
                    "last_per_env": last_per_env,
                    "last_overall": last_overall,
                    "telemetry_metrics": (
                        tel.snapshot() if tel is not None else None
                    ),
                },
            )
            checkpoints_written += 1
            if tel is not None:
                tel.count("checkpoint.saves")

    assert last_per_env is not None and last_overall is not None
    result = ReplicationResult(
        replication=replication,
        history=history,
        final_population=[Strategy(bits).to_int() for bits in population],
        final_per_env=last_per_env,
        final_overall=last_overall,
    )
    if store is not None:
        result.checkpoint = {
            "config_hash": config_hash(config.describe()),
            "resumed_from_generation": (
                restored.generation if restored is not None else None
            ),
            "checkpoints_written": checkpoints_written,
        }
    return result, oracle

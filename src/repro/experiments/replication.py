"""One independent replication: random initial strategies evolved for G
generations, with full per-generation bookkeeping.

A replication is a pure function of ``(config, replication_index)``: its
generator is derived from the master seed and the index via
``SeedSequence(seed, spawn_key=(index,))``, so results do not depend on
worker count or execution order (see :mod:`repro.parallel`).

With a ``checkpoint_dir``, the replication snapshots its complete state at
every generation boundary (population, rng, oracle, history, last
generation's statistics, telemetry registry) through
:class:`repro.experiments.checkpoint.CheckpointStore`, and — unless
``resume=False`` — continues from the newest intact checkpoint instead of
generation 0.  A resumed run is bit-identical to an uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.core.strategy import STRATEGY_LENGTH, Strategy
from repro.experiments.checkpoint import CheckpointStore
from repro.experiments.config import ExperimentConfig
from repro.game.stats import TournamentStats
from repro.ga.evolution import GeneticAlgorithm
from repro.ga.history import GenerationRecord, History
from repro.ga.vector import next_generation_tensor
from repro.mobility import build_oracle
from repro.paths.distributions import HOP_MODES
from repro.paths.oracle import PathOracle, RandomPathOracle
from repro.paths.vector import plan_generation_arrays, stack_replication_plans
from repro.reputation.activity import ActivityClassifier
from repro.reputation.trust import TrustTable
from repro.sim import make_engine
from repro.telemetry.harvest import harvest_oracle
from repro.telemetry.manifest import config_hash
from repro.telemetry.runtime import get_telemetry, telemetry_session
from repro.tournament.evaluation import evaluate_generation
from repro.tournament.scheduler import iter_seatings
from repro.utils.rng import derive_generator

__all__ = [
    "ReplicationResult",
    "run_replication",
    "run_replications_stacked",
    "stacked_unsupported_reason",
]


@dataclass
class ReplicationResult:
    """Everything recorded about one replication."""

    replication: int
    history: History
    final_population: list[int]  # strategies of the last *evaluated* generation
    final_per_env: dict[str, TournamentStats]  # last generation's stats
    final_overall: TournamentStats
    #: telemetry export for this replication (``None`` unless the config
    #: enabled telemetry): ``{"metrics": ..., "events": ...,
    #: "dropped_events": ..., "wall_s": ...}`` — picklable, so workers ship
    #: it back to the parent for experiment-wide aggregation
    telemetry: dict | None = field(default=None, compare=False)
    #: checkpoint provenance (``None`` unless the run had a checkpoint_dir):
    #: ``{"config_hash": ..., "resumed_from_generation": int|None,
    #: "checkpoints_written": int}`` — excluded from equality so a resumed
    #: run compares equal to the uninterrupted run it must match
    checkpoint: dict | None = field(default=None, compare=False)

    def final_strategies(self) -> list[Strategy]:
        """The last evaluated population as :class:`Strategy` objects."""
        return [Strategy.from_int(v) for v in self.final_population]

    def to_dict(self) -> dict:
        data = {
            "replication": self.replication,
            "history": self.history.to_dict(),
            "final_population": list(self.final_population),
            "final_per_env": {
                name: stats.to_dict() for name, stats in self.final_per_env.items()
            },
            "final_overall": self.final_overall.to_dict(),
        }
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry
        if self.checkpoint is not None:
            data["checkpoint"] = self.checkpoint
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ReplicationResult":
        return cls(
            replication=int(data["replication"]),
            history=History.from_dict(data["history"]),
            final_population=[int(v) for v in data["final_population"]],
            final_per_env={
                name: TournamentStats.from_dict(stats)
                for name, stats in data["final_per_env"].items()
            },
            final_overall=TournamentStats.from_dict(data["final_overall"]),
            telemetry=data.get("telemetry"),
            checkpoint=data.get("checkpoint"),
        )


def run_replication(
    config: ExperimentConfig,
    replication: int,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = 1,
    resume: bool = True,
) -> ReplicationResult:
    """Run one full replication of ``config``.

    The population is evaluated ``config.generations`` times with
    ``config.generations - 1`` GA steps in between, so the reported final
    statistics and final population describe the same (last evaluated)
    generation.

    With a ``checkpoint_dir``, state is persisted every ``checkpoint_every``
    generation boundaries (the final boundary always, so a finished run can
    be reconstituted without re-simulation); ``resume=True`` continues from
    the newest intact checkpoint.  Resumed trajectories are bit-identical to
    uninterrupted ones.

    With telemetry enabled in the config, the replication runs inside its
    own :func:`telemetry_session` (each worker process records
    independently), harvests the oracle stack's layer counters at the end,
    and ships the picklable export on ``result.telemetry``.
    """
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    if not config.telemetry.enabled:
        result, _oracle = _run_replication(
            config, replication, checkpoint_dir, checkpoint_every, resume
        )
        return result
    t0 = perf_counter()
    with telemetry_session(config.telemetry) as tel:
        result, oracle = _run_replication(
            config, replication, checkpoint_dir, checkpoint_every, resume
        )
        harvest_oracle(tel, oracle)
        export = tel.export()
    export["wall_s"] = perf_counter() - t0
    result.telemetry = export
    return result


def _run_replication(
    config: ExperimentConfig,
    replication: int,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = 1,
    resume: bool = True,
) -> tuple[ReplicationResult, PathOracle]:
    store = (
        CheckpointStore(checkpoint_dir) if checkpoint_dir is not None else None
    )
    restored = (
        store.load_latest(config, replication)
        if store is not None and resume
        else None
    )
    sim = config.sim
    trust_table = TrustTable(bounds=sim.trust_bounds)
    activity = ActivityClassifier(band=sim.activity_band)
    engine = make_engine(
        config.engine,
        n_population=config.ga.population_size,
        max_selfish=config.case.max_selfish,
        trust_table=trust_table,
        activity=activity,
        payoffs=sim.payoffs,
        kernel=config.kernel,
    )
    ga = GeneticAlgorithm(config.ga)
    # the fused engine pairs with the phase-vectorized GA step — same
    # statistical contract, gated together in the equivalence tier; every
    # other engine keeps the scalar, stream-pinned loop
    vector_ga = getattr(engine, "supports_generation_fusion", False)
    tel = get_telemetry()
    if not tel.enabled:
        tel = None

    last_per_env: dict[str, TournamentStats] | None = None
    last_overall: TournamentStats | None = None
    if restored is not None:
        # the single-blob pickle preserved the rng/oracle object sharing, so
        # the restored pair consumes the random stream exactly as the
        # original would have
        state = restored.state
        rng = state["rng"]
        oracle: PathOracle = state["oracle"]
        population = state["population"]
        history: History = state["history"]
        last_per_env = state["last_per_env"]
        last_overall = state["last_overall"]
        start_generation = restored.generation + 1
        if tel is not None and state.get("telemetry_metrics"):
            # carry the interrupted run's counters so the resumed session
            # reports whole-logical-run totals (oracle-layer counters ride
            # inside the pickled oracle and are harvested once, at the end)
            tel.registry.merge(state["telemetry_metrics"])
            tel.count("checkpoint.resumes")
    else:
        rng = derive_generator(config.seed, (replication,))
        if sim.mobility.enabled:
            # a moving unit-disk network over every node that can ever play
            node_ids = list(range(config.ga.population_size + config.case.max_selfish))
            oracle = build_oracle(sim.mobility, node_ids, rng)
        else:
            oracle = RandomPathOracle(rng, HOP_MODES[sim.path_mode])
        population = ga.initial_population(STRATEGY_LENGTH, rng)
        history = History()
        start_generation = 0

    checkpoints_written = 0
    for generation in range(start_generation, config.generations):
        strategies = [Strategy(bits) for bits in population]
        engine.set_strategies(strategies)
        result = evaluate_generation(
            engine,
            config.case.environments,
            rounds=sim.rounds,
            plays_per_environment=sim.plays_per_environment,
            oracle=oracle,
            rng=rng,
            exchange=sim.exchange,
        )
        history.append(
            GenerationRecord(
                generation=generation,
                cooperation=result.cooperation_level,
                cooperation_per_env={
                    name: stats.cooperation_level
                    for name, stats in result.per_environment.items()
                },
                mean_fitness=float(np.mean(result.fitness)),
                best_fitness=float(np.max(result.fitness)),
                mean_forwarding_fraction=float(
                    np.mean([s.forwarding_fraction() for s in strategies])
                ),
            )
        )
        last_per_env = result.per_environment
        last_overall = result.overall
        if generation < config.generations - 1:
            population = (
                ga.next_generation_vectorized(population, result.fitness, rng)
                if vector_ga
                else ga.next_generation(population, result.fitness, rng)
            )
        if store is not None and (
            (generation + 1) % checkpoint_every == 0
            or generation == config.generations - 1
        ):
            store.save(
                config,
                replication,
                generation,
                {
                    "population": population,
                    "rng": rng,
                    "oracle": oracle,
                    "history": history,
                    "last_per_env": last_per_env,
                    "last_overall": last_overall,
                    "telemetry_metrics": (
                        tel.snapshot() if tel is not None else None
                    ),
                },
            )
            checkpoints_written += 1
            if tel is not None:
                tel.count("checkpoint.saves")

    assert last_per_env is not None and last_overall is not None
    result = ReplicationResult(
        replication=replication,
        history=history,
        final_population=[Strategy(bits).to_int() for bits in population],
        final_per_env=last_per_env,
        final_overall=last_overall,
    )
    if store is not None:
        result.checkpoint = {
            "config_hash": config_hash(config.describe()),
            "resumed_from_generation": (
                restored.generation if restored is not None else None
            ),
            "checkpoints_written": checkpoints_written,
        }
    return result, oracle


# -- cross-replication stacked evaluation -------------------------------------


def stacked_unsupported_reason(
    config: ExperimentConfig,
    *,
    processes: int | None = None,
    shards: int | None = None,
    checkpoint_dir: str | Path | None = None,
) -> str | None:
    """Why this run cannot take the stacked path (``None`` when it can).

    The stacked path evaluates all replications as one in-process
    block-diagonal pass (:class:`repro.sim.stacked.StackedFusedEngine`), so
    it requires a generation-fusing engine and is incompatible with
    per-replication execution machinery: worker pools, shards, checkpoints,
    per-replication telemetry sessions, and the reputation exchange (which
    already forces the fused engine back to per-tournament execution).
    """
    from repro.sim import ENGINES

    cls = ENGINES[config.engine]
    if not getattr(cls, "supports_generation_fusion", False):
        return (
            f"engine {config.engine!r} does not fuse generations"
            " (stacking requires --engine fused)"
        )
    if config.replications < 2:
        return "stacking needs at least 2 replications"
    if config.sim.exchange.enabled:
        return (
            "the reputation exchange interleaves gossip with each"
            " tournament's round stream, which stacking cannot reorder"
        )
    if config.telemetry.enabled:
        return (
            "per-replication telemetry sessions cannot share one stacked"
            " engine"
        )
    if processes not in (None, 1):
        return "stacked evaluation runs in-process (processes=1)"
    if shards is not None:
        return "sharded dispatch is per-replication"
    if checkpoint_dir is not None:
        return "checkpointing snapshots per-replication state"
    return None


def run_replications_stacked(config: ExperimentConfig) -> list[ReplicationResult]:
    """Run *every* replication of ``config`` as one stacked evaluation.

    Per-replication results are **bit-identical** to the sequential path
    (``run_replication(config, r)`` for each ``r`` with the fused engine):
    each replication keeps its own generator (``derive_generator(seed,
    (r,))``), oracle, population and statistics counters, consumed in
    exactly the sequential construction order — only the game *execution*
    is merged, through block-diagonal engine state that provably cannot
    couple replications (see :mod:`repro.sim.stacked` and
    ``tests/test_sim_stacked.py``).

    What stacking buys: the per-round vectorized pass amortizes its fixed
    numpy dispatch cost over ``R`` replications' slates at once — the
    ``random_stacked`` row of ``benchmarks/bench_engine_perf.py`` gates the
    resulting throughput.
    """
    reason = stacked_unsupported_reason(config)
    if reason is not None:
        raise ValueError(f"config cannot run stacked: {reason}")
    from repro.sim.fused import FusedEngine
    from repro.sim.stacked import StackedFusedEngine

    sim = config.sim
    n_rep = config.replications
    pop_size = config.ga.population_size
    block = pop_size + config.case.max_selfish
    engine = StackedFusedEngine(
        n_population=pop_size,
        max_selfish=config.case.max_selfish,
        trust_table=TrustTable(bounds=sim.trust_bounds),
        activity=ActivityClassifier(band=sim.activity_band),
        payoffs=sim.payoffs,
        kernel=config.kernel,
        n_replications=n_rep,
    )
    ga = GeneticAlgorithm(config.ga)

    # per-replication setup, consuming each stream exactly as the
    # sequential _run_replication does: oracle first, then the initial
    # population
    rngs = [derive_generator(config.seed, (r,)) for r in range(n_rep)]
    oracles: list[PathOracle] = []
    node_ids = list(range(block))
    for rng in rngs:
        if sim.mobility.enabled:
            oracles.append(build_oracle(sim.mobility, node_ids, rng))
        else:
            oracles.append(RandomPathOracle(rng, HOP_MODES[sim.path_mode]))
    populations = np.stack(
        [
            np.array(ga.initial_population(STRATEGY_LENGTH, rng), dtype=np.int8)
            for rng in rngs
        ]
    )

    histories = [History() for _ in range(n_rep)]
    last_per_env: list[dict[str, TournamentStats]] = [{} for _ in range(n_rep)]
    last_overall = [TournamentStats() for _ in range(n_rep)]
    population_ids = list(range(pop_size))

    for generation in range(config.generations):
        engine.set_strategies_tensor(populations)
        engine.reset_generation()
        per_env: list[dict[str, TournamentStats]] = [{} for _ in range(n_rep)]
        overall = [TournamentStats() for _ in range(n_rep)]
        for env in config.case.environments:
            if env.n_normal > pop_size:
                raise ValueError(
                    f"{env.name} needs {env.n_normal} normal players,"
                    f" population has {pop_size}"
                )
            csn = [pop_size + k for k in range(env.n_selfish)]
            plans = []
            n_tournaments = 0
            n_seats = 0
            for r in range(n_rep):
                rng = rngs[r]
                oracle = oracles[r]
                seatings = []
                for seating in iter_seatings(
                    population_ids, env.n_normal, sim.plays_per_environment, rng
                ):
                    participants = seating + csn
                    order = rng.permutation(len(participants))
                    seatings.append([participants[int(i)] for i in order])
                # same generation-scoped route sharing as the fused engine
                # applies around its own plan drawing
                share = FusedEngine._share_route_tables(oracle)
                try:
                    plans.append(
                        plan_generation_arrays(
                            oracle,
                            seatings,
                            sim.rounds,
                            on_tournament_end=getattr(
                                oracle, "on_tournament_end", None
                            ),
                        )
                    )
                finally:
                    FusedEngine._restore_route_policy(oracle, share)
                n_tournaments = len(seatings)
                n_seats = len(seatings[0])
            env_stats = [TournamentStats() for _ in range(n_rep)]
            stacked_plan = stack_replication_plans(plans, sim.rounds, block)
            engine.run_generation_stacked(
                stacked_plan, sim.rounds, n_tournaments, n_seats, env_stats
            )
            for r in range(n_rep):
                per_env[r][env.name] = env_stats[r]
                overall[r].merge(env_stats[r])

        fitness = engine.fitness_tensor()
        for r in range(n_rep):
            strategies = [
                Strategy(tuple(int(b) for b in row)) for row in populations[r]
            ]
            histories[r].append(
                GenerationRecord(
                    generation=generation,
                    cooperation=overall[r].cooperation_level,
                    cooperation_per_env={
                        name: stats.cooperation_level
                        for name, stats in per_env[r].items()
                    },
                    mean_fitness=float(np.mean(fitness[r])),
                    best_fitness=float(np.max(fitness[r])),
                    mean_forwarding_fraction=float(
                        np.mean([s.forwarding_fraction() for s in strategies])
                    ),
                )
            )
            last_per_env[r] = per_env[r]
            last_overall[r] = overall[r]
        if generation < config.generations - 1:
            populations = next_generation_tensor(
                populations, fitness, config.ga, rngs
            )

    return [
        ReplicationResult(
            replication=r,
            history=histories[r],
            final_population=[
                Strategy(tuple(int(b) for b in row)).to_int()
                for row in populations[r]
            ],
            final_per_env=last_per_env[r],
            final_overall=last_overall[r],
        )
        for r in range(n_rep)
    ]

"""Experiment runner: replications in parallel, results aggregated.

``run_experiment`` is the single entry point used by the CLI, the benchmark
harnesses and the examples.  Replication ``i`` always sees the random stream
derived from ``(config.seed, i)``, so the outcome is independent of the
worker count.

With telemetry enabled in the config, each replication records inside its
own session (worker processes included) and ships a picklable export back on
``ReplicationResult.telemetry``; the runner opens a parent session of its
own to capture pool-level metrics, merges every replication's registry
snapshot into it, and attaches the experiment-wide aggregate to
``ExperimentResult.telemetry``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable

from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import ReplicationResult, run_replication
from repro.experiments.results import ExperimentResult
from repro.parallel.pool import parallel_map
from repro.telemetry.runtime import telemetry_session

__all__ = ["run_experiment"]


def _task(args: tuple[ExperimentConfig, int]) -> ReplicationResult:
    """Module-level task wrapper (must be picklable for the process pool)."""
    config, replication = args
    return run_replication(config, replication)


def run_experiment(
    config: ExperimentConfig,
    processes: int | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> ExperimentResult:
    """Run all replications of ``config`` and aggregate the results.

    ``processes=None`` uses one worker per core (capped at the replication
    count); ``processes=1`` runs serially in-process.
    """
    tasks = [(config, i) for i in range(config.replications)]
    if not config.telemetry.enabled:
        replications = parallel_map(
            _task, tasks, processes=processes, progress=progress
        )
        return ExperimentResult(config=config.describe(), replications=replications)

    # parent session: parallel_map captures it at entry, so each
    # replication's own nested session (the serial path) cannot steal its
    # pool metrics; replication registries merge in afterwards
    t0 = perf_counter()
    with telemetry_session(config.telemetry) as tel:
        replications = parallel_map(
            _task, tasks, processes=processes, progress=progress
        )
        events: list[dict] = list(tel.events)
        dropped = tel.dropped_events
        for rep in replications:
            export = rep.telemetry
            if not export:
                continue
            tel.registry.merge(export.get("metrics", {}))
            events.extend(export.get("events", []))
            dropped += export.get("dropped_events", 0)
        aggregated = {
            "metrics": tel.snapshot(),
            "events": events,
            "dropped_events": dropped,
            "wall_s": perf_counter() - t0,
        }
    return ExperimentResult(
        config=config.describe(),
        replications=replications,
        telemetry=aggregated,
    )

"""Experiment runner: replications in parallel, results aggregated.

``run_experiment`` is the single entry point used by the CLI, the benchmark
harnesses and the examples.  Replication ``i`` always sees the random stream
derived from ``(config.seed, i)``, so the outcome is independent of the
worker count.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import ReplicationResult, run_replication
from repro.experiments.results import ExperimentResult
from repro.parallel.pool import parallel_map

__all__ = ["run_experiment"]


def _task(args: tuple[ExperimentConfig, int]) -> ReplicationResult:
    """Module-level task wrapper (must be picklable for the process pool)."""
    config, replication = args
    return run_replication(config, replication)


def run_experiment(
    config: ExperimentConfig,
    processes: int | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> ExperimentResult:
    """Run all replications of ``config`` and aggregate the results.

    ``processes=None`` uses one worker per core (capped at the replication
    count); ``processes=1`` runs serially in-process.
    """
    tasks = [(config, i) for i in range(config.replications)]
    replications = parallel_map(_task, tasks, processes=processes, progress=progress)
    return ExperimentResult(config=config.describe(), replications=replications)

"""Experiment runner: replications in parallel, results aggregated.

``run_experiment`` is the single entry point used by the CLI, the benchmark
harnesses and the examples.  Replication ``i`` always sees the random stream
derived from ``(config.seed, i)``, so the outcome is independent of the
worker count — and of the shard count: with ``shards=N`` the replication set
is split into deterministic contiguous groups (:func:`repro.parallel.shard.
plan_shards`) that each run serially inside one worker, which amortises
process dispatch for large replication counts and buys work-stealing
recovery from dead or straggling workers, while producing bit-identical
:class:`ReplicationResult`\\ s for every shard count (pinned by
``tests/test_parallel_shard.py`` and the CI shard-invariance gate).

``checkpoint_dir``/``resume`` thread straight through to
:func:`repro.experiments.replication.run_replication`, so an interrupted
experiment — sharded or not — continues from each replication's newest
intact checkpoint.

With telemetry enabled in the config, each replication records inside its
own session (worker processes included) and ships a picklable export back on
``ReplicationResult.telemetry``; the runner opens a parent session of its
own to capture pool-level metrics and merges every export into it.  In
sharded mode the folding is hierarchical: each shard worker merges its
replications' registries into one shard-level view
(``MetricsRegistry.merge``), and the parent merges only the shard exports —
same totals, one merge per shard instead of one per replication crossing
the process boundary.
"""

from __future__ import annotations

from pathlib import Path
from time import perf_counter
from typing import Callable, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import (
    ReplicationResult,
    run_replication,
    run_replications_stacked,
    stacked_unsupported_reason,
)
from repro.experiments.results import ExperimentResult
from repro.parallel.pool import parallel_map
from repro.parallel.shard import plan_shards, sharded_map
from repro.telemetry.runtime import telemetry_session

__all__ = ["run_experiment"]


def _task(
    args: tuple[ExperimentConfig, int, str | None, bool],
) -> ReplicationResult:
    """Module-level task wrapper (must be picklable for the process pool)."""
    config, replication, checkpoint_dir, resume = args
    return run_replication(
        config, replication, checkpoint_dir=checkpoint_dir, resume=resume
    )


def _shard_task(
    args: tuple[ExperimentConfig, Sequence[int], str | None, bool],
) -> dict:
    """Run one shard's replications serially inside a worker.

    Returns ``{"results": [ReplicationResult, ...], "telemetry": export|None}``
    where the export is the shard-level fold of every replication registry
    (plus ``shard.runs``/``shard.replications`` counters), so the parent
    merges one registry per shard rather than one per replication.
    """
    config, indices, checkpoint_dir, resume = args
    if not config.telemetry.enabled:
        return {
            "results": [
                run_replication(
                    config, i, checkpoint_dir=checkpoint_dir, resume=resume
                )
                for i in indices
            ],
            "telemetry": None,
        }
    t0 = perf_counter()
    with telemetry_session(config.telemetry) as tel:
        results = [
            run_replication(
                config, i, checkpoint_dir=checkpoint_dir, resume=resume
            )
            for i in indices
        ]
        tel.count("shard.runs")
        tel.count("shard.replications", len(results))
        events: list[dict] = list(tel.events)
        dropped = tel.dropped_events
        for rep in results:
            export = rep.telemetry
            if not export:
                continue
            tel.registry.merge(export.get("metrics", {}))
            events.extend(export.get("events", []))
            dropped += export.get("dropped_events", 0)
        shard_export = {
            "metrics": tel.snapshot(),
            "events": events,
            "dropped_events": dropped,
        }
    shard_export["wall_s"] = perf_counter() - t0
    return {"results": results, "telemetry": shard_export}


def run_experiment(
    config: ExperimentConfig,
    processes: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    *,
    shards: int | None = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = True,
    max_redispatch: int | None = None,
    stacked: bool | None = None,
) -> ExperimentResult:
    """Run all replications of ``config`` and aggregate the results.

    Parameters
    ----------
    processes:
        ``None`` uses one worker per core (capped at the task count);
        ``1`` runs serially in-process.
    progress:
        Optional ``(done, total)`` callback; counts replications when
        unsharded, completed shards when sharded.
    shards:
        ``None`` dispatches one pool task per replication (the default);
        ``N >= 1`` groups replications into at most ``N`` deterministic
        contiguous shards run through the work-stealing scheduler.  Any
        shard count yields bit-identical results.
    checkpoint_dir:
        Root of the checkpoint store; ``None`` disables checkpointing.
    resume:
        With a ``checkpoint_dir``, continue each replication from its
        newest intact checkpoint (``False`` forces a fresh start while
        still writing checkpoints).
    max_redispatch:
        Worker-death recoveries to allow (see ``parallel_map``); ``None``
        keeps each scheduler's default — fail fast unsharded, one recovery
        when sharded.
    stacked:
        ``None`` (the default) evaluates all replications as one stacked
        slate (:func:`repro.experiments.replication.run_replications_stacked`)
        whenever the run is eligible — a fusing engine, serial in-process
        execution, no sharding or checkpointing, telemetry off — and falls
        back to the per-replication path otherwise.  ``True`` demands
        stacking (``ValueError`` when ineligible); ``False`` never stacks.
        Stacked results are bit-identical to the sequential path, so the
        choice is purely an execution-plan knob.
    """
    if shards is not None and shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")

    if stacked is None:
        use_stacked = (
            processes == 1
            and shards is None
            and checkpoint_dir is None
            and stacked_unsupported_reason(config) is None
        )
    elif stacked:
        reason = stacked_unsupported_reason(
            config,
            processes=processes,
            shards=shards,
            checkpoint_dir=checkpoint_dir,
        )
        if reason is not None:
            raise ValueError(f"stacked evaluation unavailable: {reason}")
        use_stacked = True
    else:
        use_stacked = False
    if use_stacked:
        replications = run_replications_stacked(config)
        if progress is not None:
            progress(len(replications), len(replications))
        return ExperimentResult(
            config=config.describe(), replications=replications
        )
    ckpt = str(checkpoint_dir) if checkpoint_dir is not None else None

    if shards is None:
        tasks = [(config, i, ckpt, resume) for i in range(config.replications)]
        redispatch = 0 if max_redispatch is None else max_redispatch

        def run_all() -> list[ReplicationResult]:
            return parallel_map(
                _task,
                tasks,
                processes=processes,
                progress=progress,
                max_redispatch=redispatch,
            )

    else:
        plan = plan_shards(config.replications, shards)
        shard_items = [
            (config, shard.task_indices, ckpt, resume) for shard in plan
        ]
        redispatch = 1 if max_redispatch is None else max_redispatch

        def run_all() -> list[ReplicationResult]:
            shard_outs = sharded_map(
                _shard_task,
                shard_items,
                processes=processes,
                progress=progress,
                max_redispatch=redispatch,
            )
            # contiguous ascending shards concatenate back into replication
            # order; the sort is a guard, not a requirement
            flat: list[ReplicationResult] = []
            exports: list[dict] = []
            for out in shard_outs:
                flat.extend(out["results"])
                if out["telemetry"]:
                    exports.append(out["telemetry"])
            flat.sort(key=lambda rep: rep.replication)
            run_all.exports = exports  # type: ignore[attr-defined]
            return flat

    if not config.telemetry.enabled:
        replications = run_all()
        return ExperimentResult(config=config.describe(), replications=replications)

    # parent session: the pool captures it at entry, so each task's own
    # nested session (the serial path) cannot steal its pool metrics;
    # replication (or shard-level) registries merge in afterwards
    t0 = perf_counter()
    with telemetry_session(config.telemetry) as tel:
        replications = run_all()
        events: list[dict] = list(tel.events)
        dropped = tel.dropped_events
        if shards is None:
            exports = [rep.telemetry for rep in replications if rep.telemetry]
        else:
            exports = getattr(run_all, "exports", [])
        for export in exports:
            tel.registry.merge(export.get("metrics", {}))
            events.extend(export.get("events", []))
            dropped += export.get("dropped_events", 0)
        aggregated = {
            "metrics": tel.snapshot(),
            "events": events,
            "dropped_events": dropped,
            "wall_s": perf_counter() - t0,
        }
    return ExperimentResult(
        config=config.describe(),
        replications=replications,
        telemetry=aggregated,
    )

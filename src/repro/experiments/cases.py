"""The paper's evaluation cases (Table 4).

================  =========================  ==========
case              tournament environment(s)  path mode
================  =========================  ==========
case 1            TE1 (0 CSN)                shorter
case 2            30 CSN (see note)          shorter
case 3            TE1–TE4                    shorter
case 4            TE1–TE4                    longer
================  =========================  ==========

Note on case 2: Table 4 labels the environment "3 (30 CSN)" while Table 1
gives TE3 = 25 CSN and TE4 = 30 CSN; §6.2 describes case 2 as "most of the
population (60%) is composed of CSN", i.e. 30 of 50 seats.  We therefore use
a single environment with 30 CSN (DESIGN.md §2.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.presets import environment_with_csn, paper_environments
from repro.tournament.environment import TournamentEnvironment

__all__ = ["EvaluationCase", "CASES", "get_case"]


@dataclass(frozen=True)
class EvaluationCase:
    """One evaluation case: which environments, which path mode."""

    name: str
    description: str
    environments: tuple[TournamentEnvironment, ...]
    path_mode: str  # "shorter" or "longer"

    def __post_init__(self) -> None:
        if not self.environments:
            raise ValueError("a case needs at least one environment")
        if self.path_mode not in ("shorter", "longer"):
            raise ValueError(f"unknown path mode {self.path_mode!r}")

    @property
    def max_selfish(self) -> int:
        """Largest CSN pool any of the case's environments needs."""
        return max(env.n_selfish for env in self.environments)


def _build_cases() -> dict[str, EvaluationCase]:
    te1, te2, te3, te4 = paper_environments()
    case2_env = environment_with_csn(30)
    return {
        "case1": EvaluationCase(
            name="case1",
            description="CSN-free tournament (TE1), shorter paths",
            environments=(te1,),
            path_mode="shorter",
        ),
        "case2": EvaluationCase(
            name="case2",
            description="single environment with 30 CSN (60%), shorter paths",
            environments=(case2_env,),
            path_mode="shorter",
        ),
        "case3": EvaluationCase(
            name="case3",
            description="all environments TE1-TE4, shorter paths",
            environments=(te1, te2, te3, te4),
            path_mode="shorter",
        ),
        "case4": EvaluationCase(
            name="case4",
            description="all environments TE1-TE4, longer paths",
            environments=(te1, te2, te3, te4),
            path_mode="longer",
        ),
    }


#: Table 4, by case name.
CASES: dict[str, EvaluationCase] = _build_cases()


def get_case(name: str) -> EvaluationCase:
    """Look up a paper case by name (``"case1"`` .. ``"case4"``)."""
    try:
        return CASES[name]
    except KeyError:
        raise KeyError(
            f"unknown case {name!r}; available: {sorted(CASES)}"
        ) from None

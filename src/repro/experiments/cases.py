"""The paper's evaluation cases (Table 4).

================  =========================  ==========
case              tournament environment(s)  path mode
================  =========================  ==========
case 1            TE1 (0 CSN)                shorter
case 2            30 CSN (see note)          shorter
case 3            TE1–TE4                    shorter
case 4            TE1–TE4                    longer
================  =========================  ==========

Note on case 2: Table 4 labels the environment "3 (30 CSN)" while Table 1
gives TE3 = 25 CSN and TE4 = 30 CSN; §6.2 describes case 2 as "most of the
population (60%) is composed of CSN", i.e. 30 of 50 seats.  We therefore use
a single environment with 30 CSN (DESIGN.md §2.4).

Beyond Table 4, ``EXTENSION_CASES`` adds mobile-topology variants (the
``mobility`` field names a :data:`repro.config.presets.MOBILITY_PRESETS`
entry): the same game and GA, but candidate routes come from a moving
unit-disk network instead of the paper's random draw.  The ``exchange_*``
variants (the ``exchange`` field names an
:data:`repro.config.presets.EXCHANGE_PRESETS` entry) enable second-hand
reputation gossip on top of the paper's first-hand watchdog.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.presets import (
    EXCHANGE_PRESETS,
    MOBILITY_PRESETS,
    environment_with_csn,
    paper_environments,
)
from repro.tournament.environment import TournamentEnvironment

__all__ = ["EvaluationCase", "CASES", "EXTENSION_CASES", "ALL_CASES", "get_case"]


@dataclass(frozen=True)
class EvaluationCase:
    """One evaluation case: environments, path mode, network substrate."""

    name: str
    description: str
    environments: tuple[TournamentEnvironment, ...]
    path_mode: str  # "shorter" or "longer"
    mobility: str = "none"  # a MOBILITY_PRESETS name
    exchange: str = "none"  # an EXCHANGE_PRESETS name

    def __post_init__(self) -> None:
        if not self.environments:
            raise ValueError("a case needs at least one environment")
        if self.path_mode not in ("shorter", "longer"):
            raise ValueError(f"unknown path mode {self.path_mode!r}")
        if self.mobility not in MOBILITY_PRESETS:
            raise ValueError(
                f"unknown mobility preset {self.mobility!r};"
                f" available: {sorted(MOBILITY_PRESETS)}"
            )
        if self.exchange not in EXCHANGE_PRESETS:
            raise ValueError(
                f"unknown exchange preset {self.exchange!r};"
                f" available: {sorted(EXCHANGE_PRESETS)}"
            )

    @property
    def max_selfish(self) -> int:
        """Largest CSN pool any of the case's environments needs."""
        return max(env.n_selfish for env in self.environments)


def _build_cases() -> dict[str, EvaluationCase]:
    te1, te2, te3, te4 = paper_environments()
    case2_env = environment_with_csn(30)
    return {
        "case1": EvaluationCase(
            name="case1",
            description="CSN-free tournament (TE1), shorter paths",
            environments=(te1,),
            path_mode="shorter",
        ),
        "case2": EvaluationCase(
            name="case2",
            description="single environment with 30 CSN (60%), shorter paths",
            environments=(case2_env,),
            path_mode="shorter",
        ),
        "case3": EvaluationCase(
            name="case3",
            description="all environments TE1-TE4, shorter paths",
            environments=(te1, te2, te3, te4),
            path_mode="shorter",
        ),
        "case4": EvaluationCase(
            name="case4",
            description="all environments TE1-TE4, longer paths",
            environments=(te1, te2, te3, te4),
            path_mode="longer",
        ),
    }


def _build_extension_cases() -> dict[str, EvaluationCase]:
    te1, te2, _, _ = paper_environments()
    exchange_env = (te2,)  # 10 CSN of 50 seats: gossip has something to say
    return {
        "exchange_off": EvaluationCase(
            name="exchange_off",
            description=(
                "baseline for the exchange artefact: TE2 (10 CSN),"
                " first-hand reputation only, shorter paths"
            ),
            environments=exchange_env,
            path_mode="shorter",
        ),
        "exchange_core": EvaluationCase(
            name="exchange_core",
            description=(
                "TE2 (10 CSN) with CORE-style positive-only second-hand"
                " reputation exchange, shorter paths"
            ),
            environments=exchange_env,
            path_mode="shorter",
            exchange="core",
        ),
        "exchange_full": EvaluationCase(
            name="exchange_full",
            description=(
                "TE2 (10 CSN) with CONFIDANT-style full second-hand"
                " reputation exchange, shorter paths"
            ),
            environments=exchange_env,
            path_mode="shorter",
            exchange="full",
        ),
        "mobile_waypoint": EvaluationCase(
            name="mobile_waypoint",
            description=(
                "CSN-free tournament (TE1) on a random-waypoint mobile"
                " topology, shorter paths"
            ),
            environments=(te1,),
            path_mode="shorter",
            mobility="waypoint",
        ),
        "mobile_gauss": EvaluationCase(
            name="mobile_gauss",
            description=(
                "CSN-free tournament (TE1) on a Gauss-Markov mobile"
                " topology, shorter paths"
            ),
            environments=(te1,),
            path_mode="shorter",
            mobility="gauss-markov",
        ),
    }


#: Table 4, by case name.
CASES: dict[str, EvaluationCase] = _build_cases()

#: Mobility extension cases (not in the paper), by case name.
EXTENSION_CASES: dict[str, EvaluationCase] = _build_extension_cases()

#: Every runnable case: the paper's Table 4 plus the extensions.
ALL_CASES: dict[str, EvaluationCase] = {**CASES, **EXTENSION_CASES}


def get_case(name: str) -> EvaluationCase:
    """Look up a case by name (``"case1"`` .. ``"case4"``, or an extension)."""
    try:
        return ALL_CASES[name]
    except KeyError:
        raise KeyError(
            f"unknown case {name!r}; available: {sorted(ALL_CASES)}"
        ) from None

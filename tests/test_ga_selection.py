"""Unit and statistical tests for selection operators (§5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ga.selection import (
    roulette_select_index,
    select_index,
    tournament_select_index,
)


class TestTournamentSelection:
    def test_picks_fitter_of_two(self):
        rng = np.random.default_rng(0)
        fitness = np.array([0.0, 10.0])
        wins = [tournament_select_index(fitness, rng) for _ in range(300)]
        # index 1 wins every mixed tournament and (1,1) draws; it must
        # dominate: P(pick 0) = P(both contenders are 0) = 0.25.
        assert 0.65 < np.mean(wins) < 0.85

    def test_size_one_is_uniform(self):
        rng = np.random.default_rng(1)
        fitness = np.array([0.0, 100.0, 1.0])
        picks = [tournament_select_index(fitness, rng, size=1) for _ in range(3000)]
        freq = np.bincount(picks, minlength=3) / 3000
        assert np.allclose(freq, 1 / 3, atol=0.04)

    def test_large_size_finds_best(self):
        rng = np.random.default_rng(2)
        fitness = np.array([1.0, 2.0, 9.0, 3.0])
        picks = {tournament_select_index(fitness, rng, size=32) for _ in range(50)}
        assert picks == {2}

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            tournament_select_index(np.array([]), rng)
        with pytest.raises(ValueError):
            tournament_select_index(np.array([1.0]), rng, size=0)


class TestRouletteSelection:
    def test_proportional_to_fitness(self):
        rng = np.random.default_rng(3)
        fitness = np.array([1.0, 3.0])
        picks = [roulette_select_index(fitness, rng) for _ in range(4000)]
        assert 0.70 < np.mean(picks) < 0.80  # expect 0.75

    def test_zero_fitness_uniform(self):
        rng = np.random.default_rng(4)
        fitness = np.zeros(4)
        picks = [roulette_select_index(fitness, rng) for _ in range(4000)]
        freq = np.bincount(picks, minlength=4) / 4000
        assert np.allclose(freq, 0.25, atol=0.03)

    def test_zero_probability_never_picked(self):
        rng = np.random.default_rng(5)
        fitness = np.array([0.0, 1.0, 0.0])
        picks = {roulette_select_index(fitness, rng) for _ in range(200)}
        assert picks == {1}

    def test_negative_fitness_rejected(self):
        with pytest.raises(ValueError):
            roulette_select_index(np.array([-1.0, 2.0]), np.random.default_rng(0))


class TestDispatch:
    def test_known_methods(self):
        rng = np.random.default_rng(0)
        fitness = np.array([1.0, 2.0])
        assert select_index("tournament", fitness, rng) in (0, 1)
        assert select_index("roulette", fitness, rng) in (0, 1)

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown selection"):
            select_index("rank", np.array([1.0]), np.random.default_rng(0))

"""Schema contract for the machine-readable bench reports.

Every ``results/bench_reports/*.json`` plus the repo-root ``BENCH_ENGINE.json``
ledger must satisfy the ``{bench, scale, wall_s, metrics, git_sha}`` contract
(:func:`repro.utils.validation.validate_bench_report`), so a malformed bench
cannot slip an unparseable artefact past CI's report-archiving step.  The
validator itself is unit-tested here against representative corruptions.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.utils.validation import BENCH_REPORT_KEYS, validate_bench_report

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_DIR = REPO_ROOT / "results" / "bench_reports"

committed_reports = sorted(REPORT_DIR.glob("*.json")) + [
    REPO_ROOT / "BENCH_ENGINE.json"
]


class TestCommittedArtefacts:
    @pytest.mark.parametrize(
        "path", committed_reports, ids=lambda p: p.name
    )
    def test_committed_report_matches_contract(self, path):
        if not path.exists():  # pragma: no cover - fresh clone without reports
            pytest.skip(f"{path.name} not generated in this checkout")
        payload = json.loads(path.read_text())
        validate_bench_report(payload, name=path.name)

    def test_report_directory_is_populated(self):
        """The repo commits its bench artefacts; an empty directory means
        the parametrization above silently validated nothing."""
        assert len(committed_reports) > 1

    def test_engine_ledger_has_all_engine_rows(self):
        """The committed perf ledger carries a row per registered engine on
        every gated oracle (check_perf_regression gates them from here)."""
        from repro.sim import ENGINES

        ledger = json.loads((REPO_ROOT / "BENCH_ENGINE.json").read_text())
        for oracle in ("random", "topology", "mobile"):
            assert set(ledger["wall_s"][oracle]) == set(ENGINES), oracle
        assert ledger["metrics"]["turbo_speedup_vs_batch_random"] >= 1.3

    def test_engine_ledger_has_stacked_rows_and_kernel_record(self):
        """The cross-replication rows and the kernel-backend attribution
        record must survive ledger regenerations."""
        ledger = json.loads((REPO_ROOT / "BENCH_ENGINE.json").read_text())
        for kind in ("random", "topology", "mobile"):
            assert set(ledger["wall_s"][f"{kind}_stacked"]) == {"stacked"}
        assert ledger["kernel"]["backend"] in ("numpy", "numba")
        assert ledger["metrics"]["stacked_random_games_per_s"] > 0


def good_payload() -> dict:
    return {
        "bench": "probe",
        "scale": "smoke",
        "wall_s": 0.5,
        "metrics": {"metric": 1.0, "nested": {"a": 2}},
        "git_sha": "abc1234",
    }


class TestValidator:
    def test_accepts_flat_and_nested(self):
        assert validate_bench_report(good_payload())["bench"] == "probe"
        ledger_style = good_payload()
        ledger_style["scale"] = {"seats": 50, "rounds": 40}
        ledger_style["wall_s"] = {"random": {"batch": 0.02, "turbo": 0.013}}
        validate_bench_report(ledger_style)

    def test_accepts_null_wall(self):
        payload = good_payload()
        payload["wall_s"] = None
        validate_bench_report(payload)

    @pytest.mark.parametrize("key", sorted(BENCH_REPORT_KEYS))
    def test_missing_key_rejected(self, key):
        payload = good_payload()
        del payload[key]
        with pytest.raises(ValueError, match=f"missing \\['{key}'\\]"):
            validate_bench_report(payload)

    def test_extra_key_rejected(self):
        payload = good_payload()
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="unexpected \\['surprise'\\]"):
            validate_bench_report(payload)

    @pytest.mark.parametrize("bench", ["", 7, None])
    def test_bad_bench_rejected(self, bench):
        payload = good_payload()
        payload["bench"] = bench
        with pytest.raises(ValueError, match="non-empty string"):
            validate_bench_report(payload)

    def test_negative_wall_rejected(self):
        payload = good_payload()
        payload["wall_s"] = -0.1
        with pytest.raises(ValueError, match="wall_s must be >= 0"):
            validate_bench_report(payload)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_metric_rejected(self, bad):
        """NaN poisons comparisons; inf serializes as non-RFC-8259 JSON."""
        payload = good_payload()
        payload["metrics"] = {"bad": bad}
        with pytest.raises(ValueError, match="not finite"):
            validate_bench_report(payload)

    def test_non_finite_wall_rejected(self):
        payload = good_payload()
        payload["wall_s"] = float("inf")
        with pytest.raises(ValueError, match="not finite"):
            validate_bench_report(payload)

    def test_non_numeric_metric_rejected(self):
        payload = good_payload()
        payload["metrics"] = {"bad": "fast"}
        with pytest.raises(ValueError, match="number or a nested mapping"):
            validate_bench_report(payload)

    def test_bool_metric_rejected(self):
        payload = good_payload()
        payload["metrics"] = {"ok": True}
        with pytest.raises(ValueError, match="bool"):
            validate_bench_report(payload)

    def test_optional_kernel_record_accepted(self):
        payload = good_payload()
        payload["kernel"] = {
            "backend": "numpy",
            "compiled": False,
            "numba_available": False,
        }
        validate_bench_report(payload)

    @pytest.mark.parametrize(
        "kernel,fragment",
        [
            ({"backend": "numpy"}, "exactly the keys"),
            ("numpy", "exactly the keys"),
            (
                {"backend": "", "compiled": False, "numba_available": False},
                "non-empty string",
            ),
            (
                {"backend": "numpy", "compiled": 1, "numba_available": False},
                "must be a boolean",
            ),
        ],
    )
    def test_malformed_kernel_record_rejected(self, kernel, fragment):
        payload = good_payload()
        payload["kernel"] = kernel
        with pytest.raises(ValueError, match=fragment):
            validate_bench_report(payload)

    def test_non_mapping_payload_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_bench_report([1, 2, 3])

    def test_metrics_must_be_mapping(self):
        payload = good_payload()
        payload["metrics"] = [1.0]
        with pytest.raises(ValueError, match="'metrics' must be a mapping"):
            validate_bench_report(payload)

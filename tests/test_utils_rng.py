"""Unit tests for repro.utils.rng — the determinism backbone."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import (
    as_generator,
    derive_generator,
    spawn_generators,
    spawn_seeds,
)


class TestAsGenerator:
    def test_int_seed_gives_generator(self):
        gen = as_generator(42)
        assert isinstance(gen, np.random.Generator)

    def test_same_seed_same_stream(self):
        assert as_generator(7).random() == as_generator(7).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnSeeds:
    def test_count(self):
        assert len(spawn_seeds(1, 5)) == 5

    def test_zero_is_fine(self):
        assert spawn_seeds(1, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_children_are_deterministic(self):
        a = [np.random.default_rng(s).random() for s in spawn_seeds(9, 4)]
        b = [np.random.default_rng(s).random() for s in spawn_seeds(9, 4)]
        assert a == b

    def test_children_are_distinct(self):
        vals = [np.random.default_rng(s).random() for s in spawn_seeds(9, 16)]
        assert len(set(vals)) == 16


class TestSpawnGenerators:
    def test_independent_streams(self):
        g1, g2 = spawn_generators(3, 2)
        assert g1.random() != g2.random()

    def test_prefix_stability(self):
        """The first k children do not depend on how many are spawned."""
        first_of_4 = [g.random() for g in spawn_generators(5, 4)]
        first_of_8 = [g.random() for g in spawn_generators(5, 8)]
        assert first_of_4 == first_of_8[:4]


class TestDeriveGenerator:
    def test_deterministic(self):
        assert (
            derive_generator(11, (2, 3)).random()
            == derive_generator(11, (2, 3)).random()
        )

    def test_key_sensitivity(self):
        assert (
            derive_generator(11, (2, 3)).random()
            != derive_generator(11, (3, 2)).random()
        )

    def test_matches_spawn_key_semantics(self):
        """derive_generator((i,)) must equal SeedSequence(seed).spawn()[i]."""
        spawned = spawn_generators(21, 3)
        derived = [derive_generator(21, (i,)) for i in range(3)]
        for a, b in zip(spawned, derived):
            assert a.random() == b.random()

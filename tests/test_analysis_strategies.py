"""Unit tests for strategy censuses (Tables 7-9 machinery)."""

from __future__ import annotations

import pytest

from repro.analysis.strategies import (
    most_common_strategies,
    strategy_counts,
    substrategy_distribution,
    unknown_bit_fraction,
)
from repro.core.strategy import Strategy

ALL_F = Strategy.all_forward().to_int()
ALL_D = Strategy.all_drop().to_int()
MIXED = Strategy.from_string("010 101 101 111 1").to_int()


class TestStrategyCounts:
    def test_counts_across_populations(self):
        populations = [[ALL_F, ALL_F, MIXED], [ALL_F, ALL_D]]
        counts = strategy_counts(populations)
        assert counts[Strategy.all_forward()] == 3
        assert counts[Strategy.all_drop()] == 1
        assert sum(counts.values()) == 5

    def test_empty(self):
        assert strategy_counts([]) == {}


class TestMostCommon:
    def test_order_and_fractions(self):
        populations = [[ALL_F] * 6 + [MIXED] * 3 + [ALL_D]]
        top = most_common_strategies(populations, k=2)
        assert top[0][0] == Strategy.all_forward()
        assert top[0][1] == pytest.approx(0.6)
        assert top[1][0] == Strategy.from_int(MIXED)
        assert top[1][1] == pytest.approx(0.3)

    def test_k_larger_than_distinct(self):
        top = most_common_strategies([[ALL_F]], k=5)
        assert len(top) == 1

    def test_empty(self):
        assert most_common_strategies([], k=3) == []


class TestSubstrategyDistribution:
    def test_per_trust_blocks(self):
        populations = [[MIXED, MIXED, ALL_F]]
        dist0 = dict(substrategy_distribution(populations, 0))
        assert dist0["010"] == pytest.approx(2 / 3)
        assert dist0["111"] == pytest.approx(1 / 3)
        dist3 = dict(substrategy_distribution(populations, 3))
        assert dist3["111"] == pytest.approx(1.0)

    def test_min_fraction_filter(self):
        populations = [[MIXED] * 97 + [ALL_D] * 3]
        dist = substrategy_distribution(populations, 0, min_fraction=0.05)
        assert dict(dist).keys() == {"010"}

    def test_sorted_descending(self):
        populations = [[MIXED] * 2 + [ALL_F] * 8]
        dist = substrategy_distribution(populations, 0)
        fracs = [f for _, f in dist]
        assert fracs == sorted(fracs, reverse=True)

    def test_invalid_trust(self):
        with pytest.raises(ValueError):
            substrategy_distribution([[ALL_F]], 4)

    def test_empty(self):
        assert substrategy_distribution([], 0) == []


class TestUnknownBit:
    def test_fraction(self):
        populations = [[ALL_F, ALL_F, ALL_D, MIXED]]
        # ALL_F and MIXED forward unknowns; ALL_D does not
        assert unknown_bit_fraction(populations) == pytest.approx(0.75)

    def test_empty(self):
        assert unknown_bit_fraction([]) == 0.0

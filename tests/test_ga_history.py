"""Unit tests for evolution history records."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ga.history import GenerationRecord, History


def record(gen: int, coop: float = 0.5) -> GenerationRecord:
    return GenerationRecord(
        generation=gen,
        cooperation=coop,
        cooperation_per_env={"TE1": coop, "TE2": coop / 2},
        mean_fitness=1.0,
        best_fitness=2.0,
        mean_forwarding_fraction=0.6,
    )


class TestHistory:
    def test_append_and_series(self):
        h = History()
        h.append(record(0, 0.2))
        h.append(record(1, 0.4))
        assert h.n_generations == 2
        assert np.allclose(h.cooperation_series(), [0.2, 0.4])

    def test_non_contiguous_rejected(self):
        h = History()
        h.append(record(0))
        with pytest.raises(ValueError, match="non-contiguous"):
            h.append(record(2))

    def test_env_series(self):
        h = History()
        h.append(record(0, 0.4))
        assert np.allclose(h.cooperation_series_env("TE2"), [0.2])
        assert h.environments() == ["TE1", "TE2"]

    def test_final(self):
        h = History()
        h.append(record(0, 0.1))
        h.append(record(1, 0.9))
        assert h.final.cooperation == 0.9

    def test_final_of_empty_raises(self):
        with pytest.raises(ValueError):
            _ = History().final

    def test_dict_roundtrip(self):
        h = History()
        h.append(record(0, 0.25))
        h.append(record(1, 0.75))
        restored = History.from_dict(h.to_dict())
        assert restored.to_dict() == h.to_dict()
        assert restored.final.cooperation == 0.75

    def test_empty_environments(self):
        assert History().environments() == []
